"""Ablation: the END action (§IV-B).

The paper adds an END action (reward 0) so a converged agent can stop
instead of accumulating -1 punishments, which "effectively quickens the
velocity of convergence".  We train with and without END on the mini world
and compare late-training returns and episode lengths.
"""

import numpy as np
from conftest import run_and_print

from repro.config import smoke_scale
from repro.data.datasets import generate_dataset, train_test_split
from repro.experiments.common import ExperimentReport
from repro.labels import build_label_space
from repro.rl.training import train_agent
from repro.zoo.builder import build_zoo
from repro.zoo.oracle import GroundTruth
from repro.analysis.tables import format_table


def _run(_ctx) -> ExperimentReport:
    scale = smoke_scale()
    space = build_label_space("mini")
    zoo = build_zoo(scale.world, space)
    dataset = generate_dataset(space, scale.world, "mscoco2017", 200)
    train, _ = train_test_split(dataset)
    truth = GroundTruth(zoo, dataset, scale.world)
    ids = [i.item_id for i in train]

    rows = []
    measured = {}
    for use_end in (True, False):
        config = scale.train.with_(episodes=300, use_end_action=use_end)
        result = train_agent("dueling_dqn", truth, ids, config)
        late_return = float(np.mean(result.episode_returns[-50:]))
        late_length = float(np.mean(result.episode_lengths[-50:]))
        tag = "with END" if use_end else "without END"
        measured[f"return_{'end' if use_end else 'noend'}"] = late_return
        measured[f"length_{'end' if use_end else 'noend'}"] = late_length
        rows.append((tag, f"{late_return:.2f}", f"{late_length:.1f}"))

    table = format_table(
        ("variant", "late-episode return", "late-episode length"),
        rows,
        title="Ablation: END action (mini world, 300 episodes)",
    )
    summary = (
        "expected: END keeps late returns higher (the agent stops instead "
        "of eating -1 punishments) and episodes shorter than the zoo size"
    )
    return ExperimentReport(
        experiment="ablation_end",
        title="END action ablation",
        text=table + "\n" + summary,
        measured=measured,
    )


def test_ablation_end_action(benchmark):
    report = run_and_print(benchmark, "ablation_end", _run)
    m = report.measured
    # Without END, every episode must grind through the whole zoo.
    assert m["length_noend"] > m["length_end"]
    # With END the agent avoids punishment tails.
    assert m["return_end"] >= m["return_noend"] - 1e-6
