"""Ablation: discount factor gamma.

The paper's agents predict the *value of a model* given the labeling state
— a near-myopic quantity.  A large gamma bundles the episode's remaining
value into every Q estimate and destroys per-model discrimination; this
ablation motivated the library default of gamma = 0.2 (see
``repro.config.TrainConfig``).
"""

from conftest import run_and_print

from repro.analysis.metrics import average_cost_curves
from repro.analysis.tables import format_table
from repro.config import smoke_scale
from repro.data.datasets import generate_dataset, train_test_split
from repro.experiments.common import ExperimentReport
from repro.labels import build_label_space
from repro.rl.training import train_agent
from repro.scheduling.base import run_ordering_policy
from repro.scheduling.qgreedy import AgentPredictor, QGreedyPolicy
from repro.zoo.builder import build_zoo
from repro.zoo.oracle import GroundTruth

GAMMAS = (0.0, 0.2, 0.5, 0.9)


def _run(_ctx) -> ExperimentReport:
    scale = smoke_scale()
    space = build_label_space("mini")
    zoo = build_zoo(scale.world, space)
    dataset = generate_dataset(space, scale.world, "mscoco2017", 200)
    train, test = train_test_split(dataset)
    truth = GroundTruth(zoo, dataset, scale.world)
    train_ids = [i.item_id for i in train]
    test_ids = [i.item_id for i in test][:40]

    rows = []
    measured = {}
    for gamma in GAMMAS:
        result = train_agent(
            "dueling_dqn",
            truth,
            train_ids,
            config=scale.train.with_(episodes=300, gamma=gamma),
        )
        policy = QGreedyPolicy(AgentPredictor(result.agent, len(zoo)))
        traces = [run_ordering_policy(policy, truth, i) for i in test_ids]
        curve = average_cost_curves(f"gamma={gamma}", traces)
        models_08 = curve.at(0.8)[0]
        measured[f"models_at_0.8_gamma_{gamma:g}"] = models_08
        rows.append((f"{gamma:g}", f"{models_08:.2f}"))

    table = format_table(
        ("gamma", "avg models @0.8 recall"),
        rows,
        title="Ablation: discount factor (mini world)",
    )
    summary = (
        "expected: near-myopic gammas (0-0.5) discriminate model values; "
        "gamma=0.9 blurs them and scheduling quality degrades"
    )
    return ExperimentReport(
        experiment="ablation_gamma",
        title="Gamma ablation",
        text=table + "\n" + summary,
        measured=measured,
    )


def test_ablation_gamma(benchmark):
    report = run_and_print(benchmark, "ablation_gamma", _run)
    m = report.measured
    # The library default must not be worse than the high-gamma variant.
    assert (
        m["models_at_0.8_gamma_0.2"] <= m["models_at_0.8_gamma_0.9"] + 0.5
    )
