"""Ablation: reward smoothing (§IV-A).

The paper motivates log smoothing: raw confidence sums make many-label
models (face landmarks emit up to 70 labels) drown out single-label models;
log (or mean) smoothing keeps rewards in one order of magnitude.  We train
with each smoothing and compare scheduling quality at 0.8 recall.
"""

from conftest import run_and_print

from repro.analysis.metrics import average_cost_curves
from repro.analysis.tables import format_table
from repro.config import smoke_scale
from repro.core.reward import RewardConfig
from repro.data.datasets import generate_dataset, train_test_split
from repro.experiments.common import ExperimentReport
from repro.labels import build_label_space
from repro.rl.training import train_agent
from repro.scheduling.base import run_ordering_policy
from repro.scheduling.qgreedy import AgentPredictor, QGreedyPolicy
from repro.scheduling.random_policy import RandomPolicy
from repro.zoo.builder import build_zoo
from repro.zoo.oracle import GroundTruth


def _run(_ctx) -> ExperimentReport:
    scale = smoke_scale()
    space = build_label_space("mini")
    zoo = build_zoo(scale.world, space)
    dataset = generate_dataset(space, scale.world, "mscoco2017", 200)
    train, test = train_test_split(dataset)
    truth = GroundTruth(zoo, dataset, scale.world)
    train_ids = [i.item_id for i in train]
    test_ids = [i.item_id for i in test][:40]

    random_traces = [
        run_ordering_policy(RandomPolicy(seed=3), truth, i) for i in test_ids
    ]
    random_curve = average_cost_curves("random", random_traces)

    rows = []
    measured = {"random_models_at_0.8": random_curve.at(0.8)[0]}
    for smoothing in ("log", "mean", "identity"):
        result = train_agent(
            "dueling_dqn",
            truth,
            train_ids,
            config=scale.train.with_(episodes=300),
            reward_config=RewardConfig(smoothing=smoothing),
        )
        policy = QGreedyPolicy(AgentPredictor(result.agent, len(zoo)))
        traces = [run_ordering_policy(policy, truth, i) for i in test_ids]
        curve = average_cost_curves(smoothing, traces)
        models_08 = curve.at(0.8)[0]
        measured[f"{smoothing}_models_at_0.8"] = models_08
        rows.append((smoothing, f"{models_08:.2f}"))
    rows.append(("(random)", f"{random_curve.at(0.8)[0]:.2f}"))

    table = format_table(
        ("reward smoothing", "avg models @0.8 recall"),
        rows,
        title="Ablation: reward smoothing (mini world)",
    )
    summary = (
        "paper §IV-A: log and mean smoothing behave similarly (same order "
        "of magnitude); the raw sum is the variant the paper argues against"
    )
    return ExperimentReport(
        experiment="ablation_reward",
        title="Reward smoothing ablation",
        text=table + "\n" + summary,
        measured=measured,
    )


def test_ablation_reward_smoothing(benchmark):
    report = run_and_print(benchmark, "ablation_reward", _run)
    m = report.measured
    # Both paper-endorsed smoothings must beat random scheduling.
    assert m["log_models_at_0.8"] < m["random_models_at_0.8"]
    assert m["mean_models_at_0.8"] < m["random_models_at_0.8"]
