"""Dispatch overlap and fault tolerance of the cluster backend.

Three measurements share one pre-recorded world (pure scheduling, no zoo
execution):

1. **Parity** — the cluster backend at the widest fleet is checked
   trace-identical to :class:`SerialBackend` across all three paper
   regimes (unconstrained Q-greedy, deadline, deadline+memory) and at an
   uneven chunk size.  Sharding never buys divergence.

2. **Scaling** — labeled items/sec with 1, 2, 4 local worker processes.
   Every worker carries ``--exec-delay`` seconds of artificial per-item
   latency (a stand-in for model execution: GPU inference, remote model
   APIs), so the number measures what the dispatcher actually owns —
   overlap across the fleet — honestly even on single-core CI hosts.
   ``--assert-speedup`` gates the widest/1-worker ratio.

3. **Chaos** — a worker is SIGKILLed mid-job; the job must still finish
   with serial-parity traces via re-dispatch along the hash ring, and
   ``cluster_stats`` must show at least one re-dispatched chunk.

Run standalone (the CI smoke path uploads the JSON as the
``BENCH_cluster_scaling`` artifact)::

    PYTHONPATH=src python benchmarks/bench_cluster_scaling.py \
        --scale smoke --json BENCH_cluster_scaling.json --assert-speedup 2.0

``--external-workers host:port,host:port`` adds a measurement against
already-running ``python -m repro.cli cluster-worker`` processes (the CI
smoke leg exercises that path); the scaling sweep and the chaos run
always use self-spawned fleets, since they need to control worker count
and worker death.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time

from repro.config import WorldConfig
from repro.data.datasets import generate_dataset
from repro.engine import (
    ClusterBackend,
    LabelingEngine,
    spawn_local_workers,
)
from repro.labels import build_label_space
from repro.rl.agents import make_agent
from repro.scheduling.qgreedy import AgentPredictor
from repro.zoo.builder import build_zoo
from repro.zoo.oracle import GroundTruth

#: The issue's acceptance bar: 4 workers at least double 1-worker
#: dispatch throughput on the delay-carrying fleet.
TARGET_SCALING_SPEEDUP = 2.0

#: (name, spec) per regime the parity check covers.
PARITY_REGIMES = (
    ("qgreedy", {}),
    ("deadline", {"deadline": 0.35}),
    ("deadline_memory", {"deadline": 0.5, "memory_budget": 8000.0}),
)


def build_world(scale: str, n_items: int, seed: int = 20200208):
    """(config, zoo, items, truth, predictor) with ground truth pre-recorded.

    Scheduling throughput does not depend on agent quality (every forward
    costs the same), so the predictor wraps a freshly initialized network
    and the bench skips training.
    """
    vocab = "full" if scale == "full" else "mini"
    config = WorldConfig(vocab_scale=vocab, seed=seed)
    space = build_label_space(config.vocab_scale)
    zoo = build_zoo(config, space)
    dataset = generate_dataset(space, config, "mscoco2017", n_items)
    truth = GroundTruth(zoo, dataset, config)
    agent = make_agent("dueling_dqn", obs_dim=len(space), n_actions=len(zoo) + 1)
    predictor = AgentPredictor(agent, len(zoo))
    return config, zoo, list(dataset), truth, predictor


def regime_references(world) -> dict[str, list]:
    """SerialBackend traces per regime — the parity baseline for every run."""
    config, zoo, items, truth, predictor = world
    engine = LabelingEngine(zoo, predictor, config, backend="serial")
    return {
        name: [r.trace for r in engine.label_batch(items, truth=truth, **spec)]
        for name, spec in PARITY_REGIMES
    }


def traces_identical(got, ref) -> bool:
    return len(got) == len(ref) and all(
        g.item_id == r.item_id and g.executions == r.executions
        for g, r in zip(got, ref)
    )


def measure_fleet(
    world,
    addresses,
    references,
    repeats: int,
    chunk_size: int | None = None,
    full_parity: bool = False,
) -> dict:
    """One fleet's parity + best-of-``repeats`` throughput.

    The warm-up batch pays connect + snapshot shipping before any timing
    (connection reuse is the serving steady state).  ``full_parity``
    additionally sweeps the deadline regimes and an uneven chunk size.
    """
    config, zoo, items, truth, predictor = world
    out: dict = {"workers": len(addresses), "regimes": {}}
    with ClusterBackend(workers=addresses, chunk_size=chunk_size) as backend:
        engine = LabelingEngine(zoo, predictor, config, backend=backend)
        engine.label_batch(items, truth=truth)  # warm: connect, ship world
        sweep = PARITY_REGIMES if full_parity else PARITY_REGIMES[:1]
        for name, spec in sweep:
            results = engine.label_batch(items, truth=truth, **spec)
            out["regimes"][name] = traces_identical(
                [r.trace for r in results], references[name]
            )
        best = None
        for _ in range(max(repeats, 1)):
            start = time.perf_counter()
            engine.label_batch(items, truth=truth)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        out["transport"] = backend.chunk_stats["transport"]
    if full_parity:
        # Uneven chunks leave a ragged tail and multiple chunks per
        # worker; traces must not care.
        with ClusterBackend(workers=addresses, chunk_size=3) as backend:
            engine = LabelingEngine(zoo, predictor, config, backend=backend)
            results = engine.label_batch(items, truth=truth)
            out["uneven_chunk_parity"] = traces_identical(
                [r.trace for r in results], references["qgreedy"]
            )
    out["best_s"] = best
    out["items_per_s"] = len(items) / best
    out["parity"] = all(out["regimes"].values()) and out.get(
        "uneven_chunk_parity", True
    )
    return out


def measure_chaos(world, references, exec_delay: float) -> dict:
    """SIGKILL one worker mid-job; the job must finish with parity.

    Small chunks give every worker several chunks, so the killed
    worker's unfinished chunks exist to re-dispatch; the kill timer
    fires about a third of the way into the expected run.
    """
    config, zoo, items, truth, predictor = world
    with spawn_local_workers(3, delay_per_item=exec_delay) as fleet:
        backend = ClusterBackend(
            workers=fleet.addresses, chunk_size=max(1, len(items) // 8)
        )
        with backend:
            engine = LabelingEngine(zoo, predictor, config, backend=backend)
            engine.label_batch(items, truth=truth)  # warm: ship the world
            kill_at = max(0.05, exec_delay * len(items) / 9)
            timer = threading.Timer(kill_at, fleet.kill, args=(0,))
            timer.start()
            try:
                results = engine.label_batch(items, truth=truth)
            finally:
                timer.cancel()
            stats = backend.cluster_stats
            return {
                "parity": traces_identical(
                    [r.trace for r in results], references["qgreedy"]
                ),
                "redispatched": stats["redispatched"],
                "survived": stats["redispatched"] >= 1,
            }


def run(
    scale: str,
    n_items: int,
    worker_counts: tuple[int, ...],
    exec_delay: float,
    repeats: int,
    external: tuple[str, ...],
    chaos: bool,
) -> dict:
    world = build_world(scale, n_items)
    references = regime_references(world)

    # Many small chunks per job: with one chunk per worker the hash
    # ring's assignment is lumpy (a worker may own two of four chunks
    # and serialize their delays); ~24 chunks lets the ring balance.
    chunk_size = max(1, n_items // 24)
    sweeps = []
    for index, n_workers in enumerate(worker_counts):
        with spawn_local_workers(n_workers, delay_per_item=exec_delay) as fleet:
            sweeps.append(
                measure_fleet(
                    world,
                    fleet.addresses,
                    references,
                    repeats,
                    chunk_size=chunk_size,
                    # Full parity sweep once, at the widest fleet.
                    full_parity=index == len(worker_counts) - 1,
                )
            )
    speedup = sweeps[-1]["items_per_s"] / sweeps[0]["items_per_s"]

    report: dict = {
        "bench": "cluster_scaling",
        "scale": scale,
        "n_items": n_items,
        "cpu_count": os.cpu_count(),
        "exec_delay": exec_delay,
        "repeats": repeats,
        "sweeps": sweeps,
        "speedup": speedup,
        "parity": all(s["parity"] for s in sweeps),
    }
    if external:
        report["external"] = measure_fleet(
            world, external, references, repeats, full_parity=True
        )
        report["parity"] = report["parity"] and report["external"]["parity"]
    if chaos:
        report["chaos"] = measure_chaos(world, references, exec_delay)
        report["parity"] = report["parity"] and report["chaos"]["parity"]
    return report


def print_report(report: dict) -> None:
    print(
        f"cluster scaling: scale={report['scale']} items={report['n_items']} "
        f"cpus={report['cpu_count']} "
        f"exec_delay={report['exec_delay'] * 1000:.0f}ms/item "
        f"regime=qgreedy (pre-recorded truth)"
    )
    print(f"{'workers':>7s} {'items/s':>10s} {'vs 1w':>7s} {'parity':>7s}")
    base = report["sweeps"][0]["items_per_s"]
    for sweep in report["sweeps"]:
        print(
            f"{sweep['workers']:7d} {sweep['items_per_s']:10.1f} "
            f"{sweep['items_per_s'] / base:6.2f}x "
            f"{'ok' if sweep['parity'] else 'FAIL':>7s}"
        )
    external = report.get("external")
    if external is not None:
        print(
            f"external fleet ({external['workers']} workers): "
            f"{external['items_per_s']:.1f} items/s, parity "
            f"{'ok' if external['parity'] else 'FAIL'}"
        )
    chaos = report.get("chaos")
    if chaos is not None:
        print(
            f"chaos (SIGKILL mid-job): parity "
            f"{'ok' if chaos['parity'] else 'FAIL'}, "
            f"{chaos['redispatched']} chunk(s) re-dispatched"
        )
    print(
        f"speedup {report['speedup']:.2f}x "
        f"at {report['sweeps'][-1]['workers']} workers"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=("smoke", "full"))
    parser.add_argument("--items", type=int, default=None)
    parser.add_argument(
        "--workers",
        default=None,
        help="comma-separated worker counts for the scaling sweep "
        "(default: 1,4 at smoke, else 1,2,4)",
    )
    parser.add_argument(
        "--exec-delay",
        type=float,
        default=None,
        help="artificial per-item seconds each worker sleeps per chunk, "
        "emulating model-execution latency (default: 0.04 smoke, 0.05 full)",
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--external-workers",
        default=None,
        help="host:port,host:port list of already-running cluster-worker "
        "processes to measure in addition to the self-spawned fleets",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="SIGKILL one self-spawned worker mid-job and require parity "
        "plus at least one re-dispatched chunk",
    )
    parser.add_argument("--json", default=None, help="write the report here")
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        help="exit nonzero unless the widest fleet reaches this multiple "
        f"of 1-worker throughput (the issue bar is {TARGET_SCALING_SPEEDUP})",
    )
    args = parser.parse_args(argv)

    smoke = args.scale == "smoke"
    n_items = args.items or (24 if smoke else 64)
    counts = tuple(
        int(part) for part in args.workers.split(",") if part.strip()
    ) if args.workers else ((1, 4) if smoke else (1, 2, 4))
    exec_delay = args.exec_delay if args.exec_delay is not None else (
        0.04 if smoke else 0.05
    )
    repeats = args.repeats if args.repeats is not None else (1 if smoke else 2)
    external = tuple(
        part.strip()
        for part in (args.external_workers or "").split(",")
        if part.strip()
    )

    report = run(
        args.scale, n_items, counts, exec_delay, repeats, external, args.chaos
    )
    print_report(report)

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"report -> {args.json}")

    if not report["parity"]:
        print("FAIL: cluster traces diverged from SerialBackend")
        return 1
    if args.chaos and not report["chaos"]["survived"]:
        print("FAIL: chaos run finished without re-dispatching any chunk")
        return 1
    if args.assert_speedup is not None and report["speedup"] < args.assert_speedup:
        print(
            f"FAIL: scaling speedup {report['speedup']:.2f}x below required "
            f"{args.assert_speedup:.2f}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
