"""Microbenchmarks of the core hot paths.

These are true pytest-benchmark timings (many rounds): the ground-truth
replay step, Algorithm 1 scheduling of one item, Algorithm 2 scheduling of
one item, a full Q-greedy rollout, and the dispatch tick — a 16-item
batch scheduled via the per-item serial loop vs the vectorized
``schedule_batch`` (one stacked forward + masked argmax per round).
"""

from conftest import shared_context

from repro.core.state import LabelingState
from repro.scheduling.base import run_ordering_policy
from repro.scheduling.deadline import CostQGreedyScheduler
from repro.scheduling.deadline_memory import MemoryDeadlineScheduler
from repro.scheduling.qgreedy import QGreedyPolicy


def _setup():
    ctx = shared_context()
    truth = ctx.ensure_truth("mscoco2017")
    item_id = ctx.eval_ids("mscoco2017", 5)[0]
    predictor = ctx.predictor("mscoco2017", "dueling_dqn")
    return ctx, truth, item_id, predictor


def test_state_execute_all_models(benchmark):
    ctx, truth, item_id, _ = _setup()

    def run():
        state = LabelingState(truth, item_id)
        for j in range(len(ctx.zoo)):
            state.execute(j)
        return state.value

    benchmark(run)


def test_algorithm1_schedule_one_item(benchmark):
    _, truth, item_id, predictor = _setup()
    scheduler = CostQGreedyScheduler(predictor)
    benchmark(lambda: scheduler.schedule(truth, item_id, 1.0))


def test_algorithm2_schedule_one_item(benchmark):
    _, truth, item_id, predictor = _setup()
    scheduler = MemoryDeadlineScheduler(predictor)
    benchmark(lambda: scheduler.schedule(truth, item_id, 1.0, 12000.0))


def test_qgreedy_full_rollout(benchmark):
    _, truth, item_id, predictor = _setup()
    policy = QGreedyPolicy(predictor)
    benchmark(lambda: run_ordering_policy(policy, truth, item_id))


def _batch_setup(n_items: int = 16):
    ctx = shared_context()
    truth = ctx.ensure_truth("mscoco2017")
    ids = ctx.eval_ids("mscoco2017", n_items)
    predictor = ctx.predictor("mscoco2017", "dueling_dqn")
    return truth, ids, predictor


def test_algorithm1_serial_loop_batch16(benchmark):
    truth, ids, predictor = _batch_setup()
    scheduler = CostQGreedyScheduler(predictor)
    benchmark(lambda: [scheduler.schedule(truth, i, 1.0) for i in ids])


def test_algorithm1_dispatch_tick_batch16(benchmark):
    truth, ids, predictor = _batch_setup()
    scheduler = CostQGreedyScheduler(predictor)
    benchmark(lambda: scheduler.schedule_batch(truth, ids, 1.0))


def test_algorithm2_serial_loop_batch16(benchmark):
    truth, ids, predictor = _batch_setup()
    scheduler = MemoryDeadlineScheduler(predictor)
    benchmark(lambda: [scheduler.schedule(truth, i, 1.0, 12000.0) for i in ids])


def test_algorithm2_dispatch_tick_batch16(benchmark):
    truth, ids, predictor = _batch_setup()
    scheduler = MemoryDeadlineScheduler(predictor)
    benchmark(lambda: scheduler.schedule_batch(truth, ids, 1.0, 12000.0))
