"""Durability overhead and recovery speed of the journaled serving tier.

Two views of the write-ahead journal from
:mod:`repro.durability.journal`:

1. **Journal overhead, closed loop** — the same workload as
   ``bench_serving_latency`` (all items submitted as fast as possible,
   micro-batched dispatch) through four services: no journal, and a
   journal under each fsync policy (``none`` / ``batch`` / ``always``).
   The headline gate: at ``fsync=batch`` — one fsync per micro-batch
   flush, the policy the CLI defaults to — crash safety costs at most a
   few percent of closed-loop throughput (``--assert-overhead 0.05``).
2. **Recovery time vs backlog** — journals with N orphaned admissions
   (admitted, never settled: the crash window) are recovered through
   :meth:`LabelingService.recover`; reports wall seconds and replayed
   entries/sec per backlog size.  Recovery cost scales with the backlog,
   not with journal history — that is what checkpointed watermarks buy.

Run standalone (the CI smoke path uses the tiny world)::

    PYTHONPATH=src python benchmarks/bench_durability.py --scale smoke
    PYTHONPATH=src python benchmarks/bench_durability.py \
        --scale full --assert-overhead 0.05 --json BENCH_durability.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from bench_serving_latency import build_world
from repro.durability import Journal
from repro.engine import LabelingEngine
from repro.serving import LabelingService, LabelingSpec

#: The acceptance bar: fractional throughput cost of fsync=batch
#: journaling vs the same service with no journal.
TARGET_OVERHEAD = 0.05


def run_service(
    scale: str,
    n_items: int,
    batch_size: int,
    workers: int,
    journal_dir: str | None,
    fsync: str = "batch",
):
    """One closed-loop pass; returns (snapshot, journal stats or None)."""
    config, zoo, items, truth, predictor = build_world(scale, n_items)
    engine = LabelingEngine(zoo, predictor, config)
    service = LabelingService(
        engine,
        batch_size=batch_size,
        max_wait=0.05,
        workers=workers,
        max_depth=max(len(items), 1),
        truth=truth,
        journal=journal_dir,
        journal_fsync=fsync,
    )
    stats = None
    with service:
        futures = [service.submit(item) for item in items]
        service.drain()
        for future in futures:
            future.result()  # surface any worker failure
        if service.journal is not None:
            stats = service.journal.stats()
    return service.snapshot(), stats


def closed_loop_items_per_second(
    scale: str,
    n_items: int,
    batch_size: int,
    workers: int,
    fsync: str | None,
    repeats: int,
) -> tuple[float, dict | None]:
    """Best-of-``repeats`` throughput; ``fsync=None`` runs unjournaled."""
    best, detail = 0.0, None
    for _ in range(repeats):
        if fsync is None:
            snapshot, _ = run_service(scale, n_items, batch_size, workers, None)
            stats = None
        else:
            with tempfile.TemporaryDirectory(prefix="bench-journal-") as d:
                snapshot, stats = run_service(
                    scale, n_items, batch_size, workers, d, fsync
                )
        if snapshot.throughput > best:
            best = snapshot.throughput
            detail = stats and {
                "admitted": stats.admitted,
                "fsyncs": stats.fsyncs,
                "bytes_written": stats.bytes_written,
            }
    return best, detail


def journal_overhead(
    scale: str,
    n_items: int,
    batch_size: int,
    workers: int,
    fsync: str,
    repeats: int,
) -> tuple[float, float, dict | None]:
    """(baseline items/sec, journaled items/sec, journal detail).

    Bare and journaled runs alternate within each repeat — and swap
    which goes first each time — so machine-load drift and warmup land
    on both sides equally; best-of-``repeats`` is then taken per side.
    Single runs are short enough (~0.1 s at full scale) that an unpaired
    comparison mostly measures scheduler noise.
    """
    # one uncounted run to absorb world build + allocator warmup
    closed_loop_items_per_second(scale, n_items, batch_size, workers, None, 1)
    baseline = journaled = 0.0
    detail = None
    for rep in range(repeats):
        order = (None, fsync) if rep % 2 == 0 else (fsync, None)
        for policy in order:
            throughput, stats = closed_loop_items_per_second(
                scale, n_items, batch_size, workers, policy, 1
            )
            if policy is None:
                baseline = max(baseline, throughput)
            elif throughput > journaled:
                journaled, detail = throughput, stats
    return baseline, journaled, detail


def orphan_backlog(directory: str, items, spec, n: int) -> None:
    """Admit ``n`` items durably with no terminals — the crash backlog."""
    journal = Journal(directory, fsync="batch")
    for i in range(n):
        journal.log_admission(items[i % len(items)], spec, None)
    journal.flush()
    journal.close()


def recover_backlog(scale: str, n_items: int, workers: int, backlog: int):
    """Seconds and outcomes for one recovery over ``backlog`` orphans."""
    config, zoo, items, truth, predictor = build_world(scale, n_items)
    engine = LabelingEngine(zoo, predictor, config)
    with tempfile.TemporaryDirectory(prefix="bench-recovery-") as d:
        orphan_backlog(d, items, LabelingSpec(), backlog)
        service = LabelingService(
            engine,
            batch_size=64,
            max_wait=0.05,
            workers=workers,
            max_depth=max(backlog, 1),
            truth=truth,
            journal=d,
            cache_size=backlog,
        )
        started = time.perf_counter()
        report = service.recover(timeout=600)
        elapsed = time.perf_counter() - started
        service.shutdown()
    return elapsed, report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", default="smoke", choices=("smoke", "mini", "full")
    )
    parser.add_argument("--items", type=int, default=None)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--backlogs",
        default=None,
        help="comma-separated orphaned-admission counts for the recovery curve",
    )
    parser.add_argument(
        "--assert-overhead",
        type=float,
        default=None,
        help="exit nonzero if fsync=batch costs more than this fraction of "
        "the unjournaled closed-loop throughput",
    )
    parser.add_argument("--json", default=None, help="write the report here")
    args = parser.parse_args(argv)

    smoke = args.scale == "smoke"
    n_items = args.items if args.items is not None else (32 if smoke else 128)
    repeats = args.repeats if args.repeats is not None else (3 if smoke else 5)
    backlogs = [
        int(b)
        for b in (args.backlogs or ("16,64" if smoke else "32,128,512")).split(",")
    ]

    # -- 1. closed loop: journal overhead per fsync policy ------------------
    print(
        f"journal overhead (closed loop): scale={args.scale} items={n_items} "
        f"batch={args.batch_size} workers={args.workers}"
    )
    baseline = 0.0
    raw = {}
    for fsync in ("none", "batch", "always"):
        bare, throughput, detail = journal_overhead(
            args.scale, n_items, args.batch_size, args.workers, fsync, repeats
        )
        baseline = max(baseline, bare)
        raw[fsync] = (throughput, detail)
    print(f"  {'no journal':<14s}{baseline:10.1f} items/sec  (baseline)")
    policies = {}
    for fsync, (throughput, detail) in raw.items():
        overhead = 1.0 - throughput / baseline if baseline else 0.0
        policies[fsync] = {
            "items_per_sec": throughput,
            "overhead": overhead,
            **(detail or {}),
        }
        print(
            f"  fsync={fsync:<8s}{throughput:10.1f} items/sec  "
            f"-> {overhead * 100:+5.1f}% overhead"
        )
    batch_overhead = policies["batch"]["overhead"]

    # -- 2. recovery time vs backlog ----------------------------------------
    print(f"\nrecovery time vs backlog: scale={args.scale}")
    print(f"{'backlog':>9s} {'seconds':>9s} {'entries/s':>10s} {'failed':>7s}")
    recovery = []
    for backlog in backlogs:
        elapsed, report = recover_backlog(
            args.scale, n_items, args.workers, backlog
        )
        rate = report.recovered / elapsed if elapsed else float("inf")
        recovery.append(
            {
                "backlog": backlog,
                "seconds": elapsed,
                "recovered": report.recovered,
                "failed": report.failed,
                "entries_per_sec": rate,
            }
        )
        print(
            f"{backlog:9d} {elapsed:9.3f} {rate:10.1f} {report.failed:7d}"
        )

    report_doc = {
        "scale": args.scale,
        "items": n_items,
        "batch_size": args.batch_size,
        "workers": args.workers,
        "repeats": repeats,
        "baseline_items_per_sec": baseline,
        "policies": policies,
        "recovery": recovery,
    }
    if args.json:
        Path(args.json).write_text(json.dumps(report_doc, indent=2))
        print(f"report -> {args.json}")

    if args.assert_overhead is not None and batch_overhead > args.assert_overhead:
        print(
            f"FAIL: fsync=batch overhead {batch_overhead * 100:.1f}% above "
            f"the {args.assert_overhead * 100:.1f}% budget"
        )
        return 1
    return 0


# -- bench-suite entry point -------------------------------------------------


def test_batch_fsync_overhead_within_budget():
    """The tentpole's measurable claim: crash safety is near-free.

    Same service machinery on both sides — only the journal differs —
    so the ratio isolates what WAL appends + one fsync per micro-batch
    flush cost the closed-loop serving path.
    """
    baseline, journaled, _ = journal_overhead("full", 128, 64, 2, "batch", 5)
    assert journaled >= (1.0 - TARGET_OVERHEAD) * baseline, (
        f"journaled {journaled:.0f} items/s vs bare {baseline:.0f} items/s "
        f"({(1.0 - journaled / baseline) * 100:.1f}% > "
        f"{TARGET_OVERHEAD * 100:.0f}% budget)"
    )


if __name__ == "__main__":
    sys.exit(main())
