"""Throughput of the labeling engine's execution backends.

Measures labeled items/sec on the scheduling hot path (the ground truth is
pre-recorded — recording cost is identical across backends) and reports
each backend's speedup over per-item serial labeling.  The headline number
is the batched backend at batch size 64 on the unconstrained Q-greedy
path: one stacked Q-network forward per scheduling round instead of one
forward per item per step.

Run standalone (the CI smoke path uses a tiny world)::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py \
        --scale mini --items 64

or through pytest-benchmark with the rest of the bench suite.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.config import WorldConfig
from repro.data.datasets import generate_dataset
from repro.engine import BACKEND_REGISTRY, LabelingEngine
from repro.labels import build_label_space
from repro.rl.agents import make_agent
from repro.scheduling.qgreedy import AgentPredictor
from repro.zoo.builder import build_zoo
from repro.zoo.oracle import GroundTruth

#: The acceptance bar: batched vs per-item items/sec on the Q-greedy path.
TARGET_SPEEDUP = 3.0

_WORLDS: dict[tuple, tuple] = {}


def build_world(scale: str = "mini", n_items: int = 64, seed: int = 20200208):
    """(config, zoo, items, truth, predictor) for one bench world, cached.

    Throughput does not depend on agent quality (every forward costs the
    same), so the predictor wraps a freshly initialized network and the
    bench skips training entirely.
    """
    key = (scale, n_items, seed)
    if key not in _WORLDS:
        config = WorldConfig(vocab_scale=scale, seed=seed)
        space = build_label_space(config.vocab_scale)
        zoo = build_zoo(config, space)
        dataset = generate_dataset(space, config, "mscoco2017", n_items)
        truth = GroundTruth(zoo, dataset, config)
        agent = make_agent(
            "dueling_dqn", obs_dim=len(space), n_actions=len(zoo) + 1
        )
        predictor = AgentPredictor(agent, len(zoo))
        _WORLDS[key] = (config, zoo, list(dataset), truth, predictor)
    return _WORLDS[key]


def items_per_second(
    backend: str,
    scale: str = "mini",
    n_items: int = 64,
    batch_size: int = 64,
    deadline: float | None = None,
    repeats: int = 3,
) -> float:
    """Best-of-``repeats`` labeling throughput of one backend."""
    config, zoo, items, truth, predictor = build_world(scale, n_items)
    engine = LabelingEngine(
        zoo, predictor, config, backend=backend, batch_size=batch_size
    )
    try:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            engine.label_batch(items, deadline=deadline, truth=truth)
            best = min(best, time.perf_counter() - start)
        return len(items) / best
    finally:
        close = getattr(engine.backend, "close", None)
        if close is not None:
            close()


# -- pytest-benchmark entry points ------------------------------------------


def _bench(benchmark, backend: str):
    config, zoo, items, truth, predictor = build_world("mini", 64)
    engine = LabelingEngine(zoo, predictor, config, backend=backend, batch_size=64)
    benchmark(lambda: engine.label_batch(items, truth=truth))


def test_serial_backend_throughput(benchmark):
    _bench(benchmark, "serial")


def test_batched_backend_throughput(benchmark):
    _bench(benchmark, "batched")


def test_thread_backend_throughput(benchmark):
    _bench(benchmark, "thread")


def test_batched_speedup_over_per_item():
    """The tentpole's measurable claim: batching beats per-item labeling.

    Measured at full scale (1104-dim observations, 30 models), where the
    Q-network forward dominates the scheduling step — the regime the
    production north star cares about.  The mini world's forward is too
    small for batching to amortize much (~2x there).
    """
    serial = items_per_second("serial", scale="full")
    batched = items_per_second("batched", scale="full")
    assert batched >= TARGET_SPEEDUP * serial, (
        f"batched {batched:.0f} items/s vs serial {serial:.0f} items/s "
        f"({batched / serial:.2f}x < {TARGET_SPEEDUP}x)"
    )


# -- standalone / CI smoke ---------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="mini", choices=("mini", "full"))
    parser.add_argument("--items", type=int, default=64)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--deadline", type=float, default=None)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        help="exit nonzero unless batched/serial reaches this ratio",
    )
    args = parser.parse_args(argv)

    rates = {
        name: items_per_second(
            name,
            scale=args.scale,
            n_items=args.items,
            batch_size=args.batch_size,
            deadline=args.deadline,
            repeats=args.repeats,
        )
        # The cluster backend needs a worker fleet and measures dispatch
        # overlap, not single-host scheduling; bench_cluster_scaling.py
        # owns that comparison.
        for name in sorted(BACKEND_REGISTRY)
        if name != "cluster"
    }
    regime = "unconstrained" if args.deadline is None else f"deadline={args.deadline}"
    print(
        f"engine throughput: scale={args.scale} items={args.items} "
        f"batch={args.batch_size} regime={regime}"
    )
    print(f"{'backend':10s} {'items/sec':>12s} {'vs serial':>10s}")
    for name, rate in sorted(rates.items(), key=lambda kv: kv[1]):
        print(f"{name:10s} {rate:12.1f} {rate / rates['serial']:9.2f}x")

    speedup = rates["batched"] / rates["serial"]
    if args.assert_speedup is not None and speedup < args.assert_speedup:
        print(
            f"FAIL: batched speedup {speedup:.2f}x below "
            f"required {args.assert_speedup:.2f}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
