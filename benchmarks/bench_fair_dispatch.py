"""Fair dispatch + result cache: the two serving-tier rewrites, measured.

Two claims, two experiments:

1. **Weighted-fair buckets end regime starvation.**  A deterministic
   fake-clock trace drives sustained *saturating* high-priority traffic
   of one regime past a trickle of low-priority traffic of another,
   through both queue implementations:

   * the legacy PR-3 grouper (``repro.serving.legacy``) anchors every
     batch at the top of its priority heap, so the low-priority regime is
     never dispatched while the pressure lasts — its queue wait grows
     with the length of the trace (unbounded starvation);
   * the per-key bucket queue (``repro.serving.queue``) serves buckets by
     stride-scheduled weighted round-robin, so the low-priority bucket
     keeps its bounded share and its p99 wait stays within a few service
     slots no matter how long the trace runs.

   Single-regime traffic is also replayed through both queues and must
   produce byte-identical dispatch traces — fairness is free when there
   is nothing to arbitrate.

2. **The result cache turns repeat traffic into dictionary lookups.**  A
   Zipf-skewed stream (>=50% repeats by construction) hits one
   :class:`~repro.serving.LabelingService` twice — cache off, then cache
   on.  Hits skip admission, batching, and scheduling entirely;
   submit-to-result throughput on the skewed stream improves >=5x at
   full scale.

Run standalone (the CI smoke path uses the tiny world and writes a JSON
report consumed as a workflow artifact)::

    PYTHONPATH=src python benchmarks/bench_fair_dispatch.py --scale smoke \
        --json fair_dispatch_report.json
    PYTHONPATH=src python benchmarks/bench_fair_dispatch.py --scale full
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.config import WorldConfig
from repro.data.datasets import generate_dataset
from repro.engine import LabelingEngine
from repro.labels import build_label_space
from repro.rl.agents import make_agent
from repro.scheduling.qgreedy import AgentPredictor
from repro.serving import LabelingRequest, LabelingService, RequestQueue
from repro.serving.legacy import LegacyGroupingQueue
from repro.spec import LabelingSpec
from repro.zoo.builder import build_zoo
from repro.zoo.oracle import GroundTruth

#: The fair queue must keep the starved regime's p99 wait within this
#: many service slots; the legacy queue must exceed it by >= this factor.
FAIR_WAIT_SLOTS = 20.0
STARVATION_FACTOR = 5.0
#: Cache-on over cache-off submit-to-result throughput on the Zipf
#: stream (full scale; the smoke floor is softer for noisy CI runners).
CACHE_SPEEDUP_FLOOR = {"smoke": 1.5, "full": 5.0}


class FakeClock:
    """Deterministic time source so the dispatch sim runs in microseconds."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class _Item:
    """Minimal stand-in: the dispatch sim never labels anything."""

    __slots__ = ("item_id",)

    def __init__(self, item_id: str):
        self.item_id = item_id


# -- experiment 1: fairness under saturating cross-traffic -------------------


def run_fairness_trace(
    queue_cls,
    steps: int,
    batch_size: int = 8,
    service_time: float = 0.01,
    low_every: int = 4,
):
    """Replay one saturating cross-traffic trace; returns wait metrics.

    Each simulated service slot delivers ``batch_size`` high-priority
    requests of one regime (exactly saturating capacity), every
    ``low_every``-th slot one low-priority request of another, then pops
    and "serves" one batch.  After ``steps`` slots the arrivals stop and
    the backlog drains, so every low request is eventually dispatched by
    both queues — the difference is *when*.
    """
    clock = FakeClock()
    queue = queue_cls(max_depth=10_000_000, clock=clock)
    high = LabelingSpec(priority=3)
    low = LabelingSpec(deadline=1e9, priority=0)
    low_waits: list[float] = []
    in_loop_low = 0

    def serve_one():
        batch, _, _ = queue.pop_batch(batch_size, 0.0)
        clock.now += service_time
        count = 0
        for request in batch:
            if request.spec is low:
                low_waits.append(clock.now - request.submitted_at)
                count += 1
        return count

    for step in range(steps):
        for i in range(batch_size):
            queue.put(
                LabelingRequest(
                    item=_Item(f"high/{step}/{i}"), priority=3, spec=high,
                    submitted_at=clock.now,
                )
            )
        if step % low_every == 0:
            queue.put(
                LabelingRequest(
                    item=_Item(f"low/{step}"), spec=low,
                    submitted_at=clock.now,
                )
            )
        in_loop_low += serve_one()
    while queue.depth:
        serve_one()
    waits = np.asarray(low_waits)
    return {
        "steps": steps,
        "low_requests": int(waits.size),
        "low_served_under_pressure": in_loop_low,
        "low_p50_slots": float(np.percentile(waits, 50) / service_time),
        "low_p99_slots": float(np.percentile(waits, 99) / service_time),
        "low_max_slots": float(waits.max() / service_time),
    }


def run_single_regime_parity(n_items: int = 100, batch_size: int = 7) -> bool:
    """Both queues must emit identical traces on single-regime traffic."""
    spec = LabelingSpec(deadline=0.5)
    traces = []
    for queue_cls in (RequestQueue, LegacyGroupingQueue):
        queue = queue_cls(max_depth=n_items)
        for i in range(n_items):
            queue.put(
                LabelingRequest(item=_Item(f"it/{i}"), spec=spec, priority=1)
            )
        trace = []
        while queue.depth:
            batch, _, reason = queue.pop_batch(batch_size, 0.0)
            trace.append(([r.item.item_id for r in batch], reason))
        traces.append(trace)
    return traces[0] == traces[1]


# -- experiment 2: result-cache throughput on a Zipf stream ------------------


def build_world(scale: str, n_distinct: int, seed: int = 20200208):
    vocab = "full" if scale == "full" else "mini"
    config = WorldConfig(vocab_scale=vocab, seed=seed)
    space = build_label_space(config.vocab_scale)
    zoo = build_zoo(config, space)
    dataset = generate_dataset(space, config, "mscoco2017", n_distinct)
    truth = GroundTruth(zoo, dataset, config)
    agent = make_agent(
        "dueling_dqn", obs_dim=len(space), n_actions=len(zoo) + 1
    )
    predictor = AgentPredictor(agent, len(zoo))
    return config, zoo, list(dataset), truth, predictor


def zipf_stream(items, n_requests: int, alpha: float, seed: int):
    """A skewed request stream: rank-``alpha`` power law over ``items``."""
    ranks = np.arange(1, len(items) + 1, dtype=np.float64)
    weights = ranks**-alpha
    weights /= weights.sum()
    rng = np.random.default_rng(seed)
    draws = rng.choice(len(items), size=n_requests, p=weights)
    return [items[i] for i in draws]


def run_cache_stream(
    scale: str,
    n_distinct: int,
    n_requests: int,
    alpha: float = 1.1,
    batch_size: int = 16,
    workers: int = 2,
    cache_size: int = 4096,
    seed: int = 20200208,
):
    """One skewed stream through one service, cache off vs on."""
    config, zoo, items, truth, predictor = build_world(scale, n_distinct, seed)
    stream = zipf_stream(items, n_requests, alpha, seed)
    unique = len({item.item_id for item in stream})
    repeat_share = 1.0 - unique / len(stream)
    throughput = {}
    for label, size in (("cache_off", None), ("cache_on", cache_size)):
        engine = LabelingEngine(zoo, predictor, config)
        service = LabelingService(
            engine,
            batch_size=batch_size,
            max_wait=0.002,
            workers=workers,
            max_depth=max(n_requests, 1),
            spec=LabelingSpec(),
            truth=truth,
            cache_size=size,
        )
        with service:
            started = time.perf_counter()
            futures = [service.submit(item) for item in stream]
            for future in futures:
                future.result()
            elapsed = time.perf_counter() - started
        snapshot = service.snapshot()
        assert snapshot.counters["failed"] == 0
        throughput[label] = {
            "elapsed_s": elapsed,
            "items_per_s": len(stream) / elapsed,
            "scheduled": snapshot.counters["submitted"],
            "cache_hit": snapshot.counters["cache_hit"],
            "coalesced": snapshot.counters["coalesced"],
        }
    speedup = (
        throughput["cache_on"]["items_per_s"]
        / throughput["cache_off"]["items_per_s"]
    )
    return {
        "requests": n_requests,
        "distinct_items": n_distinct,
        "unique_in_stream": unique,
        "repeat_share": repeat_share,
        "cache_off": throughput["cache_off"],
        "cache_on": throughput["cache_on"],
        "speedup": speedup,
    }


# -- reporting ---------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=("smoke", "full"))
    parser.add_argument("--steps", type=int, default=None)
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--distinct", type=int, default=None)
    parser.add_argument("--batch-size", type=int, default=16)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--json", default=None, help="write the report to this path"
    )
    args = parser.parse_args(argv)

    smoke = args.scale == "smoke"
    steps = args.steps if args.steps is not None else (400 if smoke else 2000)
    n_requests = (
        args.requests if args.requests is not None else (600 if smoke else 2000)
    )
    n_distinct = (
        args.distinct if args.distinct is not None else (24 if smoke else 64)
    )

    print(
        f"fair dispatch: scale={args.scale} trace_steps={steps} "
        f"cache_stream={n_requests} over {n_distinct} distinct items"
    )

    fair = run_fairness_trace(RequestQueue, steps)
    legacy = run_fairness_trace(LegacyGroupingQueue, steps)
    parity = run_single_regime_parity()
    print("\nlow-priority regime under saturating high-priority cross-traffic")
    print(
        "  (waits in service slots; 'under pressure' = dispatched before "
        "the cross-traffic stopped)"
    )
    for name, report in (("bucket queue", fair), ("legacy grouper", legacy)):
        print(
            f"  {name:15s} p50 {report['low_p50_slots']:8.1f}  "
            f"p99 {report['low_p99_slots']:8.1f}  "
            f"max {report['low_max_slots']:8.1f}  "
            f"under pressure {report['low_served_under_pressure']}"
            f"/{report['low_requests']}"
        )
    print(f"  single-regime dispatch traces identical: {parity}")

    cache = run_cache_stream(
        args.scale,
        n_distinct,
        n_requests,
        batch_size=args.batch_size,
        workers=args.workers,
    )
    print(
        f"\nresult cache on a Zipf stream "
        f"({cache['repeat_share']:.0%} repeats, "
        f"{cache['unique_in_stream']} unique items)"
    )
    for label in ("cache_off", "cache_on"):
        report = cache[label]
        print(
            f"  {label:10s} {report['items_per_s']:10.0f} items/sec  "
            f"(scheduled {report['scheduled']}, hits {report['cache_hit']}, "
            f"coalesced {report['coalesced']})"
        )
    print(f"  submit-to-result speedup: {cache['speedup']:.1f}x")

    failures = []
    if not parity:
        failures.append("single-regime traces diverged between queues")
    if fair["low_p99_slots"] > FAIR_WAIT_SLOTS:
        failures.append(
            f"bucket-queue low-priority p99 {fair['low_p99_slots']:.1f} "
            f"slots exceeds the {FAIR_WAIT_SLOTS:.0f}-slot bound"
        )
    if legacy["low_p99_slots"] < STARVATION_FACTOR * fair["low_p99_slots"]:
        failures.append("legacy grouper did not starve the low regime")
    if legacy["low_served_under_pressure"] != 0:
        failures.append("legacy grouper served low traffic under pressure")
    if cache["repeat_share"] < 0.5:
        failures.append(f"repeat share {cache['repeat_share']:.0%} below 50%")
    floor = CACHE_SPEEDUP_FLOOR[args.scale]
    if cache["speedup"] < floor:
        failures.append(
            f"cache speedup {cache['speedup']:.1f}x below {floor:.1f}x floor"
        )

    report = {
        "scale": args.scale,
        "fairness": {"bucket": fair, "legacy": legacy, "parity": parity},
        "cache": cache,
        "failures": failures,
    }
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"\nreport written to {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


# -- bench-suite entry point -------------------------------------------------


def test_fair_dispatch_and_cache():
    """The rewrite's measurable claims, at full scale.

    The bucket queue bounds the starved regime's p99 wait where the
    legacy grouper grows it without bound, stays trace-identical on
    single-regime traffic, and the result cache yields >=5x on a >=50%
    repeat Zipf stream.
    """
    assert main(["--scale", "full"]) == 0


if __name__ == "__main__":
    sys.exit(main())
