"""Fig. 2 / §II: no policy (5.16 s) vs random (4.64 s) vs optimal (1.14 s)."""

from conftest import run_and_print

from repro.experiments import fig02_motivation


def test_fig02_motivation(benchmark):
    report = run_and_print(benchmark, "fig02", fig02_motivation.run)
    m = report.measured
    # Paper shape: optimal << random < no policy.
    assert m["optimal_time"] < m["random_time"] < m["no_policy_time"]
    # The optimal policy skips at least half of the compute (paper: 78%).
    assert m["optimal_fraction"] < 0.5
