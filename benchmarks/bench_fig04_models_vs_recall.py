"""Fig. 4: avg #executed models vs recall — 4 DRL agents x 3 datasets.

Paper: DuelingDQN (the best agent) saves 44.1-60.6% of model executions at
0.8 recall and 48.4-50.0% at 1.0 recall, vs the random policy; the optimal
oracle saves 79.3-84.0% at 0.8.
"""

from conftest import run_and_print

from repro.experiments import fig04_05_prediction


def test_fig04_models_vs_recall(benchmark):
    report = run_and_print(benchmark, "fig04_05", fig04_05_prediction.run)
    m = report.measured
    # Agent sits strictly between random (0 saving) and oracle on every set.
    assert m["dueling_models_saved_at_0.8_low"] > 0.15
    for dataset in ("mscoco2017", "mirflickr25", "places365"):
        agent = m[f"{dataset}_dueling_models_saved_at_0.8"]
        oracle = m[f"{dataset}_optimal_models_saved_at_0.8"]
        assert 0.0 < agent <= oracle
