"""Fig. 5: avg execution time vs recall (same sweep as Fig. 4).

Paper: the DRL agent saves 45.6-59.5% execution time at 0.8 recall and
48.6-51.2% at 1.0, vs the random policy.
"""

from conftest import run_and_print

from repro.experiments import fig04_05_prediction


def test_fig05_time_vs_recall(benchmark):
    report = run_and_print(benchmark, "fig04_05", fig04_05_prediction.run)
    m = report.measured
    assert m["dueling_time_saved_at_0.8_low"] > 0.15
    assert m["dueling_time_saved_at_0.8_high"] <= 1.0
