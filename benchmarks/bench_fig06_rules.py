"""Fig. 6 + Table II: DuelingDQN vs handcrafted rules vs random vs optimal.

Paper: the ten Table II rules save only 22.6% executions at 0.8 recall
(2.1% at 1.0); the DRL agent dominates them by a wide margin.
"""

from conftest import run_and_print

from repro.experiments import fig06_rules


def test_fig06_rules(benchmark):
    report = run_and_print(benchmark, "fig06", fig06_rules.run)
    m = report.measured
    # Rules barely help at full recall (paper: 2.1%)...
    assert m["rules_models_saved_at_1.0"] < 0.15
    # ...while the agent clearly beats the rule policy at 0.8 recall.
    assert m["dueling_models_saved_at_0.8"] > m["rules_models_saved_at_0.8"]
