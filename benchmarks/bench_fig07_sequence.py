"""Fig. 7: qualitative execution sequence scheduled by the DuelingDQN agent."""

from conftest import run_and_print

from repro.experiments import fig07_sequence


def test_fig07_sequence(benchmark):
    report = run_and_print(benchmark, "fig07", fig07_sequence.run)
    # A handful of well-chosen models should recall most of the item's value.
    assert report.measured["recall_after_sequence"] > 0.5
