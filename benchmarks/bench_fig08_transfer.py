"""Fig. 8: cross-dataset transfer (Stanford40 <-> VOC2012).

Paper: both agents beat random on both test sets (51.1% / 36.9% average
time saved), even when trained on the other dataset.
"""

from conftest import run_and_print

from repro.experiments import fig08_transfer


def test_fig08_transfer(benchmark):
    report = run_and_print(benchmark, "fig08", fig08_transfer.run)
    m = report.measured
    for tag in ("dataset1", "dataset2"):
        # Every agent (native and transferred) beats random on this set.
        assert m[f"agent1_{tag}_time"] < m[f"random_{tag}_time"]
        assert m[f"agent2_{tag}_time"] < m[f"random_{tag}_time"]
        # And the oracle lower-bounds everyone.
        assert m[f"optimal_{tag}_time"] <= m[f"agent1_{tag}_time"]
