"""Fig. 9: theta priority pulls the face detector forward in the order.

Paper (DuelingDQN): avg selection order 28.9 / 27.4 / 4.0 / 3.0 for
theta = 1 / 2 / 5 / 10, with total-time savings stable at 48-54%.
"""

from conftest import run_and_print

from repro.experiments import fig09_theta


def test_fig09_theta(benchmark):
    report = run_and_print(benchmark, "fig09", fig09_theta.run)
    m = report.measured
    # Raising theta must move the face detector earlier...
    assert m["order_theta_20"] < m["order_theta_1"]
    # ...without giving up the scheduling efficiency (still beats random).
    assert m["time_saved_theta_20"] > 0.0
