"""Fig. 10: Algorithm 1 under deadlines vs Q-greedy / random / optimal*.

Paper: +188.7-309.5% recall over random at a 0.5 s deadline; performance
ratio to optimal* above 1 - 1/e in most cases.
"""

import numpy as np
from conftest import run_and_print

from repro.experiments import fig10_deadline


def test_fig10_deadline(benchmark):
    report = run_and_print(benchmark, "fig10", fig10_deadline.run)
    m = report.measured
    # Large improvement over random under a tight budget...
    assert m["improvement_at_0.5s_low"] > 0.3
    # ...and the 1 - 1/e quality bar of the paper's Fig. 10(d).
    assert m["min_ratio"] > 1 - 1 / np.e
