"""Fig. 11: Algorithm 2 under memory+deadline (8/12/16 GB x 0-2 s).

Paper: +106.9% / +52.8% / +19.5% recall over random at the 0.8 s deadline
under 8/12/16 GB, with the improvement shrinking as memory grows; ratio to
optimal* above 1 - 1/e in most cases.

Our simulated zoo saturates earlier than the paper's testbed (cheap models
carry more of the value), so the absolute improvements are smaller; the
monotone shape and the ratio bar are the reproduction targets.
"""

import numpy as np
from conftest import run_and_print

from repro.experiments import fig11_memory


def test_fig11_memory(benchmark):
    report = run_and_print(benchmark, "fig11", fig11_memory.run)
    m = report.measured
    # Shape: Algorithm 2 helps most when memory is scarcest.
    assert m["improvement_8gb_at_0.8s"] >= m["improvement_16gb_at_0.8s"] - 0.02
    for gb in (8, 12, 16):
        assert m[f"ratio_{gb}gb"] > 1 - 1 / np.e
