"""Fig. 12: transferred agents under deadline constraints.

Paper: at a 1.0 s deadline, Agent1/Agent2 improve recalled value over
random by +346.8%/+224.9% on Dataset1 and +250.5%/+190.5% on Dataset2.
"""

from conftest import run_and_print

from repro.experiments import fig12_transfer_deadline


def test_fig12_transfer_deadline(benchmark):
    report = run_and_print(benchmark, "fig12", fig12_transfer_deadline.run)
    m = report.measured
    # Both agents beat random on both datasets, including cross-trained.
    for key, value in m.items():
        assert value > 0.0, key
