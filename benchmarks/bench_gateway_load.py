"""Open-loop multi-tenant load against the labeling gateway.

Drives a live :class:`~repro.serving.gateway.LabelingGateway` with many
concurrent asyncio clients split across tenants, each pacing arrivals on
its own schedule (Poisson gaps) over a Zipf-skewed item popularity, and
measures everything **client-side** — the numbers are what a caller
would see, not what the server believes about itself.

Two phases answer the PR's acceptance questions:

1. **baseline** — only the cold tenants run, at a sustainable rate.
   Their per-tenant p50/p95/p99 is the isolation reference.
2. **contended** — the same cold workload, plus a hot tenant saturating
   the service with full-speed batch submissions.  Under the
   hierarchical queue the cold tenants' p99 must stay within
   ``--assert-fairness`` (default 4x) of their baseline; under a flat
   queue it degrades with the hot tenant's backlog instead.

Also verified on the same live gateway: cross-tenant result-cache
isolation (tenant B's first request for an item tenant A just labeled
must **not** be served from cache), and the presence of the
tenant-labeled metric families on ``/metrics.json``.

Scales: ``smoke`` (~60 clients, CI), ``mini``, ``full`` (>= 1000
clients across >= 3 tenants — the acceptance configuration).  By
default the bench spawns ``python -m repro.cli gateway`` as a child
process (server and clients must not share a GIL); point ``--url`` at
an already-running gateway to skip the spawn (the CI smoke path)::

    PYTHONPATH=src python benchmarks/bench_gateway_load.py --scale smoke \
        --json BENCH_gateway_load.json
    PYTHONPATH=src python benchmarks/bench_gateway_load.py --scale full \
        --assert-fairness 4.0
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time

import numpy as np

#: Cold-tenant baseline p99 floor: ratios against a near-zero baseline
#: are noise, so the denominator never drops below this (seconds).
FAIRNESS_FLOOR = 0.05

SCALES = {
    # per-cold-tenant clients, hot clients, phase seconds, req/s per client.
    # Cold rates are sized so aggregate cold demand sits well under one
    # gateway process's HTTP capacity — the *service queue* must be the
    # contended resource, or the bench measures loop saturation instead
    # of scheduling fairness.
    "smoke": dict(cold_clients=12, hot_clients=24, duration=3.0, rate=6.0),
    "mini": dict(cold_clients=60, hot_clients=40, duration=6.0, rate=3.0),
    "full": dict(cold_clients=320, hot_clients=120, duration=10.0, rate=1.5),
}

DEMO_KEY = "demo-key-{name}".format


# -- tiny asyncio HTTP/1.1 client (stdlib only, keep-alive) -----------------


class GatewayClient:
    """One keep-alive connection to the gateway."""

    def __init__(self, host: str, port: int, api_key: str | None):
        self.host = host
        self.port = port
        self.api_key = api_key
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict]:
        """One round trip; reconnects once on a stale keep-alive socket."""
        for attempt in (0, 1):
            if self._writer is None:
                await self._connect()
            try:
                return await self._round_trip(method, path, body)
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                await self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    async def _round_trip(self, method, path, body) -> tuple[int, dict]:
        payload = b""
        if body is not None:
            payload = json.dumps(body, separators=(",", ":")).encode()
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}",
            "Connection: keep-alive",
        ]
        if self.api_key:
            lines.append(f"Authorization: Bearer {self.api_key}")
        if payload:
            lines.append("Content-Type: application/json")
        lines.append(f"Content-Length: {len(payload)}")
        self._writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + payload)
        await self._writer.drain()

        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionResetError("server closed connection")
        status = int(status_line.split()[1])
        headers: dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise ConnectionResetError("truncated response headers")
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        if "chunked" in headers.get("transfer-encoding", "").lower():
            chunks = []
            while True:
                size = int((await self._reader.readline()).strip(), 16)
                if size == 0:
                    await self._reader.readline()
                    break
                chunks.append(await self._reader.readexactly(size))
                await self._reader.readexactly(2)
            raw = b"".join(chunks)
        else:
            raw = await self._reader.readexactly(
                int(headers.get("content-length", 0))
            )
        if headers.get("connection", "").lower() == "close":
            await self.close()
        try:
            parsed = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            parsed = {"raw": raw.decode("utf-8", "replace")}
        return status, parsed


# -- load generation ---------------------------------------------------------


class TenantStats:
    """Client-side samples for one tenant within one phase."""

    def __init__(self) -> None:
        self.latencies: list[float] = []
        self.statuses: dict[int, int] = {}
        self.items = 0

    def record(self, status: int, latency: float, items: int = 1) -> None:
        self.statuses[status] = self.statuses.get(status, 0) + 1
        if status == 200:
            self.latencies.append(latency)
            self.items += items

    def summary(self, elapsed: float) -> dict:
        lat = np.sort(np.asarray(self.latencies)) if self.latencies else None
        pct = (
            {
                "p50": float(np.percentile(lat, 50)),
                "p95": float(np.percentile(lat, 95)),
                "p99": float(np.percentile(lat, 99)),
                "mean": float(lat.mean()),
            }
            if lat is not None
            else {"p50": None, "p95": None, "p99": None, "mean": None}
        )
        return {
            "requests": int(sum(self.statuses.values())),
            "ok": int(self.statuses.get(200, 0)),
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "items_per_sec": self.items / elapsed if elapsed > 0 else 0.0,
            "latency_s": pct,
        }


def zipf_picker(item_ids: list[str], seed: int, s: float = 1.1):
    """Zipf-skewed popularity over the catalog (hot repeats hit cache)."""
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, len(item_ids) + 1, dtype=np.float64)
    probs = ranks**-s
    probs /= probs.sum()

    def pick() -> str:
        return item_ids[int(rng.choice(len(item_ids), p=probs))]

    return pick


async def cold_client(
    host, port, key, item_ids, rate, stop_at, stats: TenantStats, seed: int
) -> None:
    """Paced single-item labeler: one request per Poisson arrival."""
    rng = np.random.default_rng(seed)
    pick = zipf_picker(item_ids, seed + 1)
    client = GatewayClient(host, port, key)
    loop = asyncio.get_running_loop()
    next_at = loop.time() + rng.uniform(0.0, 1.0 / rate)
    try:
        while True:
            delay = next_at - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            if loop.time() >= stop_at:
                break
            next_at += rng.exponential(1.0 / rate)
            started = loop.time()
            try:
                status, _ = await client.request(
                    "POST", "/v1/label", {"item_id": pick()}
                )
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                stats.record(-1, 0.0)
                continue
            stats.record(status, loop.time() - started)
    finally:
        await client.close()


async def hot_client(
    host, port, key, item_ids, batch, stop_at, stats: TenantStats, seed: int
) -> None:
    """Saturating batch labeler: back-to-back /v1/label/batch calls."""
    rng = np.random.default_rng(seed)
    client = GatewayClient(host, port, key)
    loop = asyncio.get_running_loop()
    try:
        while loop.time() < stop_at:
            ids = [
                item_ids[int(rng.integers(len(item_ids)))] for _ in range(batch)
            ]
            started = loop.time()
            try:
                status, _ = await client.request(
                    "POST", "/v1/label/batch", {"items": ids}
                )
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                stats.record(-1, 0.0)
                continue
            stats.record(status, loop.time() - started, items=batch)
            if status == 429:
                await asyncio.sleep(0.01)  # honor backpressure minimally
    finally:
        await client.close()


async def run_phase(
    host,
    port,
    cold_tenants: list[str],
    hot_tenant: str | None,
    item_ids,
    cfg,
    seed: int,
) -> tuple[dict, float]:
    """One load phase; returns per-tenant summaries and elapsed seconds."""
    loop = asyncio.get_running_loop()
    stop_at = loop.time() + cfg["duration"]
    stats = {name: TenantStats() for name in cold_tenants}
    tasks = []
    for t_index, name in enumerate(cold_tenants):
        for c_index in range(cfg["cold_clients"]):
            tasks.append(
                cold_client(
                    host,
                    port,
                    DEMO_KEY(name=name),
                    item_ids,
                    cfg["rate"],
                    stop_at,
                    stats[name],
                    seed + 1000 * t_index + c_index,
                )
            )
    if hot_tenant is not None:
        stats[hot_tenant] = TenantStats()
        for c_index in range(cfg["hot_clients"]):
            tasks.append(
                hot_client(
                    host,
                    port,
                    DEMO_KEY(name=hot_tenant),
                    item_ids,
                    cfg["hot_batch"],
                    stop_at,
                    stats[hot_tenant],
                    seed + 777_000 + c_index,
                )
            )
    started = loop.time()
    await asyncio.gather(*tasks)
    elapsed = loop.time() - started
    return {name: s.summary(elapsed) for name, s in stats.items()}, elapsed


# -- probes ------------------------------------------------------------------


async def cache_isolation_probe(host, port, tenant_a, tenant_b, item_id) -> dict:
    """A labels an item twice, then B asks: B's first answer must be
    computed fresh (tenant-partitioned cache), B's second cached."""
    a = GatewayClient(host, port, DEMO_KEY(name=tenant_a))
    b = GatewayClient(host, port, DEMO_KEY(name=tenant_b))
    try:
        flags = []
        for client in (a, a, b, b):
            status, body = await client.request(
                "POST", "/v1/label", {"item_id": item_id}
            )
            if status != 200:
                return {"passed": False, "error": f"status {status}: {body}"}
            flags.append(bool(body.get("cached")))
        expected = [False, True, False, True]
        return {
            "passed": flags == expected,
            "cached_flags": flags,
            "expected": expected,
        }
    finally:
        await a.close()
        await b.close()


async def scrape_tenant_families(host, port) -> dict:
    """Which tenant-labeled families /metrics.json exposes."""
    client = GatewayClient(host, port, None)
    try:
        status, body = await client.request("GET", "/metrics.json")
    finally:
        await client.close()
    if status != 200:
        return {"scrape_status": status, "families": []}
    names = set(body)  # render_json: one key per family name
    wanted = [
        "repro_gateway_requests_total",
        "repro_gateway_admitted_total",
        "repro_gateway_inflight",
        "repro_gateway_e2e_seconds",
        "repro_tenant_queue_wait_seconds",
        "repro_tenant_slo_completed_total",
    ]
    return {
        "scrape_status": status,
        "families": sorted(n for n in names if "tenant" in n or "gateway" in n),
        "missing": [n for n in wanted if n not in names],
    }


# -- self-hosting ------------------------------------------------------------


def spawn_gateway(args) -> tuple[str, int, object]:
    """Launch ``repro.cli gateway`` in its own process; (host, port, proc).

    A separate process, deliberately: clients and server sharing one
    interpreter would share one GIL, and at the 1000-client scales the
    bench would measure its own scheduling jitter instead of the
    gateway's fairness.
    """
    import socket
    import subprocess

    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    cmd = [
        sys.executable,
        "-m",
        "repro.cli",
        "gateway",
        "--items", str(args.items),
        "--port", str(port),
        "--demo-tenants", str(args.tenants + 1),  # +1 = the hot tenant
        "--batch-size", str(args.batch_size),
        "--max-wait", str(args.max_wait),
        "--workers", str(args.workers),
        "--max-depth", str(args.max_depth),
        "--cache-size", str(args.cache_size),
    ]
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 180.0
    for line in proc.stdout:
        if "gateway listening at" in line:
            break
        if time.monotonic() > deadline or proc.poll() is not None:
            proc.kill()
            raise SystemExit(f"gateway failed to start: {line.strip()}")
    else:
        raise SystemExit("gateway exited before listening")
    # Drain the child's stdout in the background so it never blocks on a
    # full pipe while we load it.
    import threading

    threading.Thread(
        target=lambda: [None for _ in proc.stdout], daemon=True
    ).start()
    return "127.0.0.1", port, proc


def raise_fd_limit(wanted: int) -> None:
    """Best-effort RLIMIT_NOFILE bump for the 1000-connection scales."""
    try:
        import resource

        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        if soft < wanted:
            resource.setrlimit(
                resource.RLIMIT_NOFILE, (min(wanted, hard), hard)
            )
    except (ImportError, ValueError, OSError):
        pass


# -- entry point -------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--scale", default="smoke", choices=sorted(SCALES)
    )
    parser.add_argument(
        "--url",
        default=None,
        help="drive an external gateway (e.g. http://127.0.0.1:8099) "
        "instead of self-hosting; demo-roster keys are assumed",
    )
    parser.add_argument("--tenants", type=int, default=3, help="cold tenants")
    parser.add_argument("--cold-clients", type=int, default=None)
    parser.add_argument("--hot-clients", type=int, default=None)
    parser.add_argument("--duration", type=float, default=None)
    parser.add_argument("--rate", type=float, default=None)
    parser.add_argument("--hot-batch", type=int, default=8)
    parser.add_argument(
        "--assert-fairness",
        type=float,
        default=None,
        help="fail unless every cold tenant's contended p99 is within "
        "this ratio of its baseline p99 (acceptance: 4.0)",
    )
    parser.add_argument("--json", default=None, help="write results here")
    parser.add_argument("--seed", type=int, default=20200208)
    # self-host knobs
    parser.add_argument("--items", type=int, default=96)
    parser.add_argument("--batch-size", type=int, default=16)
    parser.add_argument("--max-wait", type=float, default=0.01)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--max-depth", type=int, default=4096)
    parser.add_argument("--cache-size", type=int, default=2048)
    args = parser.parse_args(argv)

    cfg = dict(SCALES[args.scale])
    cfg["hot_batch"] = args.hot_batch
    for key in ("cold_clients", "hot_clients", "duration", "rate"):
        if getattr(args, key) is not None:
            cfg[key] = getattr(args, key)

    cold_tenants = [f"tenant-{i}" for i in range(args.tenants)]
    hot_tenant = f"tenant-{args.tenants}"
    total_clients = args.tenants * cfg["cold_clients"] + cfg["hot_clients"]
    raise_fd_limit(2 * total_clients + 256)

    cleanup = None
    if args.url is not None:
        stripped = args.url.rstrip("/").removeprefix("http://")
        host, _, port = stripped.partition(":")
        port = int(port or 80)
    else:
        host, port, proc = spawn_gateway(args)

        def cleanup() -> None:
            proc.terminate()
            try:
                proc.wait(timeout=10)
            except Exception:
                proc.kill()

    async def drive() -> dict:
        probe = GatewayClient(host, port, DEMO_KEY(name=cold_tenants[0]))
        try:
            status, body = await probe.request("GET", "/v1/items")
        finally:
            await probe.close()
        if status != 200:
            raise SystemExit(f"catalog fetch failed: {status} {body}")
        catalog = body["items"]
        # Reserve the lexicographically last item for the cache probe so
        # phase traffic (Zipf over the rest) never touches it first.
        probe_item, workload = catalog[-1], catalog[:-1]

        print(
            f"gateway load: scale={args.scale} url=http://{host}:{port} "
            f"tenants={len(cold_tenants)}+1hot clients={total_clients} "
            f"catalog={len(catalog)}"
        )
        print(f"phase 1/2: baseline ({cfg['duration']:.0f}s, cold tenants only)")
        baseline, base_elapsed = await run_phase(
            host, port, cold_tenants, None, workload, cfg, args.seed
        )
        await asyncio.sleep(0.5)
        print(
            f"phase 2/2: contended ({cfg['duration']:.0f}s, "
            f"+{cfg['hot_clients']} saturating {hot_tenant} clients)"
        )
        contended, cont_elapsed = await run_phase(
            host, port, cold_tenants, hot_tenant, workload, cfg, args.seed + 1
        )
        await asyncio.sleep(0.5)
        cache = await cache_isolation_probe(
            host, port, cold_tenants[0], cold_tenants[-1], probe_item
        )
        metrics = await scrape_tenant_families(host, port)
        return {
            "baseline": baseline,
            "baseline_elapsed": base_elapsed,
            "contended": contended,
            "contended_elapsed": cont_elapsed,
            "cache_isolation": cache,
            "metrics": metrics,
        }

    try:
        outcome = asyncio.run(drive())
    finally:
        if cleanup is not None:
            cleanup()

    fairness = {}
    worst = 0.0
    for name in cold_tenants:
        base_p99 = outcome["baseline"][name]["latency_s"]["p99"]
        cont_p99 = outcome["contended"][name]["latency_s"]["p99"]
        if base_p99 is None or cont_p99 is None:
            fairness[name] = {"ratio": None}
            continue
        ratio = cont_p99 / max(base_p99, FAIRNESS_FLOOR)
        fairness[name] = {
            "baseline_p99_s": base_p99,
            "contended_p99_s": cont_p99,
            "ratio": ratio,
        }
        worst = max(worst, ratio)

    for phase in ("baseline", "contended"):
        print(f"{phase}:")
        for name, summary in outcome[phase].items():
            lat = summary["latency_s"]
            line = (
                f"  {name:<10} req={summary['requests']:<6} "
                f"ok={summary['ok']:<6} {summary['items_per_sec']:8.1f} items/s"
            )
            if lat["p99"] is not None:
                line += (
                    f"  p50={lat['p50'] * 1000:7.1f}ms "
                    f"p95={lat['p95'] * 1000:7.1f}ms "
                    f"p99={lat['p99'] * 1000:7.1f}ms"
                )
            print(line)
    for name, entry in fairness.items():
        if entry["ratio"] is not None:
            print(
                f"fairness {name}: contended/baseline p99 = "
                f"{entry['ratio']:.2f}x"
            )
    print(
        "cache isolation:",
        "PASS" if outcome["cache_isolation"].get("passed") else "FAIL",
        outcome["cache_isolation"],
    )
    print(
        f"tenant metric families: {len(outcome['metrics']['families'])} "
        f"(missing: {outcome['metrics'].get('missing', [])})"
    )

    report = {
        "bench": "gateway_load",
        "scale": args.scale,
        "config": {**cfg, "tenants": args.tenants, "clients": total_clients},
        "phases": {
            "baseline": outcome["baseline"],
            "contended": outcome["contended"],
        },
        "fairness": {
            "per_tenant": fairness,
            "worst_ratio": worst,
            "floor_s": FAIRNESS_FLOOR,
            "threshold": args.assert_fairness,
        },
        "cache_isolation": outcome["cache_isolation"],
        "metrics": outcome["metrics"],
        "timestamp": time.time(),
    }
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {args.json}")

    failed = []
    if not outcome["cache_isolation"].get("passed"):
        failed.append("cache isolation")
    if outcome["metrics"].get("missing"):
        failed.append(f"metric families missing {outcome['metrics']['missing']}")
    if args.assert_fairness is not None and worst > args.assert_fairness:
        failed.append(
            f"fairness {worst:.2f}x exceeds {args.assert_fairness:.2f}x"
        )
    if failed:
        print("FAILED:", "; ".join(failed))
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
