"""Extension (§VIII future work): the model-relationship graph policy.

The paper's conclusion calls for fast construction of a model-relationship
graph.  We build it in one counting pass over the training recordings and
schedule with its posterior-usefulness ranking.  Expected ordering of
policies at 0.8 recall:

    optimal  <  DRL agent  <=  graph  <  rules/random

i.e. the automatically-learned graph beats the handcrafted Table II rules
and approaches the DRL agent, while remaining fully interpretable.
"""

from conftest import run_and_print

from repro.analysis.metrics import average_cost_curves
from repro.analysis.tables import format_table
from repro.experiments.common import ExperimentReport
from repro.graph import GraphPolicy, build_relationship_graph
from repro.scheduling.base import run_ordering_policy
from repro.scheduling.optimal import OptimalPolicy
from repro.scheduling.qgreedy import QGreedyPolicy
from repro.scheduling.random_policy import RandomPolicy
from repro.scheduling.rules import RuleBasedPolicy


def _run(ctx) -> ExperimentReport:
    dataset = "mscoco2017"
    truth = ctx.ensure_truth(dataset)
    train, _ = ctx.splits(dataset)
    item_ids = ctx.eval_ids(dataset)
    graph = build_relationship_graph(truth, [i.item_id for i in train])

    policies = {
        "random": RandomPolicy(seed=2),
        "rules": RuleBasedPolicy(seed=2),
        "graph": GraphPolicy(graph),
        "dueling_dqn": QGreedyPolicy(ctx.predictor(dataset, "dueling_dqn")),
        "optimal": OptimalPolicy(),
    }
    rows = []
    measured = {}
    for name, policy in policies.items():
        traces = [run_ordering_policy(policy, truth, i) for i in item_ids]
        curve = average_cost_curves(name, traces)
        models_08 = curve.at(0.8)[0]
        time_08 = curve.at(0.8)[1]
        measured[f"{name}_models_at_0.8"] = models_08
        rows.append((name, f"{models_08:.2f}", f"{time_08:.3f}"))

    table = format_table(
        ("policy", "avg models @0.8", "avg time @0.8 (s)"),
        rows,
        title=f"Model-relationship graph policy ({dataset})",
    )
    edges = graph.strongest_edges(k=6)
    learned = "\n".join(
        f"  {s} -> {t} (lift {l:.2f})" for s, t, l in edges
    )
    return ExperimentReport(
        experiment="graph_policy",
        title="Auto-learned model-relationship graph (§VIII)",
        text=table + "\nstrongest learned relationships:\n" + learned,
        measured=measured,
    )


def test_graph_policy(benchmark):
    report = run_and_print(benchmark, "graph_policy", _run)
    m = report.measured
    # The learned graph must beat handcrafted rules and random...
    assert m["graph_models_at_0.8"] < m["rules_models_at_0.8"]
    assert m["graph_models_at_0.8"] < m["random_models_at_0.8"]
    # ...and no interpretable policy beats the oracle.
    assert m["optimal_models_at_0.8"] <= m["graph_models_at_0.8"]
