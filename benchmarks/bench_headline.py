"""Section I headline claims: 53.1% time saved at full recall, ~70% at 0.8
recall (vs no policy), and +132-310% value under a 0.5 s budget."""

from conftest import run_and_print

from repro.experiments import headline


def test_headline_claims(benchmark):
    report = run_and_print(benchmark, "headline", headline.run)
    m = report.measured
    assert m["time_saved_at_1.0"] > 0.3  # paper: 53.1%
    assert m["time_saved_at_0.8"] > 0.5  # paper: ~70%
    assert m["improvement_at_0.5s_low"] > 0.3  # paper: +132% lower bound
