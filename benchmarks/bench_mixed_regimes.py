"""Mixed-regime serving: homogeneous-batch grouping vs a shared budget.

Three client populations share one :class:`~repro.serving.LabelingService`:

* **unconstrained** — wants every label (Q-greedy over the whole zoo);
* **deadline** — Algorithm 1 under a per-item serial-time budget;
* **deadline+memory** — Algorithm 2 under time and GPU-memory budgets.

Two ways to host them:

1. **Grouped (spec-routed)** — each request carries its own
   :class:`~repro.spec.LabelingSpec`; the queue groups dispatch by
   ``batch_key`` so every micro-batch is homogeneous and each population
   is scheduled under exactly its own constraints.
2. **Shared budget (pre-redesign baseline)** — the service applies one
   service-wide spec to every batch.  To keep the constrained clients
   correct it must be the *tightest* spec (deadline+memory), which clamps
   the unconstrained population far below the label value it asked for.

The headline claim: grouped dispatch keeps the unconstrained population at
~100% value recall while the constrained populations meet their budgets —
the shared-budget service sacrifices recall on every request that asked
for more than the shared constraint allows — at comparable throughput,
and every dispatched batch stays homogeneous (verified inline).

Run standalone (the CI smoke path uses the tiny world)::

    PYTHONPATH=src python benchmarks/bench_mixed_regimes.py --scale smoke
    PYTHONPATH=src python benchmarks/bench_mixed_regimes.py --scale full
"""

from __future__ import annotations

import argparse
import sys

from repro.config import WorldConfig
from repro.data.datasets import generate_dataset
from repro.engine import LabelingEngine
from repro.labels import build_label_space
from repro.rl.agents import make_agent
from repro.scheduling.qgreedy import AgentPredictor
from repro.serving import LabelingService
from repro.spec import LabelingSpec
from repro.zoo.builder import build_zoo
from repro.zoo.oracle import GroundTruth

#: Grouped dispatch must preserve essentially all of the unconstrained
#: population's label value; the shared-budget baseline cannot.
UNCONSTRAINED_RECALL_FLOOR = 0.999

_WORLDS: dict[tuple, tuple] = {}


def build_world(scale: str = "smoke", n_items: int = 48, seed: int = 20200208):
    """(config, zoo, items, truth, predictor) for one bench world, cached."""
    key = (scale, n_items, seed)
    if key not in _WORLDS:
        vocab = "full" if scale == "full" else "mini"
        config = WorldConfig(vocab_scale=vocab, seed=seed)
        space = build_label_space(config.vocab_scale)
        zoo = build_zoo(config, space)
        dataset = generate_dataset(space, config, "mscoco2017", n_items)
        truth = GroundTruth(zoo, dataset, config)
        agent = make_agent(
            "dueling_dqn", obs_dim=len(space), n_actions=len(zoo) + 1
        )
        predictor = AgentPredictor(agent, len(zoo))
        _WORLDS[key] = (config, zoo, list(dataset), truth, predictor)
    return _WORLDS[key]


def run_mixed_traffic(
    scale: str,
    n_items: int,
    batch_size: int,
    workers: int,
    deadline: float,
    memory: float,
    grouped: bool,
):
    """One service over three client populations; returns a report dict.

    ``grouped=True`` attaches a per-request spec (the redesign);
    ``grouped=False`` forces the service-wide tightest spec onto
    everything (the pre-redesign shared budget).
    """
    config, zoo, items, truth, predictor = build_world(scale, n_items)
    engine = LabelingEngine(zoo, predictor, config)
    tightest = LabelingSpec(deadline=deadline, memory_budget=memory)
    service = LabelingService(
        engine,
        batch_size=batch_size,
        max_wait=0.005,
        workers=workers,
        max_depth=max(len(items), 1),
        spec=LabelingSpec() if grouped else tightest,
        truth=truth,
    )
    specs = {
        "unconstrained": LabelingSpec(),
        "deadline": LabelingSpec(deadline=deadline),
        "deadline_memory": tightest,
    }
    populations = list(specs)
    # Verify homogeneity inline: every engine dispatch must carry one key.
    batches: list[tuple[list[str], LabelingSpec]] = []
    inner = service._label_batch
    service._label_batch = lambda batch, spec: (
        batches.append(([i.item_id for i in batch], spec)),
        inner(batch, spec),
    )[1]

    futures: dict[str, list] = {name: [] for name in populations}
    with service:
        for i, item in enumerate(items):
            name = populations[i % len(populations)]
            spec = specs[name] if grouped else None
            futures[name].append(service.submit(item, spec))
        service.drain()
    snapshot = service.snapshot()

    spec_of = {
        item.item_id: specs[populations[i % len(populations)]]
        for i, item in enumerate(items)
    }
    homogeneous = all(
        len(
            {
                (spec_of[i] if grouped else tightest).batch_key
                for i in item_ids
            }
        )
        == 1
        for item_ids, _ in batches
    )

    recalls = {}
    for name in populations:
        results = [f.result() for f in futures[name]]
        # Deadline populations are judged by value recalled *within* the
        # budget; the unconstrained population by total value recalled.
        if name == "unconstrained":
            recalls[name] = sum(r.recall for r in results) / len(results)
        else:
            recalls[name] = sum(
                r.trace.recall_by(deadline) for r in results
            ) / len(results)
    return {
        "snapshot": snapshot,
        "recalls": recalls,
        "homogeneous": homogeneous,
        "batches": len(batches),
    }


def print_report(label: str, report) -> None:
    snapshot = report["snapshot"]
    recall = "  ".join(
        f"{name} {value:6.1%}" for name, value in report["recalls"].items()
    )
    print(f"{label}:")
    print(
        f"  {snapshot.counters['completed']} items in {report['batches']} "
        f"batches (mean size {snapshot.mean_batch_size:.1f}, "
        f"regime_split flushes {snapshot.flushes['regime_split']}), "
        f"{snapshot.throughput:.0f} items/sec"
    )
    print(f"  homogeneous batches: {report['homogeneous']}")
    print(f"  mean recall by population: {recall}")
    if snapshot.regimes:
        per_regime = "  ".join(
            f"{k} {v}" for k, v in sorted(snapshot.regimes.items())
        )
        print(f"  items per regime: {per_regime}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", default="smoke", choices=("smoke", "mini", "full")
    )
    parser.add_argument("--items", type=int, default=None)
    parser.add_argument("--batch-size", type=int, default=16)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--deadline", type=float, default=None)
    parser.add_argument("--memory-budget", type=float, default=None)
    args = parser.parse_args(argv)

    smoke = args.scale == "smoke"
    n_items = args.items if args.items is not None else (48 if smoke else 192)
    if n_items < 3:
        parser.error("--items must be >= 3 (one per client population)")
    # Budgets tight enough to bind: a fraction of the zoo's total cost.
    _, zoo, _, _, _ = build_world(args.scale, n_items)
    deadline = (
        args.deadline if args.deadline is not None else 0.35 * float(zoo.total_time)
    )
    memory = (
        args.memory_budget
        if args.memory_budget is not None
        else 0.6 * float(max(model.mem for model in zoo))
    )

    print(
        f"mixed-regime serving: scale={args.scale} items={n_items} "
        f"batch={args.batch_size} workers={args.workers} "
        f"deadline={deadline:.3f}s memory={memory:.0f}MB"
    )
    grouped = run_mixed_traffic(
        args.scale, n_items, args.batch_size, args.workers, deadline, memory,
        grouped=True,
    )
    shared = run_mixed_traffic(
        args.scale, n_items, args.batch_size, args.workers, deadline, memory,
        grouped=False,
    )
    print_report("grouped dispatch (per-request specs)", grouped)
    print_report("shared budget (service-wide tightest spec)", shared)

    grouped_uncon = grouped["recalls"]["unconstrained"]
    shared_uncon = shared["recalls"]["unconstrained"]
    print(
        f"\nunconstrained-population recall: grouped {grouped_uncon:.1%} "
        f"vs shared budget {shared_uncon:.1%} "
        f"(+{(grouped_uncon - shared_uncon) * 100:.1f} points from grouping)"
    )

    if not grouped["homogeneous"]:
        print("FAIL: grouped service dispatched a non-homogeneous batch")
        return 1
    if grouped_uncon < UNCONSTRAINED_RECALL_FLOOR:
        print(
            f"FAIL: grouped unconstrained recall {grouped_uncon:.1%} below "
            f"{UNCONSTRAINED_RECALL_FLOOR:.1%}"
        )
        return 1
    if grouped_uncon <= shared_uncon:
        print("FAIL: grouping did not improve unconstrained recall")
        return 1
    return 0


# -- bench-suite entry point -------------------------------------------------


def test_grouped_dispatch_beats_shared_budget():
    """The redesign's measurable claim, at full scale.

    One service, three populations: grouping must preserve the
    unconstrained population's full label value while the shared-budget
    baseline clamps it, and every grouped batch must be homogeneous.
    """
    _, zoo, _, _, _ = build_world("full", 96)
    deadline = 0.35 * float(zoo.total_time)
    memory = 0.6 * float(max(model.mem for model in zoo))
    grouped = run_mixed_traffic("full", 96, 16, 2, deadline, memory, grouped=True)
    shared = run_mixed_traffic("full", 96, 16, 2, deadline, memory, grouped=False)
    assert grouped["homogeneous"]
    assert grouped["recalls"]["unconstrained"] >= UNCONSTRAINED_RECALL_FLOOR
    assert (
        grouped["recalls"]["unconstrained"] > shared["recalls"]["unconstrained"]
    ), (
        f"grouped {grouped['recalls']['unconstrained']:.1%} should beat "
        f"shared {shared['recalls']['unconstrained']:.1%}"
    )


if __name__ == "__main__":
    sys.exit(main())
