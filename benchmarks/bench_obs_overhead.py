"""The observability overhead gate: instrumented dispatch must stay cheap.

The obs layer's contract is that leaving it on costs (almost) nothing:
``repro.obs.instrument`` hooks the vectorized ``schedule_batch`` dispatch
tick of every regime plus the engine's batch path, and this bench holds
that claim to a number.  For each scheduling regime it measures
``label_batch`` throughput twice — bare (no instrumentation installed)
and fully instrumented (tick + engine hooks routing into a live
:class:`~repro.obs.registry.MetricsRegistry`) — and reports the relative
slowdown.  ``--assert-overhead 3`` is the CI gate: mean overhead across
regimes must stay under 3%.

Noise control: the two arms run *interleaved* (bare, instrumented, bare,
instrumented, ...) so drift in machine load hits both equally, and each
arm keeps its best-of-``repeats`` time.  Overhead is computed from those
bests; a negative number just means the two arms are within noise.

The second mode, ``--scrape-url``, is the serving smoke: it polls a live
``serve --metrics-port`` endpoint until the queue, regime, and SLO
families show nonzero samples (or a timeout passes), proving the whole
export pipeline — service collector, SLO accumulators, tick hooks, HTTP
thread — end to end against a real serving run.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py \
        --scale mini --items 64 --assert-overhead 3 --json BENCH.json

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py \
        --scrape-url http://127.0.0.1:9109 --scrape-timeout 90
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.config import WorldConfig
from repro.data.datasets import generate_dataset
from repro.engine import LabelingEngine
from repro.labels import build_label_space
from repro.obs import MetricsRegistry, install, uninstall
from repro.rl.agents import make_agent
from repro.scheduling.qgreedy import AgentPredictor
from repro.spec import LabelingSpec
from repro.zoo.builder import build_zoo
from repro.zoo.oracle import GroundTruth

#: The CI gate: mean instrumented slowdown across regimes, percent.
MAX_OVERHEAD_PCT = 3.0

#: One spec per scheduling regime, all three dispatch ticks exercised.
REGIME_SPECS = {
    "qgreedy": LabelingSpec(),
    "deadline": LabelingSpec(deadline=0.5),
    "deadline_memory": LabelingSpec(deadline=0.5, memory_budget=8000.0),
}

#: Families the serving smoke requires to carry nonzero samples.
SMOKE_FAMILIES = (
    "repro_queue_wait_seconds_count",
    "repro_regime_items_total",
    "repro_slo_completed_total",
)

_WORLDS: dict[tuple, tuple] = {}


def build_world(scale: str = "mini", n_items: int = 64, seed: int = 20200208):
    """(config, zoo, items, truth, predictor) for one bench world, cached."""
    key = (scale, n_items, seed)
    if key not in _WORLDS:
        config = WorldConfig(vocab_scale=scale, seed=seed)
        space = build_label_space(config.vocab_scale)
        zoo = build_zoo(config, space)
        dataset = generate_dataset(space, config, "mscoco2017", n_items)
        truth = GroundTruth(zoo, dataset, config)
        agent = make_agent(
            "dueling_dqn", obs_dim=len(space), n_actions=len(zoo) + 1
        )
        predictor = AgentPredictor(agent, len(zoo))
        _WORLDS[key] = (config, zoo, list(dataset), truth, predictor)
    return _WORLDS[key]


def measure_regime(
    regime: str,
    scale: str = "mini",
    n_items: int = 64,
    batch_size: int = 64,
    repeats: int = 5,
) -> dict:
    """Interleaved bare-vs-instrumented throughput for one regime.

    Returns ``{"bare": items/s, "instrumented": items/s, "overhead_pct": x}``
    with each arm's rate taken from its best (minimum) wall time.
    """
    config, zoo, items, truth, predictor = build_world(scale, n_items)
    engine = LabelingEngine(
        zoo, predictor, config, backend="batched", batch_size=batch_size
    )
    spec = REGIME_SPECS[regime]
    registry = MetricsRegistry()

    def run_once() -> float:
        start = time.perf_counter()
        engine.label_batch(items, spec, truth=truth)
        return time.perf_counter() - start

    uninstall()
    run_once()  # warm caches (predictor, truth records) outside both arms
    best = {"bare": float("inf"), "instrumented": float("inf")}
    try:
        for _ in range(repeats):
            uninstall()
            best["bare"] = min(best["bare"], run_once())
            install(registry)
            best["instrumented"] = min(best["instrumented"], run_once())
    finally:
        uninstall()
    bare = len(items) / best["bare"]
    instrumented = len(items) / best["instrumented"]
    return {
        "bare_items_per_s": bare,
        "instrumented_items_per_s": instrumented,
        "overhead_pct": (bare - instrumented) / bare * 100.0,
    }


def run_overhead(args) -> tuple[dict, int]:
    """All regimes' measurements plus the gate verdict (0 = pass)."""
    results = {
        regime: measure_regime(
            regime,
            scale=args.scale,
            n_items=args.items,
            batch_size=args.batch_size,
            repeats=args.repeats,
        )
        for regime in REGIME_SPECS
    }
    mean_overhead = sum(r["overhead_pct"] for r in results.values()) / len(results)
    report = {
        "scale": args.scale,
        "items": args.items,
        "batch_size": args.batch_size,
        "repeats": args.repeats,
        "regimes": results,
        "mean_overhead_pct": mean_overhead,
        "gate_pct": args.assert_overhead,
    }
    print(
        f"observability overhead: scale={args.scale} items={args.items} "
        f"batch={args.batch_size} repeats={args.repeats}"
    )
    print(
        f"{'regime':16s} {'bare it/s':>12s} {'instr it/s':>12s} {'overhead':>9s}"
    )
    for regime, r in results.items():
        print(
            f"{regime:16s} {r['bare_items_per_s']:12.1f} "
            f"{r['instrumented_items_per_s']:12.1f} "
            f"{r['overhead_pct']:8.2f}%"
        )
    print(f"{'mean':16s} {'':>12s} {'':>12s} {mean_overhead:8.2f}%")

    status = 0
    if args.assert_overhead is not None and mean_overhead > args.assert_overhead:
        print(
            f"FAIL: mean instrumented overhead {mean_overhead:.2f}% exceeds "
            f"the {args.assert_overhead:.1f}% gate"
        )
        status = 1
    return report, status


def scrape_smoke(url: str, timeout: float) -> int:
    """Poll a live /metrics endpoint until the required families have
    nonzero samples; returns 0 on success, 1 on timeout/unreachable."""
    import urllib.error
    import urllib.request

    metrics_url = url.rstrip("/") + "/metrics"
    deadline = time.monotonic() + timeout
    missing = list(SMOKE_FAMILIES)
    last_error: str | None = None
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(metrics_url, timeout=5) as response:
                text = response.read().decode("utf-8")
        except (urllib.error.URLError, OSError) as exc:
            last_error = str(exc)
            time.sleep(0.5)
            continue
        nonzero = set()
        for line in text.splitlines():
            if line.startswith("#") or " " not in line:
                continue
            name_part, _, value_part = line.rpartition(" ")
            try:
                value = float(value_part)
            except ValueError:
                continue
            if value > 0:
                family = name_part.split("{", 1)[0]
                nonzero.add(family)
        missing = [
            family for family in SMOKE_FAMILIES if family not in nonzero
        ]
        if not missing:
            print(
                f"scrape smoke OK: {metrics_url} serves nonzero samples for "
                + ", ".join(SMOKE_FAMILIES)
            )
            return 0
        last_error = f"families still zero/absent: {', '.join(missing)}"
        time.sleep(0.5)
    print(f"FAIL: scrape smoke timed out after {timeout:.0f}s ({last_error})")
    return 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="mini", choices=("mini", "full"))
    parser.add_argument("--items", type=int, default=64)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--assert-overhead",
        type=float,
        default=None,
        help="exit nonzero if mean overhead percent exceeds this gate",
    )
    parser.add_argument(
        "--json", default=None, help="write the measurement report here"
    )
    parser.add_argument(
        "--scrape-url",
        default=None,
        help="smoke mode: poll this serve --metrics-port base URL instead "
        "of benchmarking",
    )
    parser.add_argument(
        "--scrape-timeout",
        type=float,
        default=90.0,
        help="seconds to keep polling --scrape-url before failing",
    )
    args = parser.parse_args(argv)

    if args.scrape_url is not None:
        return scrape_smoke(args.scrape_url, args.scrape_timeout)

    report, status = run_overhead(args)
    if args.json is not None:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"report written to {args.json}")
    return status


if __name__ == "__main__":
    sys.exit(main())
