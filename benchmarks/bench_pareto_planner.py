"""Offline Pareto planner vs the RL scheduler: per-budget optimality gap.

:class:`~repro.scheduling.optimal.ParetoPlanner` computes, per item and
per time budget, the *exact* best model subset under the max-confidence
union value — the attainable optimum, unlike the fractional optimal*
bound of §V-C.  Sweeping budgets traces the exact cost/recall Pareto
frontier; comparing the trained cost-Q greedy scheduler (Algorithm 1)
against it turns "how good is the RL scheduler" into a true per-budget
regret instead of a bound-relative ratio.

The report JSON carries, per budget: the planner's mean recall
(``optimal``), the RL scheduler's mean deadline recall (``rl``), the
oracle-predictor cost-Q recall (``oracle`` — isolates agent quality from
the greedy rule), the fractional optimal* bound (sanity:
``optimal <= optimal_star``), and the gaps ``(optimal - rl) / optimal``.

Run standalone (CI smoke uses the tiny world)::

    PYTHONPATH=src python benchmarks/bench_pareto_planner.py --scale smoke \
        --json BENCH_pareto_planner.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.config import smoke_scale
from repro.data.datasets import generate_dataset, train_test_split
from repro.labels import build_label_space
from repro.rl.training import train_agent
from repro.scheduling.deadline import CostQGreedyScheduler, RelaxedOptimalDeadline
from repro.scheduling.optimal import ParetoPlanner
from repro.scheduling.qgreedy import AgentPredictor, OraclePredictor
from repro.zoo.builder import build_zoo
from repro.zoo.oracle import GroundTruth

#: Budget grid (seconds) — spans starved to near-exhaustive on both scales.
BUDGETS = (0.1, 0.25, 0.5, 1.0, 2.0)


def build_world(scale: str, n_items: int):
    del scale  # one scale today; the knob keeps the CLI stable if that grows
    config = smoke_scale().world
    space = build_label_space(config.vocab_scale)
    zoo = build_zoo(config, space)
    dataset = generate_dataset(space, config, "mscoco2017", n_items)
    truth = GroundTruth(zoo, dataset, config)
    return config, zoo, dataset, truth


def run(scale: str, n_items: int, budgets=BUDGETS) -> dict:
    config, zoo, dataset, truth = build_world(scale, n_items)
    train, test = train_test_split(dataset, seed=0)
    result = train_agent(
        "dueling_dqn",
        truth,
        [item.item_id for item in train],
        smoke_scale().train,
    )
    rl = CostQGreedyScheduler(AgentPredictor(result.agent, len(zoo)))
    oracle = CostQGreedyScheduler(OraclePredictor(truth))
    planner = ParetoPlanner()
    star = RelaxedOptimalDeadline()
    eval_ids = [item.item_id for item in test]

    rows = []
    for budget in budgets:
        sums = {"optimal": 0.0, "rl": 0.0, "oracle": 0.0, "optimal_star": 0.0}
        nodes = 0
        started = time.perf_counter()
        for item_id in eval_ids:
            total = truth.total_value(item_id)
            plan = planner.plan(truth, item_id, budget)
            nodes += plan.nodes
            sums["optimal"] += plan.recall(total)
            sums["rl"] += rl.schedule(truth, item_id, budget).recall_by(budget)
            sums["oracle"] += oracle.schedule(truth, item_id, budget).recall_by(
                budget
            )
            sums["optimal_star"] += star.recall(truth, item_id, budget)
        n = len(eval_ids)
        means = {name: value / n for name, value in sums.items()}
        if means["optimal"] > means["optimal_star"] + 1e-9:
            raise AssertionError(
                f"exact optimum {means['optimal']:.4f} exceeds the optimal* "
                f"bound {means['optimal_star']:.4f} at budget {budget}"
            )
        gap = (
            (means["optimal"] - means["rl"]) / means["optimal"]
            if means["optimal"] > 0
            else 0.0
        )
        oracle_gap = (
            (means["optimal"] - means["oracle"]) / means["optimal"]
            if means["optimal"] > 0
            else 0.0
        )
        rows.append(
            {
                "budget_s": budget,
                **{name: round(value, 4) for name, value in means.items()},
                "rl_gap": round(gap, 4),
                "oracle_gap": round(oracle_gap, 4),
                "bnb_nodes": nodes,
                "planner_seconds": round(time.perf_counter() - started, 3),
            }
        )
    return {
        "bench": "pareto_planner",
        "scale": scale,
        "n_eval_items": len(eval_ids),
        "n_models": len(zoo),
        "budgets": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=("smoke",), default="smoke")
    parser.add_argument("--items", type=int, default=120)
    parser.add_argument("--json", help="write the report to this path")
    parser.add_argument(
        "--max-oracle-gap",
        type=float,
        default=None,
        help="fail if the oracle-predictor gap to the exact optimum exceeds "
        "this at any budget (greedy-rule quality bar)",
    )
    args = parser.parse_args(argv)
    report = run(args.scale, args.items)

    header = f"{'budget':>7} {'optimal':>8} {'rl':>7} {'oracle':>7} " \
             f"{'star':>7} {'rl_gap':>7} {'nodes':>8}"
    print(header)
    for row in report["budgets"]:
        print(
            f"{row['budget_s']:>7.2f} {row['optimal']:>8.3f} {row['rl']:>7.3f} "
            f"{row['oracle']:>7.3f} {row['optimal_star']:>7.3f} "
            f"{row['rl_gap']:>7.3f} {row['bnb_nodes']:>8}"
        )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {args.json}")
    if args.max_oracle_gap is not None:
        worst = max(row["oracle_gap"] for row in report["budgets"])
        if worst > args.max_oracle_gap:
            print(
                f"FAIL: oracle cost-Q gap {worst:.3f} exceeds "
                f"--max-oracle-gap {args.max_oracle_gap}",
                file=sys.stderr,
            )
            return 1
        print(f"oracle gap {worst:.3f} <= {args.max_oracle_gap} (ok)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
