"""Worker scaling of CPU-bound scheduling: threads (GIL) vs processes.

The adaptive scheduling loop — numpy Q-forwards plus Algorithm 1/2
packing — is CPU-bound pure Python, so :class:`ThreadPoolBackend` cannot
use more than ~one core no matter how many workers it is given: adding
threads adds GIL handoffs, not parallelism.  :class:`ProcessPoolBackend`
ships a world snapshot to worker processes once and runs the *same*
per-item scheduling path truly in parallel.

This bench sweeps worker counts 1..N over both pooled backends on an
unconstrained (Q-greedy) trace with pre-recorded ground truth — pure
scheduling, no zoo execution — and reports items/sec per (backend,
workers) plus the process-over-thread speedup at each width.  Expected
shape: near-flat threads, near-linear processes up to the machine's core
count.  Every process run is also checked byte-identical to
:class:`SerialBackend` (the parity contract), including one deliberately
uneven ``chunk_size`` split.

Run standalone (the CI smoke path uses the tiny world and writes a JSON
report consumed as a workflow artifact)::

    PYTHONPATH=src python benchmarks/bench_process_scaling.py --scale smoke \
        --json process_scaling_report.json
    PYTHONPATH=src python benchmarks/bench_process_scaling.py --scale full \
        --assert-speedup 2.5

For the cleanest scaling curves pin the BLAS to one thread
(``OPENBLAS_NUM_THREADS=1 OMP_NUM_THREADS=1``): a multi-threaded BLAS
steals the very cores the worker processes are being measured on, which
flattens the process curve without helping the thread backend.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.config import WorldConfig
from repro.data.datasets import generate_dataset
from repro.engine import (
    LabelingEngine,
    ProcessPoolBackend,
    ThreadPoolBackend,
)
from repro.labels import build_label_space
from repro.rl.agents import make_agent
from repro.scheduling.qgreedy import AgentPredictor
from repro.zoo.builder import build_zoo
from repro.zoo.oracle import GroundTruth

#: The issue's acceptance bar on a >=4-core machine: process at 4 workers
#: beats thread at 4 workers by this factor on the CPU-bound trace.
TARGET_SPEEDUP_AT_4 = 2.5


def build_world(scale: str, n_items: int, seed: int = 20200208):
    """(config, zoo, items, truth, predictor) with ground truth pre-recorded.

    Scheduling throughput does not depend on agent quality (every forward
    costs the same), so the predictor wraps a freshly initialized network
    and the bench skips training.
    """
    vocab = "full" if scale == "full" else "mini"
    config = WorldConfig(vocab_scale=vocab, seed=seed)
    space = build_label_space(config.vocab_scale)
    zoo = build_zoo(config, space)
    dataset = generate_dataset(space, config, "mscoco2017", n_items)
    truth = GroundTruth(zoo, dataset, config)
    agent = make_agent("dueling_dqn", obs_dim=len(space), n_actions=len(zoo) + 1)
    predictor = AgentPredictor(agent, len(zoo))
    return config, zoo, list(dataset), truth, predictor


def reference_traces(world) -> list:
    """SerialBackend traces — the parity baseline every process run must hit."""
    config, zoo, items, truth, predictor = world
    engine = LabelingEngine(zoo, predictor, config, backend="serial")
    return [r.trace for r in engine.label_batch(items, truth=truth)]


def traces_identical(got, ref) -> bool:
    return len(got) == len(ref) and all(
        g.item_id == r.item_id and g.executions == r.executions
        for g, r in zip(got, ref)
    )


def measure_backend(
    world, backend, repeats: int, reference=None
) -> dict[str, float | bool]:
    """Best-of-``repeats`` items/sec of one pooled backend on one world.

    The first (untimed) run spawns the pool and ships the world snapshot;
    its wall time is reported separately as ``first_run_s`` so steady-state
    throughput and one-off setup cost stay distinguishable.
    """
    config, zoo, items, truth, predictor = world
    engine = LabelingEngine(zoo, predictor, config, backend=backend)
    try:
        start = time.perf_counter()
        results = engine.label_batch(items, truth=truth)
        first_run = time.perf_counter() - start
        parity = (
            traces_identical([r.trace for r in results], reference)
            if reference is not None
            else None
        )
        best = first_run
        for _ in range(repeats):
            start = time.perf_counter()
            engine.label_batch(items, truth=truth)
            best = min(best, time.perf_counter() - start)
    finally:
        engine.backend.close()
    out: dict[str, float | bool] = {
        "items_per_s": len(items) / best,
        "first_run_s": first_run,
    }
    if parity is not None:
        out["parity"] = parity
    return out


def worker_sweep(max_workers: int) -> list[int]:
    """1, 2, 4, ... doubling up to (and always including) ``max_workers``."""
    sweep, width = [], 1
    while width < max_workers:
        sweep.append(width)
        width *= 2
    sweep.append(max_workers)
    return sweep


def run(scale: str, n_items: int, max_workers: int, repeats: int) -> dict:
    world = build_world(scale, n_items)
    reference = reference_traces(world)
    sweeps = []
    for workers in worker_sweep(max_workers):
        thread = measure_backend(
            world, ThreadPoolBackend(max_workers=workers), repeats
        )
        process = measure_backend(
            world,
            ProcessPoolBackend(max_workers=workers),
            repeats,
            reference=reference,
        )
        sweeps.append(
            {
                "workers": workers,
                "thread_items_per_s": thread["items_per_s"],
                "process_items_per_s": process["items_per_s"],
                "process_first_run_s": process["first_run_s"],
                "speedup": process["items_per_s"] / thread["items_per_s"],
                "parity": process["parity"],
            }
        )
    # Uneven chunks must not change traces either (chunk_size=3 leaves a
    # ragged tail for any n_items not divisible by 3).
    uneven = measure_backend(
        world,
        ProcessPoolBackend(max_workers=max_workers, chunk_size=3),
        repeats=0,
        reference=reference,
    )
    return {
        "scale": scale,
        "n_items": n_items,
        "cpu_count": os.cpu_count(),
        "repeats": repeats,
        "sweeps": sweeps,
        "uneven_chunk_parity": uneven["parity"],
        "parity": bool(uneven["parity"]) and all(s["parity"] for s in sweeps),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=("smoke", "full"))
    parser.add_argument("--items", type=int, default=None)
    parser.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="top of the worker sweep (default: 2 at smoke, else max(cpu, 4))",
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--json", default=None, help="write the report here")
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        help="exit nonzero unless process/thread at the widest sweep point "
        f"reaches this ratio (the issue bar is {TARGET_SPEEDUP_AT_4} at 4 "
        "workers on a 4-core machine)",
    )
    args = parser.parse_args(argv)

    smoke = args.scale == "smoke"
    n_items = args.items or (32 if smoke else 96)
    max_workers = args.max_workers or (2 if smoke else max(os.cpu_count() or 1, 4))
    repeats = args.repeats if args.repeats is not None else (1 if smoke else 3)

    report = run(args.scale, n_items, max_workers, repeats)

    print(
        f"process scaling: scale={args.scale} items={n_items} "
        f"cpus={report['cpu_count']} regime=qgreedy (pre-recorded truth)"
    )
    print(
        f"{'workers':>7s} {'thread it/s':>12s} {'process it/s':>13s} "
        f"{'speedup':>8s} {'parity':>7s}"
    )
    for sweep in report["sweeps"]:
        print(
            f"{sweep['workers']:7d} {sweep['thread_items_per_s']:12.1f} "
            f"{sweep['process_items_per_s']:13.1f} {sweep['speedup']:7.2f}x "
            f"{'ok' if sweep['parity'] else 'FAIL':>7s}"
        )
    print(
        f"uneven-chunk parity: "
        f"{'ok' if report['uneven_chunk_parity'] else 'FAIL'}"
    )

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"report -> {args.json}")

    if not report["parity"]:
        print("FAIL: process traces diverged from SerialBackend")
        return 1
    top = report["sweeps"][-1]
    if args.assert_speedup is not None and top["speedup"] < args.assert_speedup:
        print(
            f"FAIL: process/thread speedup {top['speedup']:.2f}x at "
            f"{top['workers']} workers below required {args.assert_speedup:.2f}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
