"""Dispatch-tick + transport speedup, and thread-vs-process scaling.

Two measurements share one pre-recorded world (pure scheduling, no zoo
execution):

1. **Dispatch throughput** — the PR's acceptance bar.  The optimized
   configuration (vectorized lock-step ticks in the workers + zero-copy
   shared-memory transport, the defaults) is measured against the
   *baseline* configuration (``vectorized=False, transport="pickle"``:
   the per-item serial scheduling loop and pickled payloads that
   predated the vectorized tick) across all three paper regimes —
   unconstrained Q-greedy, deadline (Algorithm 1), deadline+memory
   (Algorithm 2).  ``--assert-speedup`` gates the ratio of total
   baseline time to total optimized time.  Every run in *both* modes is
   checked trace-identical to :class:`SerialBackend`, and the optimized
   run must actually have used the shared-memory result path
   (``chunk_stats`` says so) — speed never buys divergence.

2. **Worker scaling** — threads (GIL-bound, near-flat) vs processes
   (near-linear to core count) on the unconstrained trace, kept from the
   original bench as the scheduling-escapes-the-GIL evidence.

Run standalone (the CI smoke path uses the tiny world and uploads the
JSON as the ``BENCH_dispatch`` artifact)::

    PYTHONPATH=src python benchmarks/bench_process_scaling.py --scale smoke \
        --json BENCH_dispatch.json
    PYTHONPATH=src python benchmarks/bench_process_scaling.py --scale full \
        --assert-speedup 2.0

For the cleanest numbers pin the BLAS to one thread
(``OPENBLAS_NUM_THREADS=1 OMP_NUM_THREADS=1``): a multi-threaded BLAS
steals the very cores the worker processes are being measured on.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.config import WorldConfig
from repro.data.datasets import generate_dataset
from repro.engine import (
    LabelingEngine,
    ProcessPoolBackend,
    ThreadPoolBackend,
)
from repro.labels import build_label_space
from repro.rl.agents import make_agent
from repro.scheduling.qgreedy import AgentPredictor
from repro.zoo.builder import build_zoo
from repro.zoo.oracle import GroundTruth

#: The issue's acceptance bar at full scale: optimized dispatch (vectorized
#: ticks + shm transport) at least doubles the baseline's throughput.
TARGET_DISPATCH_SPEEDUP = 2.0

#: (name, spec) per regime the dispatch comparison covers.
DISPATCH_REGIMES = (
    ("qgreedy", {}),
    ("deadline", {"deadline": 0.35}),
    ("deadline_memory", {"deadline": 0.5, "memory_budget": 8000.0}),
)


def build_world(scale: str, n_items: int, seed: int = 20200208):
    """(config, zoo, items, truth, predictor) with ground truth pre-recorded.

    Scheduling throughput does not depend on agent quality (every forward
    costs the same), so the predictor wraps a freshly initialized network
    and the bench skips training.
    """
    vocab = "full" if scale == "full" else "mini"
    config = WorldConfig(vocab_scale=vocab, seed=seed)
    space = build_label_space(config.vocab_scale)
    zoo = build_zoo(config, space)
    dataset = generate_dataset(space, config, "mscoco2017", n_items)
    truth = GroundTruth(zoo, dataset, config)
    agent = make_agent("dueling_dqn", obs_dim=len(space), n_actions=len(zoo) + 1)
    predictor = AgentPredictor(agent, len(zoo))
    return config, zoo, list(dataset), truth, predictor


def regime_references(world) -> dict[str, list]:
    """SerialBackend traces per regime — the parity baseline for every run."""
    config, zoo, items, truth, predictor = world
    engine = LabelingEngine(zoo, predictor, config, backend="serial")
    return {
        name: [r.trace for r in engine.label_batch(items, truth=truth, **spec)]
        for name, spec in DISPATCH_REGIMES
    }


def traces_identical(got, ref) -> bool:
    return len(got) == len(ref) and all(
        g.item_id == r.item_id and g.executions == r.executions
        for g, r in zip(got, ref)
    )


def measure_dispatch(world, backend_kwargs, repeats, references) -> dict:
    """One process-pool configuration across all dispatch regimes.

    One pool serves every regime (reuse is the serving steady state); a
    warm-up batch pays the spawn + snapshot shipping before any timing.
    """
    config, zoo, items, truth, predictor = world
    out: dict = {"config": dict(backend_kwargs), "regimes": {}}
    total = 0.0
    with ProcessPoolBackend(**backend_kwargs) as backend:
        engine = LabelingEngine(zoo, predictor, config, backend=backend)
        engine.label_batch(items, truth=truth)  # warm: spawn pool, ship world
        for name, spec in DISPATCH_REGIMES:
            results = engine.label_batch(items, truth=truth, **spec)
            parity = traces_identical(
                [r.trace for r in results], references[name]
            )
            best = None
            for _ in range(max(repeats, 1)):
                start = time.perf_counter()
                engine.label_batch(items, truth=truth, **spec)
                elapsed = time.perf_counter() - start
                best = elapsed if best is None else min(best, elapsed)
            out["regimes"][name] = {
                "best_s": best,
                "items_per_s": len(items) / best,
                "parity": parity,
            }
            total += best
        out["transport"] = backend.chunk_stats["transport"]
    out["total_s"] = total
    out["items_per_s"] = len(items) * len(DISPATCH_REGIMES) / total
    out["parity"] = all(r["parity"] for r in out["regimes"].values())
    return out


def measure_backend(world, backend, repeats: int, reference=None) -> dict:
    """Best-of-``repeats`` items/sec of one pooled backend (scaling sweep)."""
    config, zoo, items, truth, predictor = world
    engine = LabelingEngine(zoo, predictor, config, backend=backend)
    try:
        start = time.perf_counter()
        results = engine.label_batch(items, truth=truth)
        first_run = time.perf_counter() - start
        parity = (
            traces_identical([r.trace for r in results], reference)
            if reference is not None
            else None
        )
        best = first_run
        for _ in range(repeats):
            start = time.perf_counter()
            engine.label_batch(items, truth=truth)
            best = min(best, time.perf_counter() - start)
    finally:
        engine.backend.close()
    out: dict = {"items_per_s": len(items) / best, "first_run_s": first_run}
    if parity is not None:
        out["parity"] = parity
    return out


def worker_sweep(max_workers: int) -> list[int]:
    """1, 2, 4, ... doubling up to (and always including) ``max_workers``."""
    sweep, width = [], 1
    while width < max_workers:
        sweep.append(width)
        width *= 2
    sweep.append(max_workers)
    return sweep


def run(scale: str, n_items: int, max_workers: int, repeats: int) -> dict:
    world = build_world(scale, n_items)
    references = regime_references(world)

    # 1. Dispatch throughput: optimized defaults vs the pre-vectorization
    # baseline, same pool width, all three regimes.
    optimized = measure_dispatch(
        world, {"max_workers": max_workers}, repeats, references
    )
    baseline = measure_dispatch(
        world,
        {"max_workers": max_workers, "vectorized": False, "transport": "pickle"},
        repeats,
        references,
    )
    dispatch = {
        "workers": max_workers,
        "optimized": optimized,
        "baseline": baseline,
        "speedup": baseline["total_s"] / optimized["total_s"],
        "shm_used": optimized["transport"].get("result_shm", 0) > 0,
        "parity": optimized["parity"] and baseline["parity"],
    }

    # 2. Thread-vs-process scaling on the unconstrained trace.
    reference = references["qgreedy"]
    sweeps = []
    for workers in worker_sweep(max_workers):
        thread = measure_backend(
            world, ThreadPoolBackend(max_workers=workers), repeats
        )
        process = measure_backend(
            world,
            ProcessPoolBackend(max_workers=workers),
            repeats,
            reference=reference,
        )
        sweeps.append(
            {
                "workers": workers,
                "thread_items_per_s": thread["items_per_s"],
                "process_items_per_s": process["items_per_s"],
                "process_first_run_s": process["first_run_s"],
                "speedup": process["items_per_s"] / thread["items_per_s"],
                "parity": process["parity"],
            }
        )
    # Uneven chunks must not change traces either (chunk_size=3 leaves a
    # ragged tail for any n_items not divisible by 3).
    uneven = measure_backend(
        world,
        ProcessPoolBackend(max_workers=max_workers, chunk_size=3),
        repeats=0,
        reference=reference,
    )
    return {
        "bench": "dispatch",
        "scale": scale,
        "n_items": n_items,
        "cpu_count": os.cpu_count(),
        "repeats": repeats,
        "dispatch": dispatch,
        "sweeps": sweeps,
        "uneven_chunk_parity": uneven["parity"],
        "parity": (
            dispatch["parity"]
            and bool(uneven["parity"])
            and all(s["parity"] for s in sweeps)
        ),
    }


def print_report(report: dict) -> None:
    dispatch = report["dispatch"]
    print(
        f"dispatch throughput @ {dispatch['workers']} workers "
        f"(optimized = vectorized ticks + shm, baseline = serial loop + pickle)"
    )
    print(
        f"{'regime':>16s} {'baseline it/s':>14s} {'optimized it/s':>15s} "
        f"{'speedup':>8s} {'parity':>7s}"
    )
    for name, _ in DISPATCH_REGIMES:
        opt = dispatch["optimized"]["regimes"][name]
        base = dispatch["baseline"]["regimes"][name]
        ok = opt["parity"] and base["parity"]
        print(
            f"{name:>16s} {base['items_per_s']:14.1f} {opt['items_per_s']:15.1f} "
            f"{base['best_s'] / opt['best_s']:7.2f}x {'ok' if ok else 'FAIL':>7s}"
        )
    print(
        f"{'overall':>16s} {dispatch['baseline']['items_per_s']:14.1f} "
        f"{dispatch['optimized']['items_per_s']:15.1f} "
        f"{dispatch['speedup']:7.2f}x "
        f"{'ok' if dispatch['parity'] else 'FAIL':>7s}"
    )
    print(f"shm result path used: {'yes' if dispatch['shm_used'] else 'NO'}")
    print()
    print(
        f"worker scaling: scale={report['scale']} items={report['n_items']} "
        f"cpus={report['cpu_count']} regime=qgreedy (pre-recorded truth)"
    )
    print(
        f"{'workers':>7s} {'thread it/s':>12s} {'process it/s':>13s} "
        f"{'speedup':>8s} {'parity':>7s}"
    )
    for sweep in report["sweeps"]:
        print(
            f"{sweep['workers']:7d} {sweep['thread_items_per_s']:12.1f} "
            f"{sweep['process_items_per_s']:13.1f} {sweep['speedup']:7.2f}x "
            f"{'ok' if sweep['parity'] else 'FAIL':>7s}"
        )
    print(
        f"uneven-chunk parity: "
        f"{'ok' if report['uneven_chunk_parity'] else 'FAIL'}"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=("smoke", "full"))
    parser.add_argument("--items", type=int, default=None)
    parser.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="pool width for the dispatch comparison and top of the worker "
        "sweep (default: 2 at smoke, else max(cpu, 4))",
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--json", default=None, help="write the report here")
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        help="exit nonzero unless optimized dispatch throughput reaches this "
        "multiple of the baseline's (the issue bar is "
        f"{TARGET_DISPATCH_SPEEDUP} at full scale)",
    )
    args = parser.parse_args(argv)

    smoke = args.scale == "smoke"
    n_items = args.items or (32 if smoke else 96)
    max_workers = args.max_workers or (2 if smoke else max(os.cpu_count() or 1, 4))
    repeats = args.repeats if args.repeats is not None else (1 if smoke else 3)

    report = run(args.scale, n_items, max_workers, repeats)
    print_report(report)

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"report -> {args.json}")

    if not report["parity"]:
        print("FAIL: process traces diverged from SerialBackend")
        return 1
    if not report["dispatch"]["shm_used"]:
        print("FAIL: optimized run never used the shared-memory result path")
        return 1
    speedup = report["dispatch"]["speedup"]
    if args.assert_speedup is not None and speedup < args.assert_speedup:
        print(
            f"FAIL: dispatch speedup {speedup:.2f}x below required "
            f"{args.assert_speedup:.2f}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
