"""Latency and throughput of the micro-batching labeling service.

Two views of `repro.serving.LabelingService`:

1. **Closed-loop throughput** — all items submitted as fast as possible;
   compares micro-batched dispatch (``batch_size=64``) against degenerate
   per-item dispatch (``batch_size=1``) through the same service, workers,
   and engine.  The headline claim: at full scale on the unconstrained
   path, micro-batching sustains >= 3x the items/sec of per-item dispatch,
   because each flush becomes one stacked Q-network forward per round
   instead of per item.
2. **Open-loop latency** — items submitted at fixed arrival rates across a
   grid of ``max_wait`` flush timers; reports p50/p95/p99 queue wait and
   service time per cell.  p99 queue wait stays bounded by ``max_wait``
   plus dispatch overhead while the offered load is below capacity.

Run standalone (the CI smoke path uses the tiny world)::

    PYTHONPATH=src python benchmarks/bench_serving_latency.py --scale smoke
    PYTHONPATH=src python benchmarks/bench_serving_latency.py \
        --scale full --assert-speedup 3.0
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.config import WorldConfig
from repro.data.datasets import generate_dataset
from repro.engine import LabelingEngine
from repro.labels import build_label_space
from repro.rl.agents import make_agent
from repro.scheduling.qgreedy import AgentPredictor
from repro.serving import LabelingService
from repro.zoo.builder import build_zoo
from repro.zoo.oracle import GroundTruth

#: The acceptance bar: batch-64 vs batch-1 dispatch items/sec, full scale.
TARGET_SPEEDUP = 3.0

#: Queue-wait slack over ``max_wait`` tolerated before a cell is flagged:
#: dispatch + one in-progress batch ahead of the flush.
P99_SLACK = 0.05

_WORLDS: dict[tuple, tuple] = {}


def build_world(scale: str = "smoke", n_items: int = 64, seed: int = 20200208):
    """(config, zoo, items, truth, predictor) for one bench world, cached.

    ``smoke`` and ``mini`` use the small world (10 models, 58 labels);
    ``full`` the paper's 30-model / 1104-label world, where the stacked
    forward dominates and micro-batching pays off most.  Ground truth is
    pre-recorded so the service measures scheduling, not zoo execution;
    the predictor wraps an untrained network (throughput does not depend
    on agent quality).
    """
    key = (scale, n_items, seed)
    if key not in _WORLDS:
        vocab = "full" if scale == "full" else "mini"
        config = WorldConfig(vocab_scale=vocab, seed=seed)
        space = build_label_space(config.vocab_scale)
        zoo = build_zoo(config, space)
        dataset = generate_dataset(space, config, "mscoco2017", n_items)
        truth = GroundTruth(zoo, dataset, config)
        agent = make_agent(
            "dueling_dqn", obs_dim=len(space), n_actions=len(zoo) + 1
        )
        predictor = AgentPredictor(agent, len(zoo))
        _WORLDS[key] = (config, zoo, list(dataset), truth, predictor)
    return _WORLDS[key]


def run_service(
    scale: str,
    n_items: int,
    batch_size: int,
    max_wait: float,
    workers: int,
    rate: float | None = None,
):
    """Drive one service over the bench stream; returns its final snapshot.

    ``rate=None`` is the closed loop (submit as fast as possible);
    otherwise requests arrive open-loop at ``rate`` items/sec.
    """
    config, zoo, items, truth, predictor = build_world(scale, n_items)
    engine = LabelingEngine(zoo, predictor, config)
    service = LabelingService(
        engine,
        batch_size=batch_size,
        max_wait=max_wait,
        workers=workers,
        max_depth=max(len(items), 1),
        truth=truth,
    )
    gap = 1.0 / rate if rate else 0.0
    with service:
        futures = []
        for item in items:
            futures.append(service.submit(item))
            if gap:
                time.sleep(gap)
        service.drain()
        for future in futures:
            future.result()  # surface any worker failure
    return service.snapshot()


def closed_loop_items_per_second(
    scale: str, n_items: int, batch_size: int, workers: int, repeats: int = 3
) -> float:
    """Best-of-``repeats`` end-to-end service throughput, closed loop."""
    best = 0.0
    for _ in range(repeats):
        snapshot = run_service(scale, n_items, batch_size, 0.05, workers)
        best = max(best, snapshot.throughput)
    return best


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", default="smoke", choices=("smoke", "mini", "full")
    )
    parser.add_argument("--items", type=int, default=None)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--rates",
        default=None,
        help="comma-separated open-loop arrival rates, items/sec",
    )
    parser.add_argument(
        "--max-waits",
        default="0.005,0.02,0.05",
        help="comma-separated flush timers, seconds",
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        help="exit nonzero unless batch-N/batch-1 reaches this ratio",
    )
    args = parser.parse_args(argv)

    smoke = args.scale == "smoke"
    n_items = args.items if args.items is not None else (32 if smoke else 128)
    repeats = args.repeats if args.repeats is not None else (1 if smoke else 3)
    rates = [
        float(r)
        for r in (args.rates or ("200" if smoke else "100,400,1600")).split(",")
    ]
    max_waits = [float(w) for w in args.max_waits.split(",")]

    # -- 1. closed loop: micro-batching vs per-item dispatch ----------------
    print(
        f"serving throughput (closed loop): scale={args.scale} items={n_items} "
        f"workers={args.workers}, unconstrained path"
    )
    per_item = closed_loop_items_per_second(
        args.scale, n_items, 1, args.workers, repeats
    )
    batched = closed_loop_items_per_second(
        args.scale, n_items, args.batch_size, args.workers, repeats
    )
    speedup = batched / per_item if per_item else float("inf")
    print(f"  batch_size=1   {per_item:10.1f} items/sec")
    print(
        f"  batch_size={args.batch_size:<4d}{batched:10.1f} items/sec  "
        f"-> {speedup:.2f}x"
    )

    # -- 2. open loop: latency across arrival rates and flush timers --------
    print(
        f"\nserving latency (open loop): batch={args.batch_size} "
        f"workers={args.workers}"
    )
    header = (
        f"{'rate/s':>8s} {'max_wait':>9s} {'wait p50':>9s} {'wait p99':>9s} "
        f"{'svc p99':>9s} {'items/s':>9s}  p99 bound"
    )
    print(header)
    bounded = True
    for rate in rates:
        for max_wait in max_waits:
            snapshot = run_service(
                args.scale, n_items, args.batch_size, max_wait, args.workers,
                rate=rate,
            )
            wait = snapshot.queue_wait
            ok = wait.p99 <= max_wait + P99_SLACK
            bounded &= ok
            print(
                f"{rate:8.0f} {max_wait * 1000:7.1f}ms {wait.p50 * 1000:7.2f}ms "
                f"{wait.p99 * 1000:7.2f}ms "
                f"{snapshot.service_time.p99 * 1000:7.2f}ms "
                f"{snapshot.throughput:9.1f}  "
                f"{'ok' if ok else 'EXCEEDED'}"
            )
    if not bounded:
        print(
            f"note: p99 queue wait exceeded max_wait + {P99_SLACK * 1000:.0f}ms "
            f"slack in some cells (offered load above service capacity)"
        )

    if args.assert_speedup is not None and speedup < args.assert_speedup:
        print(
            f"FAIL: micro-batching speedup {speedup:.2f}x below "
            f"required {args.assert_speedup:.2f}x"
        )
        return 1
    return 0


# -- bench-suite entry point -------------------------------------------------


def test_service_speedup_over_per_item_dispatch():
    """The tentpole's measurable claim, at full scale.

    Same service machinery on both sides — only the micro-batch size
    differs — so the ratio isolates what request coalescing buys: one
    stacked forward per scheduling round instead of one per item.
    """
    per_item = closed_loop_items_per_second("full", 128, 1, 2, repeats=2)
    batched = closed_loop_items_per_second("full", 128, 64, 2, repeats=2)
    assert batched >= TARGET_SPEEDUP * per_item, (
        f"micro-batched {batched:.0f} items/s vs per-item {per_item:.0f} "
        f"items/s ({batched / per_item:.2f}x < {TARGET_SPEEDUP}x)"
    )


if __name__ == "__main__":
    sys.exit(main())
