"""Table I: zoo summary — 10 tasks, 30 models, 1104 labels."""

from conftest import run_and_print

from repro.experiments import table01_models


def test_table01_models(benchmark):
    report = run_and_print(benchmark, "table01", table01_models.run)
    assert report.measured["n_models"] == 30
    assert report.measured["n_labels"] == 1104
    assert report.measured["n_tasks"] == 10
