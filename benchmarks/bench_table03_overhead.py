"""Table III: DRL agent overhead (3-6 ms / ~100 MB in the paper) vs models.

This bench also exercises pytest-benchmark properly: the per-selection
latency is measured with real timing rounds on top of the experiment's own
measurement.
"""

import numpy as np
from conftest import run_and_print, shared_context

from repro.experiments import table03_overhead


def test_table03_overhead(benchmark):
    report = run_and_print(benchmark, "table03", table03_overhead.run)
    m = report.measured
    # Selection must be negligible next to the cheapest model execution.
    assert m["selection_ms"] < m["model_ms_low"] / 5


def test_selection_latency_micro(benchmark):
    """Microbenchmark: one Q forward pass + argmax (a 'selection')."""
    ctx = shared_context()
    agent = ctx.agent("mscoco2017", "dueling_dqn")
    obs = (np.random.default_rng(0).random(len(ctx.space)) < 0.02).astype(
        np.float64
    )

    def select():
        return int(np.argmax(agent.q_values(obs)))

    benchmark(select)
