"""Shared state for the benchmark suite.

One :class:`ExperimentContext` at ``bench`` scale is built per process and
shared across all benchmark files, so each DRL agent is trained exactly
once no matter how many figures use it.  Experiment reports are memoized
too: Fig. 4 and Fig. 5 are two views of the same sweep, and the headline
bench reuses the prediction and deadline sweeps.

Every benchmark prints its paper-vs-measured table, so
``pytest benchmarks/ --benchmark-only -s`` regenerates the full set of
tables/figures of the paper on the simulated substrate.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentContext

_CTX: ExperimentContext | None = None
_REPORTS: dict[str, object] = {}


def shared_context() -> ExperimentContext:
    global _CTX
    if _CTX is None:
        _CTX = ExperimentContext("bench")
    return _CTX


def memoized_report(key: str, factory):
    """Run an experiment once per benchmark session."""
    if key not in _REPORTS:
        _REPORTS[key] = factory(shared_context())
    return _REPORTS[key]


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return shared_context()


def run_and_print(benchmark, key: str, factory):
    """Benchmark an experiment run (memoized) and print its report."""
    report = benchmark.pedantic(
        lambda: memoized_report(key, factory), rounds=1, iterations=1
    )
    print()
    print(report)
    return report
