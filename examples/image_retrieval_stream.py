"""Image-retrieval ingestion: label a photo stream under per-image deadlines.

The paper's motivating application (§I): an image retrieval platform runs a
zoo of models per uploaded image to maximize searchable keywords, but each
image has a strict ingestion deadline.  This example compares three
ingestion pipelines over the same stream:

* **no policy** — run all 30 models on every image (the 5.16 s/image
  baseline of §II),
* **random**    — random models until the deadline,
* **adaptive**  — Algorithm 1 with a trained DuelingDQN value predictor.

It prints per-pipeline throughput and the keyword recall each achieves.
"""

import numpy as np

from repro import WorldConfig, build_zoo
from repro.config import TrainConfig
from repro.data.datasets import generate_dataset, train_test_split
from repro.data.streams import iid_stream
from repro.labels import build_label_space
from repro.rl.training import train_agent
from repro.scheduling.deadline import (
    CostQGreedyScheduler,
    RandomDeadlineScheduler,
)
from repro.scheduling.qgreedy import AgentPredictor
from repro.zoo.oracle import GroundTruth

DEADLINE = 0.25  # seconds per image
N_STREAM = 60


def main() -> None:
    config = WorldConfig(vocab_scale="mini", zoo_total_time=1.0)
    space = build_label_space(config.vocab_scale)
    zoo = build_zoo(config, space)

    # Train the value predictor on an offline sample (MirFlickr profile:
    # social photography, like a photo-sharing platform's uploads).
    offline = generate_dataset(space, config, "mirflickr25", 300)
    train, _ = train_test_split(offline)
    truth = GroundTruth(zoo, offline, config)
    result = train_agent(
        "dueling_dqn",
        truth,
        [i.item_id for i in train],
        config=TrainConfig(episodes=300, hidden_size=32),
    )
    predictor = AgentPredictor(result.agent, len(zoo))

    # Fresh stream of uploads.
    stream = list(
        iid_stream(space, config, "mirflickr25", N_STREAM, start_index=10_000)
    )
    truth.add_items(stream)

    adaptive = CostQGreedyScheduler(predictor)
    random_sched = RandomDeadlineScheduler(seed=1)

    recalls = {"no_policy": [], "random": [], "adaptive": []}
    keywords = {"no_policy": 0, "random": 0, "adaptive": 0}
    for item in stream:
        total = truth.total_value(item.item_id)
        record = truth.record(item.item_id)
        # no policy: everything, no deadline — full recall, full cost
        recalls["no_policy"].append(1.0)
        keywords["no_policy"] += int((record.best_confidence > 0).sum())

        for name, scheduler in (("random", random_sched), ("adaptive", adaptive)):
            trace = scheduler.schedule(truth, item.item_id, DEADLINE)
            recalls[name].append(trace.recall_by(DEADLINE))
            got = set()
            for e in trace.executions:
                if e.finish_time <= DEADLINE:
                    output = truth.output(item.item_id, e.model_index)
                    got |= {l.label_id for l in output.valuable(truth.threshold)}
            keywords[name] += len(got)

    print(f"stream: {N_STREAM} images, deadline {DEADLINE * 1000:.0f}ms/image\n")
    header = f"{'pipeline':12s} {'s/image':>9s} {'keywords':>9s} {'value recall':>13s}"
    print(header)
    print("-" * len(header))
    costs = {
        "no_policy": zoo.total_time,
        "random": DEADLINE,
        "adaptive": DEADLINE,
    }
    for name in ("no_policy", "random", "adaptive"):
        print(
            f"{name:12s} {costs[name]:9.3f} {keywords[name]:9d} "
            f"{np.mean(recalls[name]):13.1%}"
        )
    speedup = zoo.total_time / DEADLINE
    print(
        f"\nadaptive ingests {speedup:.1f}x faster than 'no policy' while "
        f"keeping {np.mean(recalls['adaptive']):.0%} of the keyword value "
        f"(random keeps {np.mean(recalls['random']):.0%})."
    )


if __name__ == "__main__":
    main()
