"""Shared-GPU labeling under memory + deadline budgets (Algorithm 2, §V-B).

A labeling service shares one GPU across parallel model executions: models
can run concurrently as long as their summed memory fits the card.  This
example compares Algorithm 2's packing against random packing across
several (deadline, memory) operating points, printing the recall each
achieves — a miniature of the paper's Fig. 11.
"""

import numpy as np

from repro import WorldConfig, build_zoo
from repro.config import TrainConfig
from repro.data.datasets import generate_dataset, train_test_split
from repro.labels import build_label_space
from repro.rl.training import train_agent
from repro.scheduling.deadline_memory import (
    MemoryDeadlineScheduler,
    RandomMemoryDeadlineScheduler,
)
from repro.scheduling.qgreedy import AgentPredictor
from repro.zoo.oracle import GroundTruth

OPERATING_POINTS = (
    (0.05, 8000.0),
    (0.10, 8000.0),
    (0.10, 16000.0),
    (0.15, 8000.0),
    (0.25, 16000.0),
)


def main() -> None:
    config = WorldConfig(vocab_scale="mini", zoo_total_time=1.0)
    space = build_label_space(config.vocab_scale)
    zoo = build_zoo(config, space)
    dataset = generate_dataset(space, config, "voc2012", 300)
    train, test = train_test_split(dataset)
    truth = GroundTruth(zoo, dataset, config)
    result = train_agent(
        "dueling_dqn",
        truth,
        [i.item_id for i in train],
        config=TrainConfig(episodes=300, hidden_size=32),
    )
    predictor = AgentPredictor(result.agent, len(zoo))
    test_ids = [i.item_id for i in test][:50]

    print("recall of label value by (deadline, GPU memory):\n")
    header = (
        f"{'deadline':>9s} {'memory':>8s} {'algorithm2':>11s} "
        f"{'random':>8s} {'gain':>7s}"
    )
    print(header)
    print("-" * len(header))
    for deadline, memory in OPERATING_POINTS:
        ours = np.mean(
            [
                MemoryDeadlineScheduler(predictor)
                .schedule(truth, i, deadline, memory)
                .recall_by(deadline)
                for i in test_ids
            ]
        )
        rand = np.mean(
            [
                RandomMemoryDeadlineScheduler(seed=3)
                .schedule(truth, i, deadline, memory)
                .recall_by(deadline)
                for i in test_ids
            ]
        )
        gain = (ours / rand - 1) if rand > 0 else float("inf")
        print(
            f"{deadline:8.2f}s {memory / 1000:6.0f}GB {ours:11.1%} "
            f"{rand:8.1%} {gain:+7.0%}"
        )
    print(
        "\nAlgorithm 2 matters most when memory is scarce relative to the "
        "models — with abundant memory even random packing saturates "
        "(the paper's Fig. 11 trend).  In the fully saturated corner "
        "(everything fits concurrently) the greedy value-per-memory "
        "heuristic can even lose a large model to many small ones; that is "
        "the regime where scheduling stops mattering altogether."
    )


if __name__ == "__main__":
    main()
