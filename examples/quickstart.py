"""Quickstart: train a scheduling agent and label items under a deadline.

Run with::

    python examples/quickstart.py

This uses the mini world (10 models, 58 labels) so the whole script
finishes in well under a minute on a laptop.  Swap ``vocab_scale`` to
``"full"`` for the paper's 30-model / 1104-label setup.
"""

from repro import AdaptiveModelScheduler, LabelingSpec, WorldConfig, build_zoo
from repro.config import TrainConfig
from repro.data.datasets import generate_dataset, train_test_split
from repro.labels import build_label_space
from repro.zoo.oracle import GroundTruth


def main() -> None:
    # 1. Build the world: label space + simulated model zoo.
    config = WorldConfig(vocab_scale="mini", zoo_total_time=1.0)
    space = build_label_space(config.vocab_scale)
    zoo = build_zoo(config, space)
    print(f"zoo: {len(zoo)} models, {len(space)} labels, "
          f"{zoo.total_time:.2f}s to run everything\n")

    # 2. Generate data and split 1:4 (the paper's protocol).
    dataset = generate_dataset(space, config, "mscoco2017", 300)
    train, test = train_test_split(dataset)

    # 3. Train the DRL value-prediction agent (DuelingDQN = paper's best).
    scheduler = AdaptiveModelScheduler(zoo, config)
    truth = GroundTruth(zoo, dataset, config)  # record-once, replay-often
    result = scheduler.train(
        train.items,
        algo="dueling_dqn",
        train_config=TrainConfig(episodes=300, hidden_size=32),
        truth=truth,
    )
    print(f"trained {len(result.episode_returns)} episodes "
          f"({result.total_steps} env steps)\n")

    # 4. Label a few test items under a 0.3 s deadline (Algorithm 1).
    # Constraints travel as one LabelingSpec; the legacy
    # `deadline=0.3` kwarg form still works and builds the same spec.
    spec = LabelingSpec(deadline=0.3)
    for item in test[:5]:
        labeled = scheduler.label(item, spec, truth=truth)
        labels = ", ".join(str(l) for l in labeled.labels[:5]) or "<none>"
        print(f"{labeled.item_id}: {len(labeled.models_executed)} models in "
              f"{labeled.time_used * 1000:.0f}ms -> {labels}")
        print(f"   executed: {', '.join(labeled.models_executed)}")
        print(f"   recall of available label value: {labeled.recall:.0%}\n")

    # 5. The same items with no constraint: Q-greedy over the whole zoo.
    unconstrained = scheduler.label(test[0], truth=truth)
    print(f"unconstrained run of {unconstrained.item_id}: "
          f"{len(unconstrained.labels)} labels, "
          f"{unconstrained.time_used:.2f}s")

    # 6. Throughput path: label a whole batch at once.  The default
    # "batched" backend runs one stacked Q-network forward per scheduling
    # round across all in-flight items — same traces, far fewer forwards.
    batch = scheduler.label_batch(test.items[:64], spec, truth=truth)
    mean_recall = sum(r.trace.recall_by(0.3) for r in batch) / len(batch)
    print(f"\nbatch of {len(batch)} items via the batched backend: "
          f"mean recall by deadline {mean_recall:.0%}")


if __name__ == "__main__":
    main()
