"""Serving: an asyncio client driving the labeling service from an event loop.

Run with::

    python examples/serving_async.py

The :class:`~repro.serving.LabelingService` is front-end-agnostic: its
queue, micro-batcher, and result cache all operate on plain
``concurrent.futures`` futures, so an event-loop application — a web
handler, a websocket gateway — talks to the same service through the
unified :meth:`~repro.serving.LabelingService.submit` /
:meth:`~repro.serving.LabelingService.submit_many` with
``wait="async"``, which admits without blocking the loop and wraps the
futures for ``await``.

Two coroutines share one service here:

* a **camera feed** awaits items one at a time under a scheduling
  deadline — each frame's labels are consumed as soon as that frame
  resolves, while the service still coalesces frames into micro-batches
  behind the scenes;
* an **archive backfill** bulk-submits its whole slice unconstrained and
  gathers the results, then replays it to show repeat submissions being
  answered from the result cache without scheduling.

Everything runs on the mini world so the script finishes in seconds; no
threads appear in *this* file — concurrency on the client side is pure
asyncio (the service keeps its own dispatcher/worker threads inside).
"""

import asyncio

from repro.config import WorldConfig
from repro.data.datasets import generate_dataset
from repro.engine import LabelingEngine
from repro.labels import build_label_space
from repro.rl.agents import make_agent
from repro.scheduling.qgreedy import AgentPredictor
from repro.serving import LabelingService
from repro.spec import LabelingSpec
from repro.zoo.builder import build_zoo
from repro.zoo.oracle import GroundTruth


async def camera_feed(service: LabelingService, frames) -> int:
    """Await one frame at a time, like a live handler would."""
    labeled = 0
    spec = LabelingSpec(deadline=0.25, priority=2)
    for frame in frames:
        result = await service.submit(frame, spec, wait="async")
        labeled += 1
        if labeled <= 3:  # show a few, stay quiet afterwards
            names = ", ".join(result.label_names[:4]) or "<nothing valuable>"
            print(f"  camera   {result.item_id}: {names}")
    return labeled


async def archive_backfill(service: LabelingService, items) -> tuple[int, int]:
    """Bulk-submit, gather, then replay the slice against the cache."""
    first = await asyncio.gather(*service.submit_many(items, wait="async"))
    again = await asyncio.gather(*service.submit_many(items, wait="async"))
    assert [r.item_id for r in again] == [r.item_id for r in first]
    return len(first), len(again)


async def main_async() -> None:
    # 1. World + engine (mini world, untrained agent: serving mechanics
    # do not depend on agent quality).
    config = WorldConfig(vocab_scale="mini", zoo_total_time=1.0)
    space = build_label_space(config.vocab_scale)
    zoo = build_zoo(config, space)
    dataset = generate_dataset(space, config, "mscoco2017", 48)
    truth = GroundTruth(zoo, dataset, config)
    agent = make_agent("dueling_dqn", obs_dim=len(space), n_actions=len(zoo) + 1)
    engine = LabelingEngine(zoo, AgentPredictor(agent, len(zoo)), config)

    items = list(dataset)
    frames, archive = items[:16], items[16:]

    # 2. One service, two concurrent asyncio clients.  The result cache
    # answers the backfill's second pass without scheduling anything.
    service = LabelingService(
        engine,
        batch_size=8,
        max_wait=0.005,
        workers=2,
        truth=truth,
        cache_size=256,
    )
    with service:
        camera_done, (backfill_done, replayed) = await asyncio.gather(
            camera_feed(service, frames),
            archive_backfill(service, archive),
        )
        service.drain()

    print(f"  camera   labeled {camera_done} frames under deadline")
    print(f"  backfill labeled {backfill_done} items, replayed {replayed}")
    print()
    print(service.snapshot().format())


def main() -> None:
    asyncio.run(main_async())


if __name__ == "__main__":
    main()
