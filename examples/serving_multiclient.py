"""Serving: mixed-regime clients sharing one micro-batching service.

Run with::

    python examples/serving_multiclient.py

Three logical clients with different *scheduling regimes* — each carried
by its own :class:`~repro.spec.LabelingSpec` — hit one
:class:`~repro.serving.LabelingService` at the same time:

* a **surveillance** client — Algorithm 1 under a tight per-item
  scheduling deadline, high priority, plus tight per-request *admission*
  deadlines (stale frames are worthless, so late requests are dropped);
* an **interactive** client — Algorithm 2 under deadline + GPU-memory
  budgets, medium priority;
* an **analytics** backfill — unconstrained Q-greedy (every label
  matters, time doesn't), low priority, happy to wait.

The service coalesces all three request streams into engine-sized
micro-batches, but the queue buckets requests by each spec's
``batch_key`` — every batch the engine sees is *homogeneous*, so each
client is scheduled under exactly its own constraints while sharing one
queue, one worker pool, and one telemetry report (note the per-regime
counters and ``regime_split`` flushes).  Buckets are served by weighted
round-robin, so the analytics backfill keeps flowing even while the
higher-priority clients are busy, and a result cache in front of the
queue answers the analytics client's second pass over its items without
scheduling anything (the ``cache`` telemetry line).  This uses the mini
world so the whole script finishes in seconds.
"""

import threading
import time

from repro.config import WorldConfig
from repro.data.datasets import generate_dataset
from repro.engine import LabelingEngine
from repro.labels import build_label_space
from repro.rl.agents import make_agent
from repro.scheduling.qgreedy import AgentPredictor
from repro.serving import DeadlineExpired, LabelingService
from repro.spec import LabelingSpec
from repro.zoo.builder import build_zoo
from repro.zoo.oracle import GroundTruth


def main() -> None:
    # 1. World + engine.  Serving throughput does not depend on agent
    # quality (every forward costs the same), so skip training here.
    config = WorldConfig(vocab_scale="mini", zoo_total_time=1.0)
    space = build_label_space(config.vocab_scale)
    zoo = build_zoo(config, space)
    dataset = generate_dataset(space, config, "mscoco2017", 180)
    truth = GroundTruth(zoo, dataset, config)  # record once, replay often
    agent = make_agent("dueling_dqn", obs_dim=len(space), n_actions=len(zoo) + 1,
                       hidden_size=32)
    engine = LabelingEngine(zoo, AgentPredictor(agent, len(zoo)), config)

    # 2. One service shared by every regime: 16-item micro-batches, a
    # 10 ms flush timer, two engine workers, and a 256-entry result cache
    # keyed by (item, batch_key).  No service-wide constraints — each
    # request brings its own spec.
    service = LabelingService(engine, batch_size=16, max_wait=0.01, workers=2,
                              truth=truth, cache_size=256)

    items = list(dataset)
    stats = {}

    def client(name, slice_, spec, request_deadline, gap):
        completed = dropped = 0
        futures = []
        for item in slice_:
            try:
                futures.append(service.submit(item, spec,
                                              deadline=request_deadline))
            except DeadlineExpired:
                dropped += 1
            time.sleep(gap)
        for future in futures:
            try:
                future.result()
                completed += 1
            except DeadlineExpired:
                dropped += 1
        stats[name] = (completed, dropped)

    # 3. Three clients, three regimes, one shared queue.  The spec carries
    # scheduling constraints *and* the dispatch priority.
    clients = [
        threading.Thread(target=client, name=name, args=args)
        for name, args in {
            "surveillance": (
                "surveillance", items[0::3],
                LabelingSpec(deadline=0.25, priority=2), 0.15, 0.002,
            ),
            "interactive": (
                "interactive", items[1::3],
                LabelingSpec(deadline=0.4, memory_budget=6000.0, priority=1),
                2.0, 0.003,
            ),
            "analytics": (
                # Two passes over the same slice: the second is served
                # entirely from the result cache (hits/coalesced).
                "analytics", items[2::3] * 2,
                LabelingSpec(),  # unconstrained Q-greedy, priority 0
                None, 0.0,
            ),
        }.items()
    ]
    with service:
        for thread in clients:
            thread.start()
        for thread in clients:
            thread.join()
        service.drain()

    # 4. Per-client outcomes + the service-wide telemetry report (the
    # "regimes" line shows all three regimes flowing through one service).
    for name, (completed, dropped) in stats.items():
        print(f"{name:13s} completed {completed:3d}  deadline-dropped {dropped:3d}")
    print()
    print(service.snapshot().format())


if __name__ == "__main__":
    main()
