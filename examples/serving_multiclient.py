"""Serving: many concurrent clients sharing one micro-batching service.

Run with::

    python examples/serving_multiclient.py

Three logical clients with different service terms hit one
:class:`~repro.serving.LabelingService` at the same time:

* a **surveillance** client — high priority, tight per-request admission
  deadlines (stale frames are worthless, so late requests are dropped);
* an **interactive** client — medium priority, generous deadlines;
* an **analytics** backfill — low priority, no deadlines, happy to wait.

The service coalesces all three request streams into engine-sized
micro-batches (flush on ``batch_size`` or ``max_wait``, whichever first),
admits them in priority order, and reports what happened through its
telemetry snapshot.  This uses the mini world so the whole script finishes
in seconds.
"""

import threading
import time

from repro.config import WorldConfig
from repro.data.datasets import generate_dataset
from repro.engine import LabelingEngine
from repro.labels import build_label_space
from repro.rl.agents import make_agent
from repro.scheduling.qgreedy import AgentPredictor
from repro.serving import DeadlineExpired, LabelingService
from repro.zoo.builder import build_zoo
from repro.zoo.oracle import GroundTruth


def main() -> None:
    # 1. World + engine.  Serving throughput does not depend on agent
    # quality (every forward costs the same), so skip training here.
    config = WorldConfig(vocab_scale="mini", zoo_total_time=1.0)
    space = build_label_space(config.vocab_scale)
    zoo = build_zoo(config, space)
    dataset = generate_dataset(space, config, "mscoco2017", 180)
    truth = GroundTruth(zoo, dataset, config)  # record once, replay often
    agent = make_agent("dueling_dqn", obs_dim=len(space), n_actions=len(zoo) + 1,
                       hidden_size=32)
    engine = LabelingEngine(zoo, AgentPredictor(agent, len(zoo)), config)

    # 2. One service, shared by every client: 16-item micro-batches, a
    # 10 ms flush timer, two engine workers, 0.25 s scheduling deadline.
    service = LabelingService(
        engine, batch_size=16, max_wait=0.01, workers=2,
        deadline=0.25, truth=truth,
    )

    items = list(dataset)
    stats = {}

    def client(name: str, slice_, priority: int, request_deadline, gap: float):
        completed = dropped = 0
        futures = []
        for item in slice_:
            try:
                futures.append(service.submit(item, priority=priority,
                                              deadline=request_deadline))
            except DeadlineExpired:
                dropped += 1
            time.sleep(gap)
        for future in futures:
            try:
                future.result()
                completed += 1
            except DeadlineExpired:
                dropped += 1
        stats[name] = (completed, dropped)

    # 3. Three clients, three service terms, one shared queue.
    clients = [
        threading.Thread(target=client, name=name, args=args)
        for name, args in {
            "surveillance": ("surveillance", items[0::3], 2, 0.15, 0.002),
            "interactive": ("interactive", items[1::3], 1, 2.0, 0.003),
            "analytics": ("analytics", items[2::3], 0, None, 0.0),
        }.items()
    ]
    with service:
        for thread in clients:
            thread.start()
        for thread in clients:
            thread.join()
        service.drain()

    # 4. Per-client outcomes + the service-wide telemetry report.
    for name, (completed, dropped) in stats.items():
        print(f"{name:13s} completed {completed:3d}  deadline-dropped {dropped:3d}")
    print()
    print(service.snapshot().format())


if __name__ == "__main__":
    main()
