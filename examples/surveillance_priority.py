"""Surveillance monitoring with model priorities (theta, §VI-E).

A surveillance system wants faces of involved persons (the face detector)
reported with minimal delay when compute is scarce, without
giving up overall labeling efficiency.  The paper's mechanism: raise the
model's theta in the reward function (Eq. 3) so the trained agent schedules
it earlier.

This example trains two agents — neutral and priority — and compares when
the action classifier runs and what that does to total labeling cost.
"""

import numpy as np

from repro import WorldConfig, build_zoo
from repro.config import TrainConfig
from repro.core.reward import RewardConfig
from repro.data.datasets import generate_dataset, train_test_split
from repro.labels import build_label_space
from repro.rl.training import train_agent
from repro.scheduling.base import run_ordering_policy
from repro.scheduling.qgreedy import AgentPredictor, QGreedyPolicy
from repro.zoo.oracle import GroundTruth

PRIORITY_MODEL = "mini_face_det"  # identify involved persons ASAP
THETA = 10.0


def train_and_measure(truth, train_ids, test_ids, zoo, reward_config, tag):
    result = train_agent(
        "dueling_dqn",
        truth,
        train_ids,
        config=TrainConfig(episodes=300, hidden_size=32),
        reward_config=reward_config,
    )
    policy = QGreedyPolicy(AgentPredictor(result.agent, len(zoo)))
    target_index = zoo.index_of(PRIORITY_MODEL)
    positions, full_costs = [], []
    for item_id in test_ids:
        trace = run_ordering_policy(policy, truth, item_id)
        for position, execution in enumerate(trace.executions, start=1):
            if execution.model_index == target_index:
                positions.append(position)
                break
        _, cost = trace.cost_to_recall(1.0)
        full_costs.append(cost)
    print(
        f"{tag:18s} priority model runs at position "
        f"{np.mean(positions):4.1f}/{len(zoo)} on average; "
        f"time to all labels {np.mean(full_costs):.2f}s"
    )
    return float(np.mean(positions))


def main() -> None:
    config = WorldConfig(vocab_scale="mini", zoo_total_time=1.0)
    space = build_label_space(config.vocab_scale)
    zoo = build_zoo(config, space)
    # Stanford40 profile: action-rich scenes, like surveillance footage of
    # human activity.
    dataset = generate_dataset(space, config, "stanford40", 300)
    train, test = train_test_split(dataset)
    truth = GroundTruth(zoo, dataset, config)
    train_ids = [i.item_id for i in train]
    test_ids = [i.item_id for i in test][:50]

    print(f"priority model: {PRIORITY_MODEL} (theta={THETA:g})\n")
    neutral = train_and_measure(
        truth, train_ids, test_ids, zoo, None, "neutral agent"
    )
    boosted = train_and_measure(
        truth,
        train_ids,
        test_ids,
        zoo,
        RewardConfig(theta={PRIORITY_MODEL: THETA}),
        "priority agent",
    )
    print(
        f"\ntheta pulled the priority model from position {neutral:.1f} to "
        f"{boosted:.1f} — earlier evidence at (nearly) unchanged total cost, "
        "the paper's Fig. 9 behaviour."
    )


if __name__ == "__main__":
    main()
