"""Setup script (legacy path: the sandbox's setuptools lacks bdist_wheel)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.2.0",
    description=(
        "Adaptive Model Scheduling: comprehensive and efficient data "
        "labeling (ICDE 2020 reproduction)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24"],
)
