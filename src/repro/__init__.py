"""Adaptive Model Scheduling (AMS) — ICDE 2020 reproduction.

Comprehensive and efficient data labeling: given a zoo of labeling models
and a data stream, adaptively schedule a subset of models per item to
maximize the value of emitted labels under deadline and/or GPU-memory
constraints.

Quickstart::

    from repro import AdaptiveModelScheduler, WorldConfig, build_zoo
    from repro.data.datasets import generate_dataset, train_test_split
    from repro.labels import build_label_space

    config = WorldConfig()
    space = build_label_space(config.vocab_scale)
    zoo = build_zoo(config, space)
    dataset = generate_dataset(space, config, "mscoco2017", 500)
    train, test = train_test_split(dataset)

    scheduler = AdaptiveModelScheduler(zoo, config)
    scheduler.train(train.items, algo="dueling_dqn")
    result = scheduler.label(test[0], deadline=0.5)
    print(result.label_names, result.time_used)
"""

import logging as _logging

from repro.config import TrainConfig, WorldConfig, get_scale
from repro.core.framework import AdaptiveModelScheduler, LabelingResult
from repro.spec import LabelingSpec
from repro.engine import (
    BatchedBackend,
    ClusterBackend,
    ClusterConfig,
    LabelingEngine,
    ProcessConfig,
    SerialBackend,
    ThreadConfig,
    ThreadPoolBackend,
    make_backend,
)
from repro.labels import LabelSpace, build_label_space
from repro.serving import LabelingService
from repro.zoo import GroundTruth, ModelZoo, build_zoo

__version__ = "1.3.0"

# Library convention: emit through ``repro.*`` loggers, ship no handlers.
# Applications opt in (e.g. ``repro.cli --log-level``); without that,
# records vanish here instead of falling back to the root logger.
_logging.getLogger("repro").addHandler(_logging.NullHandler())

__all__ = [
    "TrainConfig",
    "WorldConfig",
    "get_scale",
    "AdaptiveModelScheduler",
    "LabelingResult",
    "LabelingSpec",
    "LabelingEngine",
    "SerialBackend",
    "BatchedBackend",
    "ClusterBackend",
    "ClusterConfig",
    "ProcessConfig",
    "ThreadConfig",
    "ThreadPoolBackend",
    "make_backend",
    "LabelingService",
    "LabelSpace",
    "build_label_space",
    "GroundTruth",
    "ModelZoo",
    "build_zoo",
    "__version__",
]
