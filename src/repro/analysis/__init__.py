"""Analysis layer: metrics, CDFs, and text rendering of tables/figures."""

from repro.analysis.cdf import empirical_cdf
from repro.analysis.metrics import (
    PolicyCurve,
    average_cost_curves,
    performance_ratio,
    savings,
)
from repro.analysis.tables import format_series, format_table

__all__ = [
    "empirical_cdf",
    "PolicyCurve",
    "average_cost_curves",
    "performance_ratio",
    "savings",
    "format_series",
    "format_table",
]
