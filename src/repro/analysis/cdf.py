"""Empirical CDFs (Figs. 2 and 8 report per-image time-cost CDFs)."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def empirical_cdf(
    samples: Sequence[float], grid: Sequence[float] | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """(x, F(x)) of the empirical CDF of ``samples``.

    When ``grid`` is omitted the sorted sample points are used, which is
    exact; a grid gives fixed x positions for table rendering.
    """
    data = np.sort(np.asarray(samples, dtype=np.float64))
    if data.size == 0:
        raise ValueError("need at least one sample")
    if grid is None:
        x = data
        y = np.arange(1, data.size + 1) / data.size
    else:
        x = np.asarray(grid, dtype=np.float64)
        y = np.searchsorted(data, x, side="right") / data.size
    return x, y


def quantile(samples: Sequence[float], q: float) -> float:
    """q-quantile of the samples (0 <= q <= 1)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    return float(np.quantile(np.asarray(samples, dtype=np.float64), q))
