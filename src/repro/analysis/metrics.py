"""Metrics used throughout the evaluation section.

The central structure is the *cost-vs-recall curve* of Figs. 4/5: for a
set of items and one policy, the average number of executed models (and
average execution time) required to reach each recall threshold of the true
output value.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.scheduling.base import ScheduleTrace

#: The recall grid the paper sweeps in Figs. 4/5 (0 to 1).
DEFAULT_RECALL_GRID: tuple[float, ...] = tuple(np.round(np.arange(0.0, 1.01, 0.1), 2))


@dataclass
class PolicyCurve:
    """Average cost to reach each recall threshold, for one policy."""

    policy: str
    thresholds: tuple[float, ...]
    avg_models: np.ndarray
    avg_time: np.ndarray

    def at(self, threshold: float) -> tuple[float, float]:
        """(avg models, avg time) at the grid point nearest ``threshold``."""
        i = int(np.argmin(np.abs(np.asarray(self.thresholds) - threshold)))
        return float(self.avg_models[i]), float(self.avg_time[i])


def average_cost_curves(
    policy: str,
    traces: Sequence[ScheduleTrace],
    thresholds: Sequence[float] = DEFAULT_RECALL_GRID,
) -> PolicyCurve:
    """Average cost-to-recall curves over many items' traces."""
    if not traces:
        raise ValueError("need at least one trace")
    models = np.zeros((len(traces), len(thresholds)))
    times = np.zeros_like(models)
    for i, trace in enumerate(traces):
        for j, threshold in enumerate(thresholds):
            n, t = trace.cost_to_recall(threshold)
            models[i, j] = n
            times[i, j] = t
    return PolicyCurve(
        policy=policy,
        thresholds=tuple(float(t) for t in thresholds),
        avg_models=models.mean(axis=0),
        avg_time=times.mean(axis=0),
    )


def savings(baseline: float, ours: float) -> float:
    """Relative saving of ``ours`` vs ``baseline`` (0.53 = 53% saved)."""
    if baseline <= 0:
        return 0.0
    return 1.0 - ours / baseline


def improvement(baseline: float, ours: float) -> float:
    """Relative improvement of ``ours`` over ``baseline`` (1.32 = +132%)."""
    if baseline <= 0:
        return float("inf") if ours > 0 else 0.0
    return ours / baseline - 1.0


def performance_ratio(
    ours: Sequence[float], upper_bound: Sequence[float]
) -> float:
    """Mean ratio of our recalls to the optimal* upper bound (§V-C).

    Items where the upper bound is 0 are skipped (no value available means
    every policy is trivially optimal there).
    """
    ours_arr = np.asarray(ours, dtype=np.float64)
    upper = np.asarray(upper_bound, dtype=np.float64)
    if ours_arr.shape != upper.shape:
        raise ValueError("shape mismatch")
    mask = upper > 1e-12
    if not mask.any():
        return 1.0
    ratios = np.minimum(ours_arr[mask] / upper[mask], 1.0)
    return float(ratios.mean())
