"""ASCII rendering of result tables and figure series.

The benchmark harness prints, for every table and figure of the paper, the
rows/series the paper reports next to our measured values; these helpers
keep that output consistent and readable.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Left-aligned monospace table with a separator under the header."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    title: str | None = None,
    precision: int = 3,
) -> str:
    """A figure rendered as a table: one x column, one column per series."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        row = [f"{x:g}"] + [
            f"{values[i]:.{precision}f}" for values in series.values()
        ]
        rows.append(row)
    return format_table(headers, rows, title=title)
