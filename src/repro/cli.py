"""Command-line interface for the library.

Subcommands mirror the adoption workflow:

* ``record``   — execute the zoo on a generated dataset and store the
  ground-truth archive (the paper's offline data-collection step);
* ``train``    — train a DRL value-prediction agent on an archive;
* ``schedule`` — label items from an archive with a trained agent under
  optional deadline / memory budgets;
* ``zoo``      — print the Table I summary of the model zoo;
* ``graph``    — build the model-relationship graph and print its
  strongest learned relationships (the auto-learned Table II);
* ``serve``    — run the micro-batching labeling service over a generated
  stream of concurrent client requests and print its telemetry report;
  ``--metrics-port`` additionally serves live Prometheus/JSON metrics and
  request traces over HTTP while the run is in flight;
* ``trace``    — tail finished request-trace spans from a running
  ``serve --metrics-port`` endpoint (or from a ``--trace-export`` file);
* ``cluster-worker`` — run one scheduling worker process for
  ``--backend cluster`` (the dispatcher ships it the world on connect;
  point ``--workers host:port,host:port`` at the printed addresses).

``--log-level`` turns on stdlib logging for the ``repro.*`` loggers
(service lifecycle, worker-pool respawns, shm transport fallbacks, cache
evictions); the library itself ships only a NullHandler.

Example::

    python -m repro.cli record --dataset mscoco2017 --items 500 --out gt.npz
    python -m repro.cli train --truth gt.npz --algo dueling_dqn --out agent.npz
    python -m repro.cli schedule --truth gt.npz --agent agent.npz --deadline 0.5
    python -m repro.cli serve --items 128 --clients 4 --rate 400 --max-wait 0.02
    python -m repro.cli serve --items 256 --metrics-port 9109 &
    python -m repro.cli trace --url http://127.0.0.1:9109 --follow
"""

from __future__ import annotations

import argparse
import logging
import os
import sys

import numpy as np

from repro.config import TrainConfig, WorldConfig
from repro.data.datasets import generate_dataset
from repro.engine import (
    BACKEND_REGISTRY,
    ClusterConfig,
    LabelingEngine,
    ProcessConfig,
    ThreadConfig,
)
from repro.graph import build_relationship_graph
from repro.labels import build_label_space
from repro.persistence import load_ground_truth, save_ground_truth
from repro.rl.agents import AGENT_REGISTRY, make_agent
from repro.rl.training import train_agent
from repro.scheduling.qgreedy import AgentPredictor
from repro.spec import LabelingSpec
from repro.zoo.builder import build_zoo


def _world(args) -> tuple:
    config = WorldConfig(vocab_scale=args.scale, seed=args.seed)
    space = build_label_space(config.vocab_scale)
    zoo = build_zoo(config, space)
    return config, space, zoo


def _workers_arg(value: str):
    """argparse type for --workers: a pool size or a host:port list."""
    if ":" in value:
        addresses = tuple(part.strip() for part in value.split(",") if part.strip())
        if not addresses:
            raise argparse.ArgumentTypeError("empty worker address list")
        return addresses
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a pool size or a host:port[,host:port...] list, "
            f"got {value!r}"
        ) from None


def _backend(args):
    """Typed backend config (or registry name) from --backend/--workers.

    ``--workers`` sizes the thread/process pool.  With ``--backend
    cluster`` it instead controls the fleet: an integer spawns that many
    local worker processes, while a comma-separated ``host:port`` list
    connects to already-running ``cluster-worker`` processes.
    """
    workers = getattr(args, "workers", None)
    addresses = workers if isinstance(workers, tuple) else ()
    count = workers if isinstance(workers, int) else None
    if addresses and args.backend != "cluster":
        raise SystemExit(
            f"--workers {','.join(addresses)}: host:port worker lists "
            f"require --backend cluster"
        )
    if args.backend == "thread":
        return ThreadConfig(max_workers=count)
    if args.backend == "process":
        return ProcessConfig(max_workers=count)
    if args.backend == "cluster":
        if addresses:
            return ClusterConfig(workers=addresses)
        return ClusterConfig(local_workers=count or 2)
    return args.backend


def _service_workers(args) -> int:
    """Service worker-thread count from the (possibly address-list) flag."""
    workers = getattr(args, "workers", None)
    if isinstance(workers, tuple):
        return max(2, len(workers))
    return workers if workers is not None else 2


def cmd_record(args) -> int:
    config, space, zoo = _world(args)
    dataset = generate_dataset(space, config, args.dataset, args.items)
    from repro.zoo.oracle import GroundTruth

    truth = GroundTruth(zoo, dataset, config)
    save_ground_truth(truth, args.out)
    print(
        f"recorded {len(truth)} items x {len(zoo)} models -> {args.out} "
        f"(useful executions: {truth.useful_execution_fraction():.1%})"
    )
    return 0


def cmd_train(args) -> int:
    config, _, zoo = _world(args)
    truth = load_ground_truth(zoo, args.truth, config)
    item_ids = list(truth.item_ids)
    train_ids, _ = _split_ids(item_ids, args.seed)
    result = train_agent(
        args.algo,
        truth,
        train_ids,
        config=TrainConfig(episodes=args.episodes, hidden_size=args.hidden),
    )
    result.agent.save(args.out)
    returns = result.smoothed_returns(20)
    tail = float(returns[-1]) if len(returns) else float("nan")
    print(
        f"trained {args.algo} for {args.episodes} episodes "
        f"({result.total_steps} steps, final smoothed return {tail:.2f}) "
        f"-> {args.out}"
    )
    return 0


def cmd_schedule(args) -> int:
    from pathlib import Path

    if args.resume and args.manifest is None:
        raise SystemExit("--resume requires --manifest")
    config, space, zoo = _world(args)
    truth = load_ground_truth(zoo, args.truth, config)
    agent = make_agent(
        args.algo,
        obs_dim=len(space),
        n_actions=len(zoo) + 1,
        hidden_size=args.hidden,
    )
    agent.load(args.agent)
    predictor = AgentPredictor(agent, len(zoo))
    _, eval_ids = _split_ids(list(truth.item_ids), args.seed)
    eval_ids = eval_ids[: args.items]

    # --manifest makes the run resumable: the full item list and every
    # completion are persisted (atomically), so a killed run picks up
    # with --resume exactly where it stopped, mid-trace.
    manifest = None
    already_done = 0
    if args.manifest is not None:
        from repro.durability import RunManifest

        params = {
            "truth": args.truth,
            "agent": args.agent,
            "deadline": args.deadline,
            "memory": args.memory,
            "scale": args.scale,
            "seed": args.seed,
            "items": args.items,
        }
        if args.resume:
            manifest = RunManifest.load(args.manifest)
            if manifest.params != params:
                print(
                    "warning: flags differ from the manifest's recorded "
                    "run parameters; using the manifest's item list anyway",
                    file=sys.stderr,
                )
            already_done = manifest.done
            eval_ids = manifest.remaining
            print(
                f"resuming {args.manifest}: {already_done} item(s) already "
                f"done, {len(eval_ids)} remaining"
            )
            if not eval_ids:
                print("nothing left to schedule")
                return 0
        elif Path(args.manifest).exists():
            raise SystemExit(
                f"{args.manifest} already exists; pass --resume to continue "
                f"that run (or remove the file to start over)"
            )
        else:
            manifest = RunManifest.create(args.manifest, eval_ids, params)

    engine = LabelingEngine(
        zoo,
        predictor,
        config,
        backend=_backend(args),
        batch_size=args.batch_size,
    )
    # The CLI flags build one LabelingSpec; everything downstream shares it.
    spec = LabelingSpec(deadline=args.deadline, memory_budget=args.memory)
    items = [truth.record(item_id).item for item_id in eval_ids]
    recalls = []
    try:
        for result in engine.label_stream(
            items,
            spec,
            truth=truth,
            release_records=False,
        ):
            recalls.append(result.trace.recall_by(args.deadline))
            if manifest is not None:
                manifest.mark_done(
                    result.item_id, {"recall": round(recalls[-1], 6)}
                )
            if args.verbose:
                models = ", ".join(result.models_executed)
                print(f"{result.item_id}: recall {recalls[-1]:.1%} [{models}]")
    finally:
        if manifest is not None:
            manifest.save()
        engine.backend.close()
    resumed = f" ({already_done} resumed from manifest)" if already_done else ""
    print(
        f"scheduled {len(eval_ids)} items under deadline={args.deadline}s"
        + (f", memory={args.memory}MB" if args.memory is not None else "")
        + f" [{args.backend} backend, batch {args.batch_size}]"
        + f": mean value recall {np.mean(recalls):.1%}"
        + resumed
    )
    return 0


def cmd_zoo(args) -> int:
    _, space, zoo = _world(args)
    print(f"{'model':26s} {'task':24s} {'time':>7s} {'memory':>9s}")
    for model in zoo:
        print(
            f"{model.name:26s} {model.task:24s} {model.time * 1000:5.0f}ms "
            f"{model.mem:7.0f}MB"
        )
    print(
        f"\n{len(zoo)} models, {len(space)} labels, "
        f"{zoo.total_time:.2f}s to execute everything"
    )
    return 0


def cmd_graph(args) -> int:
    config, _, zoo = _world(args)
    truth = load_ground_truth(zoo, args.truth, config)
    graph = build_relationship_graph(truth)
    print("strongest learned model relationships (lift of usefulness):")
    for source, target, lift in graph.strongest_edges(args.top):
        print(f"  {source:26s} -> {target:26s} lift {lift:5.2f}")
    exported = graph.to_networkx(min_lift_ratio=args.min_lift)
    print(
        f"\nnetworkx export at min lift ratio {args.min_lift}: "
        f"{exported.number_of_nodes()} nodes, "
        f"{exported.number_of_edges()} edges"
    )
    return 0


def cmd_serve(args) -> int:
    import signal
    import threading
    import time

    from repro.serving import DeadlineExpired, LabelingService, QueueFull
    from repro.zoo.oracle import GroundTruth

    # Observability is opt-in: --metrics-port serves /metrics live,
    # --trace-export dumps the span ring at exit; either one turns on
    # the registry + tracer + scheduler-tick instrumentation.
    observing = args.metrics_port is not None or args.trace_export is not None
    registry = tracer = metrics_server = None
    if observing:
        from repro.obs import MetricsRegistry, MetricsServer, TraceBuffer, install

        registry = MetricsRegistry()
        tracer = TraceBuffer(capacity=args.trace_buffer)
        install(registry)
        if args.metrics_port is not None:
            metrics_server = MetricsServer(
                registry, tracer, port=args.metrics_port
            ).start()
            print(
                f"metrics: {metrics_server.url}/metrics  "
                f"traces: {metrics_server.url}/traces"
            )

    config, space, zoo = _world(args)
    dataset = generate_dataset(space, config, args.dataset, args.items)
    # Pre-record once so the report measures serving + scheduling, not the
    # one-off zoo execution (the paper's record-then-replay protocol).
    truth = GroundTruth(zoo, dataset, config)
    agent = make_agent(
        args.algo, obs_dim=len(space), n_actions=len(zoo) + 1, hidden_size=args.hidden
    )
    if args.agent is not None:
        agent.load(args.agent)
    predictor = AgentPredictor(agent, len(zoo))
    # The service runs a sibling engine on the backend built from the CLI
    # flags; with ``--backend process`` the scheduling phase runs in
    # --workers worker processes while the queue/cache/truth bookkeeping
    # stays here.  The pool is built (and closed, in the finally below)
    # by this command, not by the service.
    engine = LabelingEngine(zoo, predictor, config)
    if args.mixed_regimes:
        # Three client populations, three scheduling regimes, one service:
        # the dispatcher groups them into homogeneous batches by batch_key.
        deadline = args.deadline if args.deadline is not None else 0.5
        memory = args.memory if args.memory is not None else 8000.0
        client_specs = [
            LabelingSpec(),
            LabelingSpec(deadline=deadline),
            LabelingSpec(deadline=deadline, memory_budget=memory),
        ]
        service_spec = LabelingSpec()
    else:
        client_specs = None
        service_spec = LabelingSpec(
            deadline=args.deadline, memory_budget=args.memory
        )
    service = LabelingService(
        engine,
        backend=_backend(args),
        batch_size=args.batch_size,
        max_wait=args.max_wait,
        workers=_service_workers(args),
        max_depth=args.max_depth,
        overflow=args.overflow,
        spec=service_spec,
        truth=truth,
        cache_size=args.cache_size or None,
        registry=registry,
        tracer=tracer,
        journal=args.journal,
        journal_fsync=args.journal_fsync,
    )

    items = list(dataset)

    # Graceful shutdown: SIGTERM/SIGINT stop the load generators, then
    # the normal drain (bounded by --drain-timeout) and report run —
    # acknowledged work completes, the journal flushes, and we exit 0.
    stopping = threading.Event()

    def handle_signal(signum, frame) -> None:
        print(
            f"received {signal.Signals(signum).name}: stopping clients and "
            f"draining (timeout {args.drain_timeout:.0f}s)",
            flush=True,
        )
        stopping.set()

    previous_handlers = {
        sig: signal.signal(sig, handle_signal)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }

    def client(index: int) -> None:
        # Each client replays its slice of the stream at ~rate/clients
        # requests/sec with seeded jitter, mimicking independent callers.
        # --repeat > 1 resubmits the slice; with --cache-size the repeat
        # rounds are answered from the result cache without scheduling.
        rng = np.random.default_rng(args.seed + index)
        gap = args.clients / args.rate if args.rate > 0 else 0.0
        base = (
            client_specs[index % len(client_specs)]
            if client_specs is not None
            else service.default_spec
        )
        for item in list(items[index :: args.clients]) * args.repeat:
            if stopping.is_set():
                return
            try:
                service.submit(
                    item,
                    base.with_(priority=int(rng.integers(3))),
                    deadline=args.request_deadline,
                )
            except (QueueFull, DeadlineExpired):
                pass  # telemetry counts rejected/expired; keep submitting
            if gap:
                time.sleep(float(gap * rng.uniform(0.5, 1.5)))

    try:
        with service:
            if args.recover:
                report = service.recover()
                print(
                    f"recovery: {report.replayed} journaled request(s) "
                    f"replayed, {report.recovered} recovered, "
                    f"{report.failed} failed ({report.duration:.3f}s)"
                )
            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(args.clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            service.drain(args.drain_timeout if stopping.is_set() else None)
        regimes = (
            "mixed regimes (qgreedy + deadline + deadline_memory)"
            if args.mixed_regimes
            else f"regime {service_spec.regime}"
        )
        print(
            f"served {args.items} generated items from {args.clients} clients "
            f"at ~{args.rate:.0f} req/s, {regimes} "
            f"[batch {args.batch_size}, max_wait {args.max_wait * 1000:.0f}ms, "
            f"{_service_workers(args)} workers, {args.backend} backend]"
        )
        snapshot = service.snapshot()
        print(snapshot.format())
        if service.cache is not None:
            print(f"  result cache {service.cache.stats().format()}")
        if service.journal is not None:
            jstats = service.journal.stats()
            print(
                f"  journal     {jstats.admitted} admitted, "
                f"{sum(jstats.terminals.values())} terminals, "
                f"{jstats.pending} pending, {jstats.fsyncs} fsyncs, "
                f"{jstats.segments} segment(s)"
            )
        if tracer is not None:
            print(
                f"  traces      {tracer.finished} finished, "
                f"{len(tracer)} in ring, {tracer.dropped} dropped"
            )
        if args.trace_export is not None:
            with open(args.trace_export, "w") as fh:
                fh.write(tracer.to_json())
            print(f"  trace ring exported to {args.trace_export}")
        if metrics_server is not None and args.metrics_linger > 0:
            # Keep the endpoint up after drain so an external scraper
            # (CI smoke, a curious operator) can read the final families.
            print(
                f"metrics endpoint lingering {args.metrics_linger:.0f}s "
                f"at {metrics_server.url}/metrics"
            )
            time.sleep(args.metrics_linger)
        return 0 if snapshot.counters["failed"] == 0 else 1
    finally:
        for sig, handler in previous_handlers.items():
            signal.signal(sig, handler)
        service.engine.backend.close()
        if metrics_server is not None:
            metrics_server.close()
        if observing:
            from repro.obs import uninstall

            uninstall()


def cmd_gateway(args) -> int:
    import asyncio
    import contextlib
    import signal
    from pathlib import Path

    from repro.obs import MetricsRegistry, TraceBuffer, install, uninstall
    from repro.serving import HierarchicalRequestQueue, LabelingService
    from repro.serving.gateway import LabelingGateway, TenantDirectory
    from repro.zoo.oracle import GroundTruth

    # Tenant roster: explicit file > environment JSON > demo roster.
    if args.tenants_file is not None:
        directory = TenantDirectory.from_file(args.tenants_file)
        show_keys = False
    elif os.environ.get("REPRO_GATEWAY_TENANTS"):
        directory = TenantDirectory.from_env()
        show_keys = False
    else:
        directory = TenantDirectory.demo(args.demo_tenants)
        show_keys = True  # demo keys are public by construction
    print(f"{'tenant':<12} {'weight':>6} {'rate':>8} {'burst':>6} "
          f"{'inflight':>8}" + ("  api_key" if show_keys else ""))
    for tenant in directory:
        rate = "inf" if tenant.rate == float("inf") else f"{tenant.rate:.0f}"
        row = (
            f"{tenant.name:<12} {tenant.weight:>6.1f} {rate:>8} "
            f"{tenant.burst:>6} {tenant.max_inflight:>8}"
        )
        print(row + (f"  {tenant.api_key}" if show_keys else ""))

    registry = MetricsRegistry()
    tracer = TraceBuffer(capacity=args.trace_buffer)
    install(registry)
    config, space, zoo = _world(args)
    dataset = generate_dataset(space, config, args.dataset, args.items)
    # Record once up front — the gateway labels the recorded catalog
    # (the paper's record-then-replay protocol), so steady-state load
    # measures serving + scheduling, never zoo execution.
    truth = GroundTruth(zoo, dataset, config)
    agent = make_agent(
        args.algo, obs_dim=len(space), n_actions=len(zoo) + 1, hidden_size=args.hidden
    )
    if args.agent is not None:
        agent.load(args.agent)
    predictor = AgentPredictor(agent, len(zoo))
    engine = LabelingEngine(zoo, predictor, config)
    # One --journal directory holds both durability domains: the
    # service's admission WAL and the gateway's job store.
    journal_dir = Path(args.journal) if args.journal is not None else None
    service = LabelingService(
        engine,
        backend=_backend(args),
        batch_size=args.batch_size,
        max_wait=args.max_wait,
        workers=_service_workers(args),
        max_depth=args.max_depth,
        truth=truth,
        cache_size=args.cache_size or None,
        registry=registry,
        tracer=tracer,
        journal=journal_dir / "service" if journal_dir else None,
        journal_fsync=args.journal_fsync,
        # Tenant-fair dispatch: outer stride over tenants (weights from
        # the roster), inner stride over batch keys within each tenant.
        queue_factory=lambda **kw: HierarchicalRequestQueue(
            tenant_weights=directory.weights(), **kw
        ),
    )
    gateway = LabelingGateway(
        service,
        directory,
        dataset,
        registry=registry,
        tracer=tracer,
        host=args.host,
        port=args.port,
        journal=journal_dir / "jobs" if journal_dir else None,
    )

    async def run() -> None:
        await gateway.start_async()
        print(
            f"gateway listening at {gateway.url}  "
            f"({len(gateway.catalog)} items, {len(directory)} tenants)",
            flush=True,
        )
        # SIGTERM and SIGINT both mean "stop accepting, drain, exit 0":
        # the event breaks this loop, then the drain below (bounded by
        # --drain-timeout) settles in-flight work and flushes journals.
        stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(sig, stop_event.set)
        try:
            if args.duration is not None:
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(stop_event.wait(), args.duration)
            else:
                await stop_event.wait()
            if stop_event.is_set():
                print(
                    f"shutdown signal: draining (timeout "
                    f"{args.drain_timeout:.0f}s)",
                    flush=True,
                )
        finally:
            for sig in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError, RuntimeError):
                    loop.remove_signal_handler(sig)
            await gateway.stop_async()

    try:
        with service:
            if args.recover and service.journal is not None:
                report = service.recover()
                print(
                    f"recovery: {report.replayed} journaled request(s) "
                    f"replayed, {report.recovered} recovered, "
                    f"{report.failed} failed ({report.duration:.3f}s)"
                )
            try:
                asyncio.run(run())
            except KeyboardInterrupt:
                pass
            service.drain(args.drain_timeout)
        print(service.snapshot().format())
        if service.cache is not None:
            print(f"  result cache {service.cache.stats().format()}")
        if service.journal is not None:
            jstats = service.journal.stats()
            print(
                f"  journal     {jstats.admitted} admitted, "
                f"{sum(jstats.terminals.values())} terminals, "
                f"{jstats.pending} pending"
            )
        return 0
    finally:
        service.engine.backend.close()
        uninstall()


def cmd_cluster_worker(args) -> int:
    from repro.engine import ClusterWorker

    worker = ClusterWorker(
        host=args.host, port=args.port, delay_per_item=args.delay_per_item
    )
    # The dispatcher ships the world on connect, so the worker is
    # stateless here: print the address for --backend cluster
    # --workers host:port lists and block in the accept loop.
    print(f"cluster worker listening at {worker.address}", flush=True)
    try:
        worker.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        worker.stop()
    return 0


def _format_trace(trace: dict) -> str:
    """One human line per exported trace dict (the JSON span schema)."""
    timeline = "  ".join(
        event["stage"]
        + (
            f"({event['detail']['reason']})"
            if "reason" in event.get("detail", {})
            else ""
        )
        + f"+{event['t'] * 1000:.1f}ms"
        for event in trace["events"]
    )
    return (
        f"#{trace['trace_id']} {trace['item_id']} regime={trace['regime']} "
        f"status={trace['status'] or 'live'} "
        f"{trace['duration_s'] * 1000:.1f}ms  {timeline}"
    )


def cmd_trace(args) -> int:
    import json
    import time
    import urllib.error
    import urllib.request

    if (args.url is None) == (args.file is None):
        print("pass exactly one of --url or --file", file=sys.stderr)
        return 2
    if args.follow and args.url is None:
        print("--follow requires --url (a live endpoint)", file=sys.stderr)
        return 2

    def fetch() -> dict:
        if args.file is not None:
            with open(args.file) as fh:
                return json.load(fh)
        query = f"?n={args.limit}" if args.limit is not None else ""
        url = args.url.rstrip("/") + "/traces" + query
        with urllib.request.urlopen(url, timeout=10) as response:
            return json.load(response)

    last_seen = 0
    try:
        while True:
            try:
                payload = fetch()
            except (urllib.error.URLError, OSError) as exc:
                print(f"cannot reach {args.url}: {exc}", file=sys.stderr)
                return 1
            traces = payload.get("traces", [])
            if args.limit is not None:
                traces = traces[-args.limit :]
            for trace in traces:
                # In follow mode only print spans newer than the last poll;
                # trace ids are monotonic, so this is an exact cursor.
                if trace["trace_id"] > last_seen:
                    print(_format_trace(trace))
                    last_seen = trace["trace_id"]
            if not args.follow:
                print(
                    f"{payload.get('finished', len(traces))} finished "
                    f"trace(s), {payload.get('dropped', 0)} dropped from a "
                    f"ring of {payload.get('capacity', '?')}"
                )
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _split_ids(item_ids: list[str], seed: int) -> tuple[list[str], list[str]]:
    rng = np.random.default_rng(seed)
    perm = rng.permutation(len(item_ids))
    n_train = max(1, len(item_ids) // 5)
    train = [item_ids[i] for i in sorted(perm[:n_train])]
    test = [item_ids[i] for i in sorted(perm[n_train:])]
    return train, test


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument("--scale", default="full", choices=("full", "mini"))
    parser.add_argument("--seed", type=int, default=20200208)
    parser.add_argument(
        "--log-level",
        default=None,
        choices=("debug", "info", "warning", "error"),
        help="enable stderr logging for the repro.* loggers at this level",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("record", help="execute the zoo and store ground truth")
    p.add_argument("--dataset", required=True)
    p.add_argument("--items", type=int, default=500)
    p.add_argument("--out", required=True)
    p.set_defaults(func=cmd_record)

    p = sub.add_parser("train", help="train a value-prediction agent")
    p.add_argument("--truth", required=True)
    p.add_argument("--algo", default="dueling_dqn", choices=sorted(AGENT_REGISTRY))
    p.add_argument("--episodes", type=int, default=400)
    p.add_argument("--hidden", type=int, default=256)
    p.add_argument("--out", required=True)
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("schedule", help="label items under budgets")
    p.add_argument("--truth", required=True)
    p.add_argument("--agent", required=True)
    p.add_argument("--algo", default="dueling_dqn", choices=sorted(AGENT_REGISTRY))
    p.add_argument("--hidden", type=int, default=256)
    p.add_argument("--deadline", type=float, default=0.5)
    p.add_argument(
        "--memory-budget",
        "--memory",
        dest="memory",
        type=float,
        default=None,
        help="GPU-memory budget in MB (Algorithm 2; requires --deadline)",
    )
    p.add_argument("--items", type=int, default=50)
    p.add_argument(
        "--backend", default="batched", choices=sorted(BACKEND_REGISTRY)
    )
    p.add_argument(
        "--workers",
        type=_workers_arg,
        default=None,
        help="pool size for --backend thread/process/cluster (default: cpu "
        "count; cluster: 2), or a host:port,host:port list of running "
        "cluster-worker processes for --backend cluster",
    )
    p.add_argument("--batch-size", type=int, default=64)
    p.add_argument("--verbose", action="store_true")
    p.add_argument(
        "--manifest",
        default=None,
        help="persist run progress to this JSON manifest so a killed run "
        "can continue with --resume",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="resume the run recorded in --manifest, scheduling only the "
        "items not yet marked done",
    )
    p.set_defaults(func=cmd_schedule)

    p = sub.add_parser("zoo", help="print the model zoo (Table I)")
    p.set_defaults(func=cmd_zoo)

    p = sub.add_parser("graph", help="model-relationship graph from a recording")
    p.add_argument("--truth", required=True)
    p.add_argument("--top", type=int, default=15)
    p.add_argument("--min-lift", type=float, default=1.5)
    p.set_defaults(func=cmd_graph)

    p = sub.add_parser(
        "serve", help="run the micro-batching service over a generated stream"
    )
    p.add_argument("--dataset", default="mscoco2017")
    p.add_argument("--items", type=int, default=128)
    p.add_argument("--clients", type=int, default=4)
    p.add_argument(
        "--rate", type=float, default=400.0, help="aggregate requests/sec (0 = asap)"
    )
    p.add_argument("--batch-size", type=int, default=32)
    p.add_argument(
        "--max-wait", type=float, default=0.02, help="flush timer, seconds"
    )
    p.add_argument(
        "--workers",
        type=_workers_arg,
        default=2,
        help="engine worker threads; with --backend process/cluster also "
        "the number of scheduling worker processes, or a "
        "host:port,host:port list of running cluster-worker processes "
        "for --backend cluster",
    )
    p.add_argument("--max-depth", type=int, default=1024)
    p.add_argument("--overflow", default="block", choices=("block", "reject"))
    p.add_argument(
        "--deadline", type=float, default=None, help="scheduling deadline per item"
    )
    p.add_argument(
        "--memory-budget",
        "--memory",
        dest="memory",
        type=float,
        default=None,
        help="GPU-memory budget in MB (Algorithm 2; requires --deadline)",
    )
    p.add_argument(
        "--mixed-regimes",
        action="store_true",
        help="split clients across qgreedy / deadline / deadline+memory "
        "specs to exercise homogeneous-batch grouping",
    )
    p.add_argument(
        "--request-deadline",
        type=float,
        default=None,
        help="per-request admission budget, seconds",
    )
    p.add_argument(
        "--cache-size",
        type=int,
        default=0,
        help="result-cache capacity keyed by (item, batch_key); "
        "0 disables the cache",
    )
    p.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="times each client replays its item slice (repeat rounds "
        "hit the result cache when --cache-size is set)",
    )
    p.add_argument(
        "--backend", default="batched", choices=sorted(BACKEND_REGISTRY)
    )
    p.add_argument("--agent", default=None, help="optional trained agent .npz")
    p.add_argument("--algo", default="dueling_dqn", choices=sorted(AGENT_REGISTRY))
    p.add_argument("--hidden", type=int, default=256)
    p.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="serve /metrics, /metrics.json, and /traces on this port "
        "while running (0 = pick an ephemeral port)",
    )
    p.add_argument(
        "--metrics-linger",
        type=float,
        default=0.0,
        help="keep the metrics endpoint up this many seconds after the "
        "run drains, so external scrapers can read the final families",
    )
    p.add_argument(
        "--trace-buffer",
        type=int,
        default=512,
        help="finished request-trace spans kept in the ring",
    )
    p.add_argument(
        "--trace-export",
        default=None,
        help="write the trace ring as JSON to this path at exit",
    )
    _add_durability_flags(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "gateway",
        help="run the multi-tenant HTTP gateway over a recorded catalog",
    )
    p.add_argument("--dataset", default="mscoco2017")
    p.add_argument(
        "--items", type=int, default=128, help="catalog size to record and serve"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=0, help="bind port (0 = ephemeral)"
    )
    p.add_argument(
        "--duration",
        type=float,
        default=None,
        help="serve this many seconds then exit (default: until interrupted)",
    )
    p.add_argument(
        "--tenants-file",
        default=None,
        help="tenant roster JSON (see repro.serving.gateway.auth); "
        "falls back to $REPRO_GATEWAY_TENANTS, then --demo-tenants",
    )
    p.add_argument(
        "--demo-tenants",
        type=int,
        default=3,
        help="size of the deterministic demo roster used when no "
        "tenant config is given (keys demo-key-tenant-N)",
    )
    p.add_argument("--batch-size", type=int, default=32)
    p.add_argument(
        "--max-wait", type=float, default=0.02, help="flush timer, seconds"
    )
    p.add_argument(
        "--workers",
        type=_workers_arg,
        default=2,
        help="worker threads / scheduling processes, or a host:port list "
        "for --backend cluster",
    )
    p.add_argument("--max-depth", type=int, default=1024)
    p.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="result-cache capacity (tenant-partitioned); 0 disables",
    )
    p.add_argument(
        "--backend", default="batched", choices=sorted(BACKEND_REGISTRY)
    )
    p.add_argument("--agent", default=None, help="optional trained agent .npz")
    p.add_argument("--algo", default="dueling_dqn", choices=sorted(AGENT_REGISTRY))
    p.add_argument("--hidden", type=int, default=256)
    p.add_argument("--trace-buffer", type=int, default=512)
    _add_durability_flags(p)
    p.set_defaults(func=cmd_gateway)

    p = sub.add_parser(
        "cluster-worker",
        help="run one cluster scheduling worker for --backend cluster",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=0, help="bind port (0 = ephemeral)"
    )
    p.add_argument(
        "--delay-per-item",
        type=float,
        default=0.0,
        help="artificial per-item seconds after each chunk's scheduling "
        "pass, emulating model-execution latency (benchmarking aid)",
    )
    p.set_defaults(func=cmd_cluster_worker)

    p = sub.add_parser(
        "trace", help="tail request-trace spans from a serve endpoint or file"
    )
    p.add_argument(
        "--url",
        default=None,
        help="base URL of a running serve --metrics-port endpoint "
        "(e.g. http://127.0.0.1:9109)",
    )
    p.add_argument(
        "--file", default=None, help="read a serve --trace-export JSON file"
    )
    p.add_argument(
        "--limit", type=int, default=None, help="show at most the last N spans"
    )
    p.add_argument(
        "--follow",
        action="store_true",
        help="poll --url and stream new spans until interrupted",
    )
    p.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="poll period in seconds for --follow",
    )
    p.set_defaults(func=cmd_trace)
    return parser


def _add_durability_flags(p: argparse.ArgumentParser) -> None:
    """The crash-safety flags shared by ``serve`` and ``gateway``."""
    p.add_argument(
        "--journal",
        default=None,
        help="write-ahead journal directory; admitted requests (and, for "
        "gateway, async jobs) survive a crash and replay on --recover",
    )
    p.add_argument(
        "--journal-fsync",
        default="batch",
        choices=("none", "batch", "always"),
        help="fsync policy: always = every admission durable before its "
        "submit returns; batch = fsync at micro-batch boundaries "
        "(default); none = leave syncing to the OS",
    )
    p.add_argument(
        "--recover",
        action="store_true",
        help="before serving, replay journaled admissions that never "
        "reached a terminal (requires --journal)",
    )
    p.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds to wait for in-flight work when a shutdown signal "
        "arrives before exiting anyway",
    )


def _configure_logging(level: str | None) -> None:
    """Wire the repro.* loggers to stderr when --log-level asks for it."""
    if level is None:
        return
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s")
    )
    root = logging.getLogger("repro")
    root.addHandler(handler)
    root.setLevel(getattr(logging, level.upper()))


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    _configure_logging(args.log_level)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
