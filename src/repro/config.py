"""Configuration presets for the world, RL training, and experiment scale.

Three scales are used throughout the repository:

``smoke``
    A structurally identical mini world (58 labels, 10 models) for unit
    tests; everything runs in seconds.
``bench``
    The full 1104-label / 30-model world with shortened RL training and a
    few hundred items — the default for ``benchmarks/``.
``paper``
    The full world with longer training and thousands of items, for
    ``python -m repro.experiments.runner --scale paper``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


#: Confidence threshold above which an emitted label counts as "valuable"
#: (the paper's "high-confidence labels").
VALUABLE_CONFIDENCE = 0.5


@dataclass(frozen=True)
class WorldConfig:
    """Parameters of the simulated world (datasets + model zoo)."""

    #: Vocabulary scale: "full" (1104 labels, 30 models) or "mini".
    vocab_scale: str = "full"
    #: Base seed from which all dataset / model randomness derives.
    seed: int = 20200208  # the paper's arXiv date
    #: Confidence threshold for a label to be "valuable".
    valuable_confidence: float = VALUABLE_CONFIDENCE
    #: Total zoo execution time per item, seconds (the paper's 5.16 s).
    zoo_total_time: float = 5.16

    def with_seed(self, seed: int) -> "WorldConfig":
        return replace(self, seed=seed)


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters for DRL agent training (Section IV-B)."""

    episodes: int = 400
    #: Hidden layer width (paper uses 256 at full scale).
    hidden_size: int = 256
    learning_rate: float = 1e-3
    #: Discount factor.  The paper's agents predict the *value of a model*
    #: given the labeling state — a near-myopic quantity.  Large gamma
    #: bundles the whole episode's remaining value into every Q and
    #: destroys per-model discrimination (verified by the gamma ablation
    #: bench); 0.2 keeps the four algorithms' bootstrap rules distinct
    #: while matching the paper's prediction semantics.
    gamma: float = 0.2
    batch_size: int = 64
    replay_capacity: int = 50_000
    #: Environment steps between gradient updates.
    update_every: int = 1
    #: Environment steps between target-network syncs.
    target_sync_every: int = 250
    #: Epsilon-greedy schedule: linear decay from start to end over a
    #: fraction of the expected total steps.
    epsilon_start: float = 1.0
    epsilon_end: float = 0.05
    epsilon_decay_fraction: float = 0.6
    #: Steps collected before learning starts.
    warmup_steps: int = 200
    #: Whether the END action is available during training (paper: yes).
    use_end_action: bool = True
    seed: int = 7

    def with_(self, **kwargs) -> "TrainConfig":
        return replace(self, **kwargs)


@dataclass(frozen=True)
class ExperimentScale:
    """Bundle of knobs controlling how big an experiment run is."""

    name: str
    world: WorldConfig
    train: TrainConfig
    #: Items generated per dataset (split 1:4 train:test as in §VI-A).
    items_per_dataset: int
    #: Items actually evaluated per policy (subsample of the test split).
    eval_items: int

    @property
    def is_full_world(self) -> bool:
        return self.world.vocab_scale == "full"


def smoke_scale(seed: int = 20200208) -> ExperimentScale:
    """Tiny preset for unit tests."""
    return ExperimentScale(
        name="smoke",
        world=WorldConfig(vocab_scale="mini", seed=seed, zoo_total_time=1.0),
        train=TrainConfig(
            episodes=80,
            hidden_size=32,
            target_sync_every=100,
            warmup_steps=50,
            batch_size=32,
        ),
        items_per_dataset=150,
        eval_items=40,
    )


def bench_scale(seed: int = 20200208) -> ExperimentScale:
    """Full world, shortened training — default for benchmarks."""
    return ExperimentScale(
        name="bench",
        world=WorldConfig(vocab_scale="full", seed=seed),
        train=TrainConfig(episodes=180, hidden_size=96),
        items_per_dataset=400,
        eval_items=80,
    )


def paper_scale(seed: int = 20200208) -> ExperimentScale:
    """Full world, long training — for the experiments runner."""
    return ExperimentScale(
        name="paper",
        world=WorldConfig(vocab_scale="full", seed=seed),
        train=TrainConfig(episodes=900, hidden_size=256),
        items_per_dataset=2500,
        eval_items=400,
    )


_SCALES = {"smoke": smoke_scale, "bench": bench_scale, "paper": paper_scale}


def get_scale(name: str, seed: int = 20200208) -> ExperimentScale:
    """Look up a scale preset by name."""
    try:
        factory = _SCALES[name]
    except KeyError:
        raise ValueError(
            f"unknown scale {name!r}; choose from {sorted(_SCALES)}"
        ) from None
    return factory(seed)
