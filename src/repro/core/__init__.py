"""Core abstractions: outputs, labeling state, evaluation (Eq. 1), reward
(Eq. 3), and the top-level adaptive scheduling framework (Fig. 3).

Submodules are imported lazily to avoid an import cycle with
:mod:`repro.zoo` (the zoo emits :class:`~repro.core.output.ModelOutput`
objects, while evaluation/state consume the zoo's ground-truth cache).
"""

from repro.core.output import LabelOutput, ModelOutput
from repro.core.reward import RewardConfig, reward_for_output

__all__ = [
    "LabelOutput",
    "ModelOutput",
    "RewardConfig",
    "reward_for_output",
    "OutputAccumulator",
    "evaluate_subset",
    "recall_curve",
    "LabelingState",
]

_LAZY = {
    "OutputAccumulator": "repro.core.evaluation",
    "evaluate_subset": "repro.core.evaluation",
    "recall_curve": "repro.core.evaluation",
    "LabelingState": "repro.core.state",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module = importlib.import_module(_LAZY[name])
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
