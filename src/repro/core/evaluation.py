"""Evaluation function f(S, d) (Eq. 1) and recall-curve utilities.

``f(S, d)`` sums the profits of the labels output by executing the model
subset ``S`` on item ``d``.  As in the paper we use the label confidence as
its profit; when several models emit the same label we count its best
confidence, which makes ``f`` non-negative, non-decreasing, and submodular
(Lemma 1) — properties the test suite verifies with hypothesis.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.zoo.oracle import GroundTruth


def evaluate_subset(
    truth: GroundTruth, item_id: str, model_indices: Iterable[int]
) -> float:
    """f(S, d): value of executing ``model_indices`` on the item.

    Order-independent (f is a set function).  Duplicates are ignored.
    """
    rec = truth.record(item_id)
    best = np.zeros_like(rec.best_confidence)
    for j in set(int(i) for i in model_indices):
        ids = rec.valuable_ids[j]
        if len(ids):
            np.maximum.at(best, ids, rec.valuable_confs[j])
    return float(best.sum())


def marginal_gain(
    truth: GroundTruth,
    item_id: str,
    current_best: np.ndarray,
    model_index: int,
) -> float:
    """f(S + m) - f(S) given the dense best-confidence vector of S."""
    ids, confs = truth.valuable(item_id, model_index)
    if len(ids) == 0:
        return 0.0
    return float(np.maximum(confs - current_best[ids], 0.0).sum())


class OutputAccumulator:
    """Incremental f(S, d) accounting used by oracle baselines.

    Cheaper than :class:`~repro.core.state.LabelingState` when only the
    value (not the observation vector) is needed.
    """

    def __init__(self, truth: GroundTruth, item_id: str):
        self._truth = truth
        self._item_id = item_id
        rec = truth.record(item_id)
        self._best = np.zeros_like(rec.best_confidence)
        self.value = 0.0
        self.executed: set[int] = set()

    def gain_of(self, model_index: int) -> float:
        """Marginal gain of adding one model (without adding it)."""
        return marginal_gain(self._truth, self._item_id, self._best, model_index)

    def add(self, model_index: int) -> float:
        """Add a model to S; returns its realized marginal gain."""
        if model_index in self.executed:
            return 0.0
        ids, confs = self._truth.valuable(self._item_id, model_index)
        gain = 0.0
        if len(ids):
            gain = float(np.maximum(confs - self._best[ids], 0.0).sum())
            np.maximum.at(self._best, ids, confs)
        self.executed.add(model_index)
        self.value += gain
        return gain


def recall_curve(
    cumulative_values: Sequence[float],
    costs: Sequence[float],
    total_value: float,
    thresholds: Sequence[float],
) -> list[float]:
    """Cost needed to reach each recall threshold along one execution trace.

    ``cumulative_values[k]`` and ``costs[k]`` describe the trace after the
    (k+1)-th model execution.  For each threshold ``t`` the returned entry
    is the smallest ``costs[k]`` with ``cumulative_values[k] >=
    t * total_value``; if the trace never reaches the threshold, the full
    trace cost is charged (the policy ran out of useful models — it pays
    for everything it executed).
    """
    if len(cumulative_values) != len(costs):
        raise ValueError("cumulative_values and costs must have equal length")
    out: list[float] = []
    full_cost = costs[-1] if len(costs) else 0.0
    for t in thresholds:
        target = t * total_value
        reached = full_cost
        for value, cost in zip(cumulative_values, costs):
            if value >= target - 1e-12:
                reached = cost
                break
        out.append(float(reached))
    return out
