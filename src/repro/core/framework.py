"""The Adaptive Model Scheduling framework — the paper's Fig. 3 loop.

:class:`AdaptiveModelScheduler` is the public entry point a downstream user
adopts: build (or load) a zoo, train (or load) a DRL value predictor, then
label items/streams under whatever constraints apply:

* no constraint  -> Q-greedy with value-aware early stopping,
* deadline       -> Algorithm 1,
* deadline+memory-> Algorithm 2.

The "prediction-scheduling-execution" loop is internal; callers get back a
:class:`~repro.core.labeling.LabelingResult` with the labels, confidences,
and the executed-model trace.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.config import TrainConfig, WorldConfig
from repro.core.output import LabelOutput
from repro.core.reward import RewardConfig
from repro.data.datasets import DataItem
from repro.rl.agents import QAgent
from repro.rl.training import TrainingResult, train_agent
from repro.scheduling.base import ScheduleTrace, run_ordering_policy
from repro.scheduling.deadline import CostQGreedyScheduler
from repro.scheduling.deadline_memory import MemoryDeadlineScheduler
from repro.scheduling.qgreedy import AgentPredictor, QGreedyPolicy
from repro.zoo.model import ModelZoo
from repro.zoo.oracle import GroundTruth


@dataclass
class LabelingResult:
    """What the framework returns for one labeled item."""

    item_id: str
    #: All valuable labels obtained, with confidences.
    labels: list[LabelOutput]
    #: The underlying execution trace (models, times, marginal values).
    trace: ScheduleTrace

    @property
    def label_names(self) -> list[str]:
        return [l.name for l in self.labels]

    @property
    def models_executed(self) -> list[str]:
        return [e.model_name for e in self.trace.executions]

    @property
    def time_used(self) -> float:
        return self.trace.makespan

    @property
    def recall(self) -> float:
        return self.trace.recall


class AdaptiveModelScheduler:
    """End-to-end adaptive model scheduling over a model zoo.

    Parameters
    ----------
    zoo:
        The model collection ``M``.
    world_config:
        World parameters (valuable-confidence threshold etc.).
    agent:
        A trained Q agent; when omitted, call :meth:`train` first.
    """

    def __init__(
        self,
        zoo: ModelZoo,
        world_config: WorldConfig | None = None,
        agent: QAgent | None = None,
    ):
        self.zoo = zoo
        self.world_config = world_config or WorldConfig()
        self.agent = agent
        self._training: TrainingResult | None = None

    # -- training -----------------------------------------------------------

    def train(
        self,
        items: Sequence[DataItem],
        algo: str = "dueling_dqn",
        train_config: TrainConfig | None = None,
        reward_config: RewardConfig | None = None,
        truth: GroundTruth | None = None,
    ) -> TrainingResult:
        """Train the value-prediction agent on labeled training items.

        ``truth`` may be passed to reuse an existing ground-truth cache;
        otherwise the zoo is executed on the items to record outputs
        (the paper's offline data-collection step).
        """
        if truth is None:
            truth = GroundTruth(self.zoo, items, self.world_config)
        else:
            truth.add_items(items)
        result = train_agent(
            algo,
            truth,
            [item.item_id for item in items],
            config=train_config,
            reward_config=reward_config,
        )
        self.agent = result.agent
        self._training = result
        return result

    # -- labeling -------------------------------------------------------------

    def _predictor(self) -> AgentPredictor:
        if self.agent is None:
            raise RuntimeError(
                "no trained agent; call train() or pass agent= at construction"
            )
        return AgentPredictor(self.agent, len(self.zoo))

    def _truth_for(self, item: DataItem, truth: GroundTruth | None) -> GroundTruth:
        if truth is None:
            truth = GroundTruth(self.zoo, [item], self.world_config)
        else:
            truth.add_items([item])
        return truth

    def _result(self, truth: GroundTruth, trace: ScheduleTrace) -> LabelingResult:
        state_conf: dict[int, float] = {}
        labels: dict[int, LabelOutput] = {}
        for execution in trace.executions:
            output = truth.output(trace.item_id, execution.model_index)
            for label in output.valuable(truth.threshold):
                seen = state_conf.get(label.label_id, 0.0)
                if label.confidence > seen:
                    state_conf[label.label_id] = label.confidence
                    labels[label.label_id] = label
        return LabelingResult(
            item_id=trace.item_id,
            labels=sorted(labels.values(), key=lambda l: -l.confidence),
            trace=trace,
        )

    def label(
        self,
        item: DataItem,
        deadline: float | None = None,
        memory_budget: float | None = None,
        max_models: int | None = None,
        truth: GroundTruth | None = None,
    ) -> LabelingResult:
        """Label one item under the given constraints.

        * ``deadline`` only — Algorithm 1 (serial).
        * ``deadline`` + ``memory_budget`` — Algorithm 2 (parallel).
        * neither — Q-greedy over all models (optionally capped by
          ``max_models``).
        """
        truth = self._truth_for(item, truth)
        predictor = self._predictor()
        if memory_budget is not None:
            if deadline is None:
                raise ValueError("memory_budget requires a deadline")
            trace = MemoryDeadlineScheduler(predictor).schedule(
                truth, item.item_id, deadline, memory_budget
            )
        elif deadline is not None:
            trace = CostQGreedyScheduler(predictor).schedule(
                truth, item.item_id, deadline
            )
        else:
            trace = run_ordering_policy(
                QGreedyPolicy(predictor), truth, item.item_id, max_models=max_models
            )
        return self._result(truth, trace)

    def label_stream(
        self,
        items: Iterable[DataItem],
        deadline: float | None = None,
        memory_budget: float | None = None,
        truth: GroundTruth | None = None,
    ) -> Iterable[LabelingResult]:
        """Label a stream of items lazily (one result per input item)."""
        for item in items:
            yield self.label(
                item,
                deadline=deadline,
                memory_budget=memory_budget,
                truth=truth,
            )
