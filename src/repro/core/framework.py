"""The Adaptive Model Scheduling framework — the paper's Fig. 3 loop.

:class:`AdaptiveModelScheduler` is the public entry point a downstream user
adopts: build (or load) a zoo, train (or load) a DRL value predictor, then
label items/streams under whatever constraints apply:

* no constraint  -> Q-greedy with value-aware early stopping,
* deadline       -> Algorithm 1,
* deadline+memory-> Algorithm 2.

Constraints travel as one :class:`~repro.spec.LabelingSpec` — pass
``spec=LabelingSpec(deadline=0.5)`` to any labeling call, or keep using
the legacy ``deadline=/memory_budget=/max_models=`` kwargs, which are
normalized into a spec (passing both raises).

The "prediction-scheduling-execution" loop lives in
:mod:`repro.engine`: every labeling call delegates to a
:class:`~repro.engine.LabelingEngine`, so single items, batches, and
streams all go through the same backend machinery.  The default
``batched`` backend runs one stacked Q-network forward per scheduling
round across all in-flight items and produces traces identical to serial
execution; pass ``backend="serial"`` or ``backend="thread"`` (or a
constructed backend) to change the execution strategy.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.config import TrainConfig, WorldConfig
from repro.core.reward import RewardConfig
from repro.data.datasets import DataItem
from repro.engine import ExecutionBackend, LabelingEngine, LabelingResult
from repro.engine.engine import DEFAULT_BATCH_SIZE
from repro.rl.agents import QAgent
from repro.rl.training import TrainingResult, train_agent
from repro.scheduling.qgreedy import AgentPredictor
from repro.spec import LabelingSpec
from repro.zoo.model import ModelZoo
from repro.zoo.oracle import GroundTruth

__all__ = ["AdaptiveModelScheduler", "LabelingResult", "LabelingSpec"]


class AdaptiveModelScheduler:
    """End-to-end adaptive model scheduling over a model zoo.

    Parameters
    ----------
    zoo:
        The model collection ``M``.
    world_config:
        World parameters (valuable-confidence threshold etc.).
    agent:
        A trained Q agent; when omitted, call :meth:`train` first.
    backend:
        Execution backend name (``"batched"``, ``"serial"``, ``"thread"``)
        or instance used by all labeling calls.
    batch_size:
        Default number of in-flight items on the streaming/batch paths.
    """

    def __init__(
        self,
        zoo: ModelZoo,
        world_config: WorldConfig | None = None,
        agent: QAgent | None = None,
        backend: str | ExecutionBackend = "batched",
        batch_size: int = DEFAULT_BATCH_SIZE,
    ):
        self.zoo = zoo
        self.world_config = world_config or WorldConfig()
        self.agent = agent
        self.backend = backend
        self.batch_size = batch_size
        self._training: TrainingResult | None = None

    # -- training -----------------------------------------------------------

    def train(
        self,
        items: Sequence[DataItem],
        algo: str = "dueling_dqn",
        train_config: TrainConfig | None = None,
        reward_config: RewardConfig | None = None,
        truth: GroundTruth | None = None,
    ) -> TrainingResult:
        """Train the value-prediction agent on labeled training items.

        ``truth`` may be passed to reuse an existing ground-truth cache;
        otherwise the zoo is executed on the items to record outputs
        (the paper's offline data-collection step).
        """
        if truth is None:
            truth = GroundTruth(self.zoo, items, self.world_config)
        else:
            truth.add_items(items)
        result = train_agent(
            algo,
            truth,
            [item.item_id for item in items],
            config=train_config,
            reward_config=reward_config,
        )
        self.agent = result.agent
        self._training = result
        return result

    # -- labeling -------------------------------------------------------------

    def _predictor(self) -> AgentPredictor:
        if self.agent is None:
            raise RuntimeError(
                "no trained agent; call train() or pass agent= at construction"
            )
        return AgentPredictor(self.agent, len(self.zoo))

    def engine(self) -> LabelingEngine:
        """The labeling engine all labeling calls delegate to."""
        return LabelingEngine(
            self.zoo,
            self._predictor(),
            self.world_config,
            backend=self.backend,
            batch_size=self.batch_size,
        )

    def label(
        self,
        item: DataItem,
        spec: LabelingSpec | None = None,
        *,
        deadline: float | None = None,
        memory_budget: float | None = None,
        max_models: int | None = None,
        truth: GroundTruth | None = None,
    ) -> LabelingResult:
        """Label one item under one :class:`LabelingSpec`.

        The spec's regime picks the algorithm:

        * ``deadline`` only — Algorithm 1 (serial).
        * ``deadline`` + ``memory_budget`` — Algorithm 2 (parallel).
        * neither — Q-greedy over all models (optionally capped by
          ``max_models``).

        The legacy kwargs build the spec when ``spec`` is omitted;
        passing both raises.
        """
        return self.engine().label_batch(
            [item],
            LabelingSpec.resolve(
                spec,
                deadline=deadline,
                memory_budget=memory_budget,
                max_models=max_models,
            ),
            truth=truth,
        )[0]

    def label_batch(
        self,
        items: Sequence[DataItem],
        spec: LabelingSpec | None = None,
        *,
        deadline: float | None = None,
        memory_budget: float | None = None,
        max_models: int | None = None,
        truth: GroundTruth | None = None,
        release_records: bool = False,
    ) -> list[LabelingResult]:
        """Label a batch of items concurrently (input-ordered results)."""
        return self.engine().label_batch(
            items,
            LabelingSpec.resolve(
                spec,
                deadline=deadline,
                memory_budget=memory_budget,
                max_models=max_models,
            ),
            truth=truth,
            release_records=release_records,
        )

    def label_stream(
        self,
        items: Iterable[DataItem],
        spec: LabelingSpec | None = None,
        *,
        deadline: float | None = None,
        memory_budget: float | None = None,
        max_models: int | None = None,
        truth: GroundTruth | None = None,
        batch_size: int | None = None,
        release_records: bool = True,
    ) -> Iterator[LabelingResult]:
        """Label a stream lazily (one result per input item, input order).

        Items are scheduled ``batch_size`` at a time through the engine:
        the source iterator is consumed one chunk ahead, so the first
        result arrives only after ``batch_size`` items (or stream end) —
        pass ``batch_size=1`` to recover strict per-item latency on slow
        live sources.  Ground-truth records the engine adds are released
        once their results are yielded, so unbounded streams run in
        bounded memory (``release_records=False`` keeps the cache
        instead).  Spec/kwargs conflicts and invalid constraints raise at
        call time, before the first item is consumed.
        """
        return self.engine().label_stream(
            items,
            LabelingSpec.resolve(
                spec,
                deadline=deadline,
                memory_budget=memory_budget,
                max_models=max_models,
            ),
            truth=truth,
            batch_size=batch_size,
            release_records=release_records,
        )
