"""Output containers shared by the zoo, the environment, and schedulers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LabelOutput:
    """One emitted label with its confidence."""

    label_id: int
    name: str
    confidence: float

    def __str__(self) -> str:
        return f"{self.name} ({self.confidence:.2f})"


@dataclass(frozen=True)
class ModelOutput:
    """Everything one model emitted for one item.

    ``labels`` contains *all* emissions, including the low-confidence junk
    of the paper's Fig. 1; use :meth:`valuable` to keep only labels at or
    above the confidence threshold.
    """

    model: str
    item_id: str
    labels: tuple[LabelOutput, ...]

    def valuable(self, threshold: float) -> tuple[LabelOutput, ...]:
        """Labels whose confidence is at least ``threshold``."""
        return tuple(l for l in self.labels if l.confidence >= threshold)

    def valuable_arrays(self, threshold: float) -> tuple[np.ndarray, np.ndarray]:
        """(ids, confidences) of valuable labels as numpy arrays."""
        picked = self.valuable(threshold)
        ids = np.asarray([l.label_id for l in picked], dtype=np.int64)
        confs = np.asarray([l.confidence for l in picked], dtype=np.float64)
        return ids, confs

    @property
    def is_empty(self) -> bool:
        return not self.labels

    def __str__(self) -> str:
        body = ", ".join(str(l) for l in self.labels) or "<no output>"
        return f"{self.model}: {body}"
