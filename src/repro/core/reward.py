"""The reward function of Eq. (3), with theta priorities and END action.

For a model ``m`` executed on item ``d``:

* if the model emitted *new* valuable labels ``O'(m, d)`` (not already
  produced by previously executed models):
  ``r = ln(theta_m * sum(conf of new labels) + 1)``;
* otherwise the agent receives the punishment ``-1``;
* the END action is worth ``0`` (training only, §IV-B).

The logarithmic smoothing prevents many-label tasks (face landmarks emit up
to 70 labels) from drowning out single-label tasks (action classifiers),
and ``theta_m`` lets users raise a model's priority (§VI-E).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


#: Reward of the END action.
END_REWARD = 0.0
#: Punishment when a model produces nothing new.
EMPTY_PUNISHMENT = -1.0


@dataclass(frozen=True)
class RewardConfig:
    """Per-model priorities and smoothing selection for Eq. (3)."""

    #: Model name -> theta priority; unlisted models default to 1.0.
    theta: dict[str, float] = field(default_factory=dict)
    #: Smoothing applied to ``theta * sum(conf)``: "log" (paper default),
    #: "mean" (average confidence — the paper's noted alternative), or
    #: "identity" (raw sum — the problematic variant §IV-A motivates
    #: against; kept for the ablation benchmark).
    smoothing: str = "log"

    def __post_init__(self) -> None:
        if self.smoothing not in ("log", "mean", "identity"):
            raise ValueError(f"unknown smoothing: {self.smoothing!r}")
        for name, value in self.theta.items():
            if value <= 0:
                raise ValueError(f"theta for {name} must be positive, got {value}")

    def theta_of(self, model_name: str) -> float:
        return self.theta.get(model_name, 1.0)


def reward_for_output(
    new_confidences: np.ndarray,
    theta: float = 1.0,
    smoothing: str = "log",
) -> float:
    """Eq. (3): reward for one model execution.

    Parameters
    ----------
    new_confidences:
        Confidences of the *new* valuable labels the model emitted
        (``O'(m, d)``); empty means punishment.
    theta:
        The model's user-defined priority.
    smoothing:
        See :class:`RewardConfig`.
    """
    if len(new_confidences) == 0:
        return EMPTY_PUNISHMENT
    total = float(np.sum(new_confidences))
    if smoothing == "log":
        return float(np.log(theta * total + 1.0))
    if smoothing == "mean":
        return float(theta * total / len(new_confidences))
    if smoothing == "identity":
        return float(theta * total)
    raise ValueError(f"unknown smoothing: {smoothing!r}")
