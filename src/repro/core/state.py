"""The labeling state: the DRL agent's environment observation (§IV).

The state is an ``n``-dimensional binary vector (``n = |L(M)|``) whose i-th
bit records whether label i has been output (at valuable confidence) by any
executed model.  :class:`LabelingState` also tracks which models were
executed and the running value of the output set — bookkeeping every
scheduling policy needs.
"""

from __future__ import annotations

import numpy as np

from repro.zoo.oracle import GroundTruth


class LabelingState:
    """Mutable per-item labeling state shared by env and schedulers.

    Value semantics follow Eq. (1) with the label profit ``p_i`` equal to
    the best confidence at which label i has been emitted so far; re-emitting
    a label at higher confidence contributes only the improvement, which
    keeps the accumulated value monotone and submodular.
    """

    def __init__(self, truth: GroundTruth, item_id: str):
        self.truth = truth
        self.item_id = item_id
        n_labels = len(truth.zoo.space)
        self._bits = np.zeros(n_labels, dtype=np.float32)
        self._conf = np.zeros(n_labels, dtype=np.float64)
        self.executed = np.zeros(len(truth.zoo), dtype=bool)
        self.value = 0.0
        self.elapsed_time = 0.0

    # -- views ---------------------------------------------------------------

    @property
    def vector(self) -> np.ndarray:
        """The binary observation vector (do not mutate)."""
        return self._bits

    @property
    def confidences(self) -> np.ndarray:
        """Best confidence per label so far (do not mutate)."""
        return self._conf

    @property
    def n_executed(self) -> int:
        return int(self.executed.sum())

    @property
    def remaining(self) -> np.ndarray:
        """Indices of models not yet executed."""
        return np.nonzero(~self.executed)[0]

    @property
    def all_executed(self) -> bool:
        return bool(self.executed.all())

    @property
    def total_value(self) -> float:
        """f(M, d): the best achievable value on this item."""
        return self.truth.total_value(self.item_id)

    @property
    def recall(self) -> float:
        """Recall rate of true output value accumulated so far."""
        total = self.total_value
        return self.value / total if total > 0 else 1.0

    # -- transitions -----------------------------------------------------------

    def execute(self, model_index: int) -> tuple[np.ndarray, np.ndarray]:
        """Execute one model; returns its (new_ids, new_confs) contribution.

        "New" follows the paper's ``O'(m, d)``: labels (or confidence
        improvements) not already provided by previously executed models.
        Raises if the model was already executed — schedulers must not
        re-run models.
        """
        if self.executed[model_index]:
            raise ValueError(
                f"model index {model_index} already executed on {self.item_id}"
            )
        self.executed[model_index] = True
        self.elapsed_time += float(self.truth.zoo[model_index].time)
        ids, confs = self.truth.valuable(self.item_id, model_index)
        if len(ids) == 0:
            return ids, confs
        gains = np.maximum(confs - self._conf[ids], 0.0)
        new_mask = gains > 0.0
        np.maximum.at(self._conf, ids, confs)
        self._bits[ids] = 1.0
        self.value += float(gains.sum())
        return ids[new_mask], confs[new_mask]

    def copy(self) -> "LabelingState":
        """An independent copy (used by look-ahead baselines)."""
        clone = LabelingState(self.truth, self.item_id)
        clone._bits = self._bits.copy()
        clone._conf = self._conf.copy()
        clone.executed = self.executed.copy()
        clone.value = self.value
        clone.elapsed_time = self.elapsed_time
        return clone
