"""Synthetic data substrate: latent semantic content + dataset generators.

The paper evaluates on five public image datasets.  We replace pixels with a
*latent semantic world*: each :class:`~repro.data.semantics.SceneContent`
records what is "in" an item (scene, objects, persons with faces / poses /
emotions, an action, a dog breed).  The simulated models in
:mod:`repro.zoo` read this latent content, so the scheduler faces the same
decision problem as in the paper: which model will emit valuable labels for
this item, given what other models have already emitted?
"""

from repro.data.datasets import DataItem, Dataset, train_test_split
from repro.data.generator import WorldGenerator
from repro.data.profiles import DATASET_PROFILES, DatasetProfile
from repro.data.semantics import PersonContent, SceneContent
from repro.data.streams import batched, chunked_stream, iid_stream

__all__ = [
    "batched",
    "DataItem",
    "Dataset",
    "train_test_split",
    "WorldGenerator",
    "DATASET_PROFILES",
    "DatasetProfile",
    "PersonContent",
    "SceneContent",
    "chunked_stream",
    "iid_stream",
]
