"""Cross-task semantic correlations of the synthetic world.

The paper's DRL agent works *because* labels are correlated across models:
a detected person hints at faces, poses and actions; a "pub" scene hints at
cups and drinking; an indoor scene argues against wild animals.  This module
encodes those correlations as conditional distributions over the vocabulary
of :mod:`repro.vocab`, computed once per :class:`~repro.labels.LabelSpace`.

All distributions are expressed over *local* label indices within each task
so the mini (test) world gets the same structure automatically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.labels import LabelSpace
from repro.vocab import (
    TASK_ACTION,
    TASK_DOG,
    TASK_OBJECT,
    TASK_PLACE,
)


@dataclass(frozen=True)
class SceneAffinities:
    """Per-scene conditional structure derived from the vocabulary.

    Attributes
    ----------
    indoor:
        Boolean array over place indices: is this scene indoor?
    object_affinity:
        ``(n_places, n_objects)`` matrix; row ``s`` is the relative
        propensity of each object category to appear in scene ``s``.
    person_prob:
        Per-scene probability that at least one person is present.
    sport_scene:
        Boolean array: scenes that host sport actions (outdoor courts etc.).
    """

    indoor: np.ndarray
    object_affinity: np.ndarray
    person_prob: np.ndarray
    sport_scene: np.ndarray


def _group_mask(names: tuple[str, ...], group: frozenset[str]) -> np.ndarray:
    return np.asarray([n in group for n in names], dtype=bool)


def build_scene_affinities(space: LabelSpace) -> SceneAffinities:
    """Compute scene->object/person structure from vocabulary groups."""
    vocab = space.vocabulary
    place_names = vocab.labels_for(TASK_PLACE)
    object_names = vocab.labels_for(TASK_OBJECT)
    n_places = len(place_names)
    n_objects = len(object_names)

    indoor = _group_mask(place_names, vocab.indoor_places)

    household = _group_mask(object_names, vocab.household_objects)
    animals = _group_mask(object_names, vocab.animal_objects)
    vehicles = _group_mask(object_names, vocab.vehicle_objects)
    sport = _group_mask(object_names, vocab.sport_objects)
    food = _group_mask(object_names, vocab.food_objects)
    street = _group_mask(object_names, vocab.street_objects)

    # Scene name heuristics give each scene a flavour; synthesized names
    # inherit the flavour of their base scene because the base name is a
    # suffix (e.g. "sunlit_pub" contains "pub").
    def scene_has(substr_options: tuple[str, ...]) -> np.ndarray:
        return np.asarray(
            [any(s in name for s in substr_options) for name in place_names],
            dtype=bool,
        )

    foodish = scene_has(
        ("pub", "beer", "restaurant", "bar", "coffee", "bakery", "cafeteria",
         "kitchen", "dining", "banquet", "supermarket", "pantry")
    )
    sportish = scene_has(
        ("stadium", "court", "field", "gym", "ski", "pool", "golf",
         "bowling", "playground")
    )
    streetish = scene_has(
        ("street", "highway", "downtown", "crosswalk", "alley", "plaza",
         "parking", "gas_station", "bridge")
    )
    naturish = scene_has(
        ("mountain", "forest", "lake", "river", "ocean", "desert", "canyon",
         "cliff", "glacier", "marsh", "pasture", "farm", "zoo", "garden",
         "orchard", "vineyard", "campsite", "volcano", "beach", "lawn",
         "park", "picnic")
    )

    affinity = np.full((n_places, n_objects), 0.15, dtype=np.float64)
    affinity[np.ix_(indoor, household)] += 0.9
    affinity[np.ix_(indoor, animals)] -= 0.12
    affinity[np.ix_(foodish, food)] += 1.1
    affinity[np.ix_(sportish, sport)] += 1.2
    affinity[np.ix_(streetish, vehicles)] += 1.0
    affinity[np.ix_(streetish, street)] += 1.0
    affinity[np.ix_(naturish, animals)] += 0.9
    affinity[np.ix_(~indoor, vehicles)] += 0.25
    # "person" appears everywhere but more in social scenes.
    person_col = object_names.index("person") if "person" in object_names else None
    if person_col is not None:
        affinity[:, person_col] += 0.6
        affinity[foodish | sportish | streetish, person_col] += 0.6
    np.clip(affinity, 0.02, None, out=affinity)

    person_prob = np.full(n_places, 0.30, dtype=np.float64)
    person_prob[foodish | sportish] = 0.55
    person_prob[streetish] = 0.45
    person_prob[naturish] = 0.20
    person_prob[indoor & ~foodish] = 0.38

    return SceneAffinities(
        indoor=indoor,
        object_affinity=affinity,
        person_prob=person_prob,
        sport_scene=sportish,
    )


@dataclass(frozen=True)
class ActionAffinities:
    """Scene/object conditioning of the action vocabulary."""

    #: Boolean over action indices: sport actions.
    sport: np.ndarray
    #: Base action weights (uniform-ish with a boost for "core" actions).
    base_weight: np.ndarray


def build_action_affinities(space: LabelSpace) -> ActionAffinities:
    vocab = space.vocabulary
    action_names = vocab.labels_for(TASK_ACTION)
    sport = _group_mask(action_names, vocab.sport_actions)
    base = np.ones(len(action_names), dtype=np.float64)
    # Core (named) actions are more common than synthesized tail actions;
    # this mirrors the long tail of Kinetics-style vocabularies.
    base[: min(50, len(action_names))] *= 6.0
    return ActionAffinities(sport=sport, base_weight=base)


def dog_breed_weights(space: LabelSpace) -> np.ndarray:
    """Long-tailed breed popularity: core breeds dominate."""
    n = len(space.vocabulary.labels_for(TASK_DOG))
    weights = np.ones(n, dtype=np.float64)
    weights[: min(30, n)] *= 8.0
    return weights


def dog_object_index(space: LabelSpace) -> int | None:
    """Local index of the "dog" object category, if present."""
    names = space.vocabulary.labels_for(TASK_OBJECT)
    try:
        return names.index("dog")
    except ValueError:  # pragma: no cover - mini world always includes dog
        return None
