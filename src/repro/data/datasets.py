"""Dataset containers: items, datasets, and the paper's 1:4 split.

A :class:`DataItem` couples an id with its latent content.  A
:class:`Dataset` is an ordered collection of items from one profile;
:func:`train_test_split` reproduces the paper's "split it into a training
set and a testing set with the ratio of 1:4" (§VI-A).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.config import WorldConfig
from repro.data.generator import WorldGenerator
from repro.data.profiles import DATASET_PROFILES
from repro.data.semantics import SceneContent
from repro.labels import LabelSpace


@dataclass(frozen=True)
class DataItem:
    """One data item: a synthetic stand-in for an image."""

    #: Globally unique id, e.g. "mscoco2017/000042".
    item_id: str
    #: Source dataset name.
    dataset: str
    #: Index within the source dataset.
    index: int
    #: Latent ground-truth content (models read this; policies must not).
    content: SceneContent


class Dataset:
    """An ordered, immutable collection of :class:`DataItem`."""

    def __init__(self, name: str, items: Sequence[DataItem]):
        self.name = name
        self._items = tuple(items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[DataItem]:
        return iter(self._items)

    def __getitem__(self, i) -> DataItem:
        return self._items[i]

    @property
    def items(self) -> tuple[DataItem, ...]:
        return self._items

    def subset(self, indices: Sequence[int], name: str | None = None) -> "Dataset":
        """A new dataset holding the items at ``indices``."""
        picked = [self._items[i] for i in indices]
        return Dataset(name or f"{self.name}:subset", picked)

    def sample(self, n: int, seed: int = 0, name: str | None = None) -> "Dataset":
        """A uniformly sampled (without replacement) subset of size ``n``."""
        n = min(n, len(self._items))
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(self._items), size=n, replace=False)
        return self.subset(sorted(int(i) for i in idx), name=name)


def generate_dataset(
    space: LabelSpace,
    config: WorldConfig,
    dataset: str,
    n_items: int,
) -> Dataset:
    """Materialize ``n_items`` items of a dataset profile."""
    if dataset not in DATASET_PROFILES:
        raise ValueError(
            f"unknown dataset {dataset!r}; choose from {sorted(DATASET_PROFILES)}"
        )
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    generator = WorldGenerator(space, config)
    items = [
        DataItem(
            item_id=f"{dataset}/{i:06d}",
            dataset=dataset,
            index=i,
            content=generator.generate_content(dataset, i),
        )
        for i in range(n_items)
    ]
    return Dataset(dataset, items)


def train_test_split(
    dataset: Dataset, train_fraction: float = 0.2, seed: int = 0
) -> tuple[Dataset, Dataset]:
    """Split a dataset into train/test (paper's 1:4 ratio by default)."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    n = len(dataset)
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    n_train = max(1, int(round(n * train_fraction))) if n else 0
    train_idx = sorted(int(i) for i in perm[:n_train])
    test_idx = sorted(int(i) for i in perm[n_train:])
    return (
        dataset.subset(train_idx, name=f"{dataset.name}:train"),
        dataset.subset(test_idx, name=f"{dataset.name}:test"),
    )
