"""Seeded generator of latent scene content for a dataset profile.

The generator is the synthetic stand-in for "collecting images": it samples
:class:`~repro.data.semantics.SceneContent` records whose joint distribution
follows a :class:`~repro.data.profiles.DatasetProfile` and the shared
correlation structure of :mod:`repro.data.correlations`.

Determinism: every item is generated from ``(world seed, dataset name,
index)`` so datasets are reproducible item-by-item regardless of how many
items are requested.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.config import WorldConfig
from repro.data.correlations import (
    build_action_affinities,
    build_scene_affinities,
    dog_breed_weights,
    dog_object_index,
)
from repro.data.profiles import DATASET_PROFILES, DatasetProfile
from repro.data.semantics import PersonContent, SceneContent
from repro.labels import LabelSpace
from repro.vocab import TASK_ACTION, TASK_DOG, TASK_EMOTION, TASK_PLACE, TASK_POSE


def _strength(rng: np.random.Generator, mean: float, spread: float = 0.22) -> float:
    """A content strength in [0.05, 1.0] centered at ``mean``."""
    return float(np.clip(rng.normal(mean, spread), 0.05, 1.0))


class WorldGenerator:
    """Samples latent scene content for any of the five dataset profiles."""

    def __init__(self, space: LabelSpace, config: WorldConfig):
        self.space = space
        self.config = config
        self.scene_aff = build_scene_affinities(space)
        self.action_aff = build_action_affinities(space)
        self._dog_weights = dog_breed_weights(space)
        self._dog_weights = self._dog_weights / self._dog_weights.sum()
        self._dog_object = dog_object_index(space)
        self._n_places = len(space.vocabulary.labels_for(TASK_PLACE))
        self._n_actions = len(space.vocabulary.labels_for(TASK_ACTION))
        self._n_emotions = len(space.vocabulary.labels_for(TASK_EMOTION))
        self._n_keypoints = len(space.vocabulary.labels_for(TASK_POSE))
        self._n_dogs = len(space.vocabulary.labels_for(TASK_DOG))

    # -- scene sampling ------------------------------------------------------

    def _scene_weights(self, profile: DatasetProfile) -> np.ndarray:
        weights = np.ones(self._n_places, dtype=np.float64)
        weights[self.scene_aff.indoor] *= profile.indoor_bias
        weights[self.scene_aff.sport_scene] *= profile.sport_bias
        # Core (named) scenes are more frequent than synthesized tail scenes.
        weights[: min(100, self._n_places)] *= 4.0
        return weights / weights.sum()

    def _sample_person(
        self, rng: np.random.Generator, profile: DatasetProfile
    ) -> PersonContent:
        prominence = _strength(rng, 0.58, 0.22)
        face_visible = bool(rng.random() < profile.face_given_person)
        face_strength = _strength(rng, 0.66, 0.2) if face_visible else 0.0
        emotion = int(rng.integers(self._n_emotions)) if face_visible else None
        gender = int(rng.integers(2))
        # Visible keypoints: upper body is visible more often than lower.
        n_kp = self._n_keypoints
        keep_prob = np.full(n_kp, 0.75)
        if n_kp == 17:  # full COCO layout: legs are occluded more often
            keep_prob[11:] = 0.55
        visible = tuple(int(i) for i in np.nonzero(rng.random(n_kp) < keep_prob)[0])
        wrists = {9, 10} & set(visible) if n_kp == 17 else set(visible[-1:])
        hands_visible = min(2, len(wrists)) if rng.random() < 0.45 else 0
        return PersonContent(
            prominence=prominence,
            face_visible=face_visible,
            face_strength=face_strength,
            emotion=emotion,
            gender=gender,
            visible_keypoints=visible,
            hands_visible=hands_visible,
        )

    # -- item sampling ---------------------------------------------------------

    def generate_content(
        self, dataset: str, index: int, chunk_anchor: SceneContent | None = None
    ) -> SceneContent:
        """Generate the latent content of item ``index`` of ``dataset``.

        When ``chunk_anchor`` is given (chunked "video" streams), the new
        item reuses the anchor's scene and person presence with small
        perturbations, modelling intra-chunk content correlation (§I).
        """
        profile = DATASET_PROFILES[dataset]
        seed = np.random.SeedSequence(
            [self.config.seed, zlib.crc32(dataset.encode()), index]
        )
        rng = np.random.default_rng(seed)

        if chunk_anchor is None:
            scene = int(rng.choice(self._n_places, p=self._scene_weights(profile)))
            scene_strength = _strength(rng, profile.scene_strength_mean)
        else:
            scene = chunk_anchor.scene
            scene_strength = float(
                np.clip(chunk_anchor.scene_strength + rng.normal(0, 0.05), 0.05, 1.0)
            )

        # Objects, conditioned on the scene.
        affinity = self.scene_aff.object_affinity[scene]
        n_objects = int(rng.poisson(profile.mean_objects))
        objects: dict[int, float] = {}
        if chunk_anchor is not None:
            # keep ~80% of the anchor's objects, drift strengths slightly
            for obj, strength in chunk_anchor.objects.items():
                if rng.random() < 0.8:
                    objects[obj] = float(
                        np.clip(strength + rng.normal(0, 0.06), 0.05, 1.0)
                    )
            n_objects = max(0, n_objects - len(objects))
        if n_objects > 0:
            probs = affinity / affinity.sum()
            picked = rng.choice(len(affinity), size=n_objects, p=probs)
            for obj in picked:
                objects.setdefault(
                    int(obj), _strength(rng, profile.object_strength_mean)
                )

        # Persons: scene-conditional probability, profile-boosted.
        base_p = float(self.scene_aff.person_prob[scene]) * profile.person_boost
        if chunk_anchor is not None:
            has_person = chunk_anchor.has_person if rng.random() < 0.9 else (
                rng.random() < min(base_p, 0.95)
            )
        else:
            has_person = rng.random() < min(base_p, 0.95)
        persons: tuple[PersonContent, ...] = ()
        if has_person:
            n_persons = 1 + int(rng.poisson(0.7))
            persons = tuple(
                self._sample_person(rng, profile) for _ in range(min(n_persons, 5))
            )
            # Content coherence: the "person" object should then be present.
            person_obj = self._person_object_index()
            if person_obj is not None and person_obj not in objects:
                objects[person_obj] = max(p.prominence for p in persons)

        # Action: only meaningful with persons; sport scenes host sport actions.
        action: int | None = None
        action_strength = 0.0
        if persons and rng.random() < profile.action_given_person:
            weights = self.action_aff.base_weight.copy()
            if self.scene_aff.sport_scene[scene]:
                weights[self.action_aff.sport] *= 12.0
            weights /= weights.sum()
            action = int(rng.choice(self._n_actions, p=weights))
            action_strength = _strength(rng, 0.6, 0.2)

        # Dog: profile base rate, suppressed indoors, boosted if the object
        # layer already sampled a dog.
        dog_breed: int | None = None
        dog_strength = 0.0
        dog_p = profile.dog_prob * (0.5 if self.scene_aff.indoor[scene] else 1.2)
        if self._dog_object is not None and self._dog_object in objects:
            dog_p = 0.95
        if rng.random() < dog_p:
            dog_breed = int(rng.choice(self._n_dogs, p=self._dog_weights))
            dog_strength = _strength(rng, 0.7, 0.2)
            if self._dog_object is not None and self._dog_object not in objects:
                objects[self._dog_object] = dog_strength

        return SceneContent(
            scene=scene,
            scene_strength=scene_strength,
            objects=objects,
            persons=persons,
            action=action,
            action_strength=action_strength,
            dog_breed=dog_breed,
            dog_strength=dog_strength,
        )

    def _person_object_index(self) -> int | None:
        names = self.space.vocabulary.labels_for("object_detection")
        try:
            return names.index("person")
        except ValueError:  # pragma: no cover
            return None
