"""Content profiles for the five evaluation datasets (Section VI-A).

Each profile biases the latent-content generator so the synthetic datasets
differ the way the real ones do:

* **mscoco2017** — object-centric everyday scenes, many people.
* **places365** — scene-centric; people and objects are incidental.
* **mirflickr25** — social photography: people, faces, indoor venues.
* **stanford40** — human-action centric (the paper's Dataset1).
* **voc2012** — broad object categories incl. animals/vehicles (Dataset2).

The profile only shifts *distributions*; the correlation structure
(:mod:`repro.data.correlations`) is shared, which is what makes cross-dataset
agent transfer (paper §VI-D) possible yet imperfect.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DatasetProfile:
    """Knobs that shape one dataset's content distribution."""

    name: str
    #: Mean number of distinct object categories per item.
    mean_objects: float
    #: Multiplier on the scene-conditional person probability.
    person_boost: float
    #: Probability a present person has a clearly visible face.
    face_given_person: float
    #: Probability a person-bearing item has a recognizable action.
    action_given_person: float
    #: Probability an item contains a dog (before scene adjustment).
    dog_prob: float
    #: Bias towards indoor scenes (1.0 = no bias; >1 favors indoor).
    indoor_bias: float
    #: Bias towards sport scenes.
    sport_bias: float
    #: Scene recognizability: mean strength of the scene signal.
    scene_strength_mean: float
    #: Object strength: mean strength of object signals.
    object_strength_mean: float

    def __post_init__(self) -> None:
        if self.mean_objects < 0:
            raise ValueError("mean_objects must be non-negative")
        if not 0.0 <= self.face_given_person <= 1.0:
            raise ValueError("face_given_person must be in [0, 1]")
        if not 0.0 <= self.action_given_person <= 1.0:
            raise ValueError("action_given_person must be in [0, 1]")
        if not 0.0 <= self.dog_prob <= 1.0:
            raise ValueError("dog_prob must be in [0, 1]")


MSCOCO = DatasetProfile(
    name="mscoco2017",
    mean_objects=2.6,
    person_boost=1.15,
    face_given_person=0.55,
    action_given_person=0.45,
    dog_prob=0.10,
    indoor_bias=1.0,
    sport_bias=1.2,
    scene_strength_mean=0.47,
    object_strength_mean=0.66,
)

PLACES365 = DatasetProfile(
    name="places365",
    mean_objects=1.1,
    person_boost=0.7,
    face_given_person=0.40,
    action_given_person=0.30,
    dog_prob=0.04,
    indoor_bias=1.1,
    sport_bias=1.0,
    scene_strength_mean=0.80,
    object_strength_mean=0.50,
)

MIRFLICKR25 = DatasetProfile(
    name="mirflickr25",
    mean_objects=1.8,
    person_boost=1.5,
    face_given_person=0.85,
    action_given_person=0.50,
    dog_prob=0.08,
    indoor_bias=1.3,
    sport_bias=0.8,
    scene_strength_mean=0.55,
    object_strength_mean=0.58,
)

STANFORD40 = DatasetProfile(
    name="stanford40",
    mean_objects=1.6,
    person_boost=1.6,
    face_given_person=0.65,
    action_given_person=0.92,
    dog_prob=0.06,
    indoor_bias=0.9,
    sport_bias=1.5,
    scene_strength_mean=0.47,
    object_strength_mean=0.58,
)

VOC2012 = DatasetProfile(
    name="voc2012",
    mean_objects=2.2,
    person_boost=0.9,
    face_given_person=0.50,
    action_given_person=0.35,
    dog_prob=0.14,
    indoor_bias=0.85,
    sport_bias=1.0,
    scene_strength_mean=0.47,
    object_strength_mean=0.70,
)

#: All profiles, keyed by dataset name.
DATASET_PROFILES: dict[str, DatasetProfile] = {
    p.name: p for p in (MSCOCO, PLACES365, MIRFLICKR25, STANFORD40, VOC2012)
}

#: The paper's transfer-experiment aliases (§VI-D).
DATASET1 = STANFORD40.name  # Stanford40 test split
DATASET2 = VOC2012.name  # PASCAL VOC 2012 test split
