"""Latent semantic content of a synthetic data item.

A :class:`SceneContent` is the ground-truth "what is in this image" record.
Simulated models (:mod:`repro.zoo`) observe it through task-specific noisy
lenses; scheduling policies never see it directly — they only see model
outputs, exactly as in the paper.

Strengths are in ``[0, 1]`` and model confidence is derived from
``strength * model_quality + noise``, so weak content yields the
low-confidence junk outputs visible in the paper's Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PersonContent:
    """Latent attributes of one person in a scene."""

    #: How prominently the person appears (drives detector confidence).
    prominence: float
    #: Whether the face is visible (frontal enough for face tasks).
    face_visible: bool
    #: Strength of the visible face (0 when not visible).
    face_strength: float
    #: Emotion index into the emotion vocabulary (None = unreadable).
    emotion: int | None
    #: Gender index into the gender vocabulary.
    gender: int
    #: Indices of visible pose keypoints (into the pose vocabulary).
    visible_keypoints: tuple[int, ...]
    #: Number of clearly visible hands (0, 1 or 2).
    hands_visible: int

    @property
    def wrists_visible(self) -> bool:
        """True when at least one wrist keypoint is visible.

        Wrist visibility gates hand-landmark output (Table II rule).
        """
        return bool(self._wrist_ids & set(self.visible_keypoints))

    # COCO keypoint indices of left/right wrist (see vocab.POSE_KEYPOINT_NAMES)
    _wrist_ids = frozenset({9, 10})


@dataclass(frozen=True)
class SceneContent:
    """Full latent content of one data item."""

    #: Scene category index (into the place vocabulary).
    scene: int
    #: How recognizable the scene is.
    scene_strength: float
    #: Object category index -> strength, for objects present in the item.
    objects: dict[int, float] = field(default_factory=dict)
    #: People in the item (possibly empty).
    persons: tuple[PersonContent, ...] = ()
    #: Action category index (None when no recognizable action).
    action: int | None = None
    action_strength: float = 0.0
    #: Dog breed index (None when no dog is present).
    dog_breed: int | None = None
    dog_strength: float = 0.0

    @property
    def has_person(self) -> bool:
        return bool(self.persons)

    @property
    def n_visible_faces(self) -> int:
        return sum(1 for p in self.persons if p.face_visible)

    @property
    def max_person_prominence(self) -> float:
        if not self.persons:
            return 0.0
        return max(p.prominence for p in self.persons)

    def describe(self, label_space=None) -> str:
        """Human-readable one-line summary (used by example scripts)."""
        parts = [f"scene#{self.scene}({self.scene_strength:.2f})"]
        if self.objects:
            parts.append(f"{len(self.objects)} objects")
        if self.persons:
            faces = self.n_visible_faces
            parts.append(f"{len(self.persons)} persons ({faces} faces)")
        if self.action is not None:
            parts.append(f"action#{self.action}({self.action_strength:.2f})")
        if self.dog_breed is not None:
            parts.append(f"dog#{self.dog_breed}({self.dog_strength:.2f})")
        return ", ".join(parts)
