"""Data streams: i.i.d. item streams and correlated ("video") chunk streams.

The paper distinguishes two stream regimes (§I):

* uncorrelated items (random photos) — the hard case the DRL agent targets;
* chunked streams (video segments) whose items share content — where a
  simple explore–exploit policy "works extremely well".

:func:`iid_stream` yields independent items; :func:`chunked_stream` yields
items grouped into chunks whose latent content drifts around a chunk anchor.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from typing import TypeVar

import numpy as np

from repro.config import WorldConfig
from repro.data.datasets import DataItem
from repro.data.generator import WorldGenerator
from repro.labels import LabelSpace

T = TypeVar("T")


def batched(items: Iterable[T], batch_size: int) -> Iterator[list[T]]:
    """Chunk any iterable into lists of at most ``batch_size`` items.

    The workhorse of the labeling engine's streaming path: it never
    materializes the full stream, so an unbounded stream can be labeled in
    bounded memory.  The final chunk may be shorter.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    chunk: list[T] = []
    for item in items:
        chunk.append(item)
        if len(chunk) == batch_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def iid_stream(
    space: LabelSpace,
    config: WorldConfig,
    dataset: str,
    n_items: int,
    start_index: int = 0,
) -> Iterator[DataItem]:
    """Yield ``n_items`` independent items from a dataset profile."""
    generator = WorldGenerator(space, config)
    for i in range(start_index, start_index + n_items):
        yield DataItem(
            item_id=f"{dataset}/{i:06d}",
            dataset=dataset,
            index=i,
            content=generator.generate_content(dataset, i),
        )


@dataclass(frozen=True)
class ChunkedItem:
    """A stream item annotated with its chunk id and in-chunk position."""

    item: DataItem
    chunk_id: int
    position: int

    @property
    def is_chunk_start(self) -> bool:
        return self.position == 0


def chunked_stream(
    space: LabelSpace,
    config: WorldConfig,
    dataset: str,
    n_chunks: int,
    chunk_length: int,
    seed: int = 0,
) -> Iterator[ChunkedItem]:
    """Yield a correlated stream of ``n_chunks`` chunks.

    The first item of each chunk is drawn fresh from the dataset profile;
    subsequent items drift around it (same scene, mostly the same objects
    and person presence), which is the correlation structure a video
    segment exhibits.
    """
    if chunk_length < 1:
        raise ValueError("chunk_length must be >= 1")
    generator = WorldGenerator(space, config)
    rng = np.random.default_rng(seed)
    index = 0
    for chunk_id in range(n_chunks):
        anchor_index = int(rng.integers(1_000_000, 2_000_000))
        anchor = generator.generate_content(dataset, anchor_index)
        for position in range(chunk_length):
            content = (
                anchor
                if position == 0
                else generator.generate_content(
                    dataset, anchor_index + position, chunk_anchor=anchor
                )
            )
            yield ChunkedItem(
                item=DataItem(
                    item_id=f"{dataset}/chunk{chunk_id:04d}/{position:03d}",
                    dataset=dataset,
                    index=index,
                    content=content,
                ),
                chunk_id=chunk_id,
                position=position,
            )
            index += 1
