"""Crash safety for the serving tier: WAL, checkpoints, resumable runs.

The package is stdlib-only and sits below the serving layer:

* :class:`~repro.durability.journal.Journal` — append-only, CRC-guarded,
  segmented write-ahead journal of admitted ``(item, spec)`` pairs and
  their terminal outcomes (torn-tail tolerant, configurable fsync,
  rotation + watermark compaction).
* :class:`~repro.durability.checkpoint.CheckpointStore` — atomic
  completion watermarks bounding replay work.
* :class:`~repro.durability.checkpoint.RunManifest` — resume manifests
  for long batch runs (``repro.cli schedule --manifest/--resume``).
* :func:`~repro.durability.checkpoint.atomic_write_bytes` /
  :func:`~repro.durability.checkpoint.atomic_write_json` — crash-safe
  file replacement used by every writer above (and by
  :mod:`repro.persistence`).

Recovery itself lives where the futures live:
``LabelingService(journal=...)`` journals admissions and terminals, and
``service.recover()`` replays the pending gap through the single-flight
result cache.
"""

from repro.durability.checkpoint import (
    CheckpointStore,
    RunManifest,
    atomic_write_bytes,
    atomic_write_json,
)
from repro.durability.journal import (
    FSYNC_POLICIES,
    AdmittedEntry,
    Journal,
    JournalCorrupt,
    JournalStats,
)

__all__ = [
    "AdmittedEntry",
    "CheckpointStore",
    "FSYNC_POLICIES",
    "Journal",
    "JournalCorrupt",
    "JournalStats",
    "RunManifest",
    "atomic_write_bytes",
    "atomic_write_json",
]
