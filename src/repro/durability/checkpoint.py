"""Checkpointed watermarks, atomic file writes, and batch-run manifests.

Three durability primitives that bound how much work a crash can cost:

* :func:`atomic_write_bytes` / :func:`atomic_write_json` — write-to-temp
  then :func:`os.replace` in the *same* directory, with an fsync of the
  temp file before the rename.  A crash at any instant leaves either the
  old file or the new file on disk, never a torn hybrid.  Every
  durability-layer writer (checkpoints, manifests) and
  :func:`repro.persistence.save_ground_truth` go through this.
* :class:`CheckpointStore` — the journal's completion watermark.  A
  checkpoint snapshots ``(seq, pending payloads)`` at one instant; replay
  then starts from the snapshot and scans only records *after* ``seq``,
  so recovery work is bounded by the gap since the last checkpoint
  instead of the journal's lifetime, and segments whose records all
  precede the watermark are deletable (compaction).
* :class:`RunManifest` — the resume unit for long batch jobs.  A
  ``repro.cli schedule --manifest`` run records its world parameters and
  the full item list up front, then marks items done as results land
  (atomically, every ``flush_every`` completions); ``--resume`` reloads
  the manifest and schedules only the remainder, mid-trace.
"""

from __future__ import annotations

import base64
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "CheckpointStore",
    "RunManifest",
    "atomic_write_bytes",
    "atomic_write_json",
]

_MANIFEST_VERSION = 1


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Write ``data`` to ``path`` so a crash never leaves a torn file.

    The bytes land in a temp file in the target directory (same
    filesystem, so the final :func:`os.replace` is atomic), are fsynced,
    and only then renamed over the destination.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent or "."
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_json(path: str | Path, obj) -> None:
    """Atomically write ``obj`` as (sorted-key, indented) JSON."""
    atomic_write_bytes(
        path, json.dumps(obj, indent=2, sort_keys=True).encode("utf-8")
    )


@dataclass(frozen=True)
class _Checkpoint:
    """One loaded watermark: the seq it covers and the pending payloads."""

    #: Every journal record with ``seq <= seq`` is summarized here.
    seq: int
    #: seq -> raw admission payload, for admissions still unresolved at
    #: checkpoint time.
    pending: dict[int, bytes]


class CheckpointStore:
    """Atomic load/save of a journal's completion watermark.

    The file is JSON — a structure an operator can inspect — with the
    binary admission payloads base64-encoded.  Writes are atomic
    (:func:`atomic_write_json`), so the journal always finds either the
    previous checkpoint or the new one, never a torn file.
    """

    FILENAME = "checkpoint.json"

    def __init__(self, directory: str | Path):
        self.path = Path(directory) / self.FILENAME

    def load(self) -> _Checkpoint:
        """The stored watermark, or the empty one when none exists."""
        try:
            with open(self.path, "rb") as fh:
                raw = json.load(fh)
        except FileNotFoundError:
            return _Checkpoint(seq=0, pending={})
        return _Checkpoint(
            seq=int(raw["seq"]),
            pending={
                int(seq): base64.b64decode(payload)
                for seq, payload in raw.get("pending", {}).items()
            },
        )

    def save(self, seq: int, pending: dict[int, bytes]) -> None:
        atomic_write_json(
            self.path,
            {
                "seq": seq,
                "pending": {
                    str(s): base64.b64encode(payload).decode("ascii")
                    for s, payload in pending.items()
                },
            },
        )


class RunManifest:
    """Resumable record of one long batch labeling run.

    The manifest is a single JSON file: the run's parameters (whatever
    the caller passes as ``params`` — the CLI stores truth/agent paths
    and budgets), the ordered item list, and a ``completed`` map of
    item id -> result summary.  :meth:`mark_done` buffers completions
    and flushes atomically every ``flush_every`` items (and at
    :meth:`save`), so a killed run loses at most ``flush_every - 1``
    results — and never the file itself.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        params: dict | None = None,
        item_ids: list[str] | None = None,
        completed: dict[str, dict] | None = None,
        created_at: float | None = None,
        flush_every: int = 10,
    ):
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.path = Path(path)
        self.params = dict(params or {})
        self.item_ids = list(item_ids or [])
        self.completed = dict(completed or {})
        self.created_at = time.time() if created_at is None else created_at
        self.flush_every = flush_every
        self._dirty = 0

    # -- construction --------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str | Path,
        item_ids: list[str],
        params: dict | None = None,
        *,
        flush_every: int = 10,
    ) -> "RunManifest":
        """Start a fresh run: write the manifest before any work happens."""
        manifest = cls(
            path, params=params, item_ids=item_ids, flush_every=flush_every
        )
        manifest.save()
        return manifest

    @classmethod
    def load(cls, path: str | Path, *, flush_every: int = 10) -> "RunManifest":
        with open(path, "rb") as fh:
            raw = json.load(fh)
        version = int(raw.get("version", 0))
        if version != _MANIFEST_VERSION:
            raise ValueError(f"unsupported run-manifest version v{version}")
        return cls(
            path,
            params=raw.get("params", {}),
            item_ids=raw.get("item_ids", []),
            completed=raw.get("completed", {}),
            created_at=raw.get("created_at"),
            flush_every=flush_every,
        )

    # -- progress ------------------------------------------------------------

    @property
    def remaining(self) -> list[str]:
        """Item ids not yet marked done, in the run's original order."""
        return [i for i in self.item_ids if i not in self.completed]

    @property
    def done(self) -> int:
        return len(self.completed)

    def mark_done(self, item_id: str, summary: dict | None = None) -> None:
        """Record one completion; flushes every ``flush_every`` marks."""
        self.completed[item_id] = summary if summary is not None else {}
        self._dirty += 1
        if self._dirty >= self.flush_every:
            self.save()

    def save(self) -> None:
        """Atomically persist the manifest (no-op-safe to call anytime)."""
        atomic_write_json(
            self.path,
            {
                "version": _MANIFEST_VERSION,
                "created_at": self.created_at,
                "params": self.params,
                "item_ids": self.item_ids,
                "completed": self.completed,
            },
        )
        self._dirty = 0
