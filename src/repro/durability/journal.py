"""Append-only write-ahead journal for the serving tier.

The paper's guarantee is *comprehensive* labeling — every admitted item
gets its labels — but an in-memory serving tier forgets every admitted,
unfinished request the instant the process dies.  :class:`Journal` makes
admission durable: the service appends an **admission record** before a
submission's future can settle and a **terminal record** when it resolves
(completed / expired / rejected / cancelled / failed).  After a crash,
``admitted − terminal`` is exactly the work the process owes, and
:meth:`LabelingService.recover <repro.serving.service.LabelingService.recover>`
replays it through the single-flight result cache — scheduling is
deterministic over recorded truth, so a replayed request re-executes with
an identical result trace.

On-disk format (stdlib only, no dependencies):

* A journal is a **directory** of numbered segments
  (``segment-00000001.wal``, …) plus the checkpoint file maintained by
  :class:`~repro.durability.checkpoint.CheckpointStore`.
* Each record is one length-prefixed binary frame::

      [u32 body length][u32 CRC-32 of body][body]
      body = [u8 kind][u64 seq][payload bytes]

  ``seq`` is monotonically increasing across restarts and segments, so a
  terminal can reference an admission in an earlier segment and replay
  order is total.
* **Torn-tail tolerance** — a crash mid-append leaves a short or
  CRC-broken frame at the very end of the newest data.  Replay detects
  it, truncates the segment back to the last good frame, and counts it
  in :meth:`stats`; the same damage anywhere *other* than the tail is
  real corruption and raises :class:`JournalCorrupt`.
* **fsync policy** — ``"always"`` fsyncs after every append (an
  acknowledged admission survives power loss), ``"batch"`` fsyncs on
  :meth:`flush` which the service calls at micro-batch boundaries
  (bounded loss window, near-zero overhead — the benchmark gate),
  ``"none"`` leaves syncing to the OS.
* **Rotation + compaction** — appends roll to a new segment past
  ``segment_bytes``.  :meth:`checkpoint` snapshots ``(max seq, pending
  payloads)`` atomically, after which every segment whose records all
  precede the watermark carries no information the checkpoint doesn't —
  :meth:`compact` deletes them, so a long-lived journal's disk use and
  replay time are bounded by the live window, not by history.

Payloads are opaque bytes at this layer.  The admission/terminal helpers
(:meth:`log_admission` / :meth:`log_terminal`) pickle ``(item, spec,
deadline)`` tuples — journal and service share a codebase by
construction, and the frames are CRC-guarded.  Callers may also append
**custom** record kinds (``kind >= Journal.KIND_CUSTOM``); the gateway's
persistent job store rides on this.
"""

from __future__ import annotations

import io
import logging
import os
import pickle
import struct
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.durability.checkpoint import CheckpointStore

__all__ = [
    "AdmittedEntry",
    "FSYNC_POLICIES",
    "Journal",
    "JournalCorrupt",
    "JournalStats",
]

logger = logging.getLogger("repro.durability.journal")

#: Legal fsync policies, weakest to strongest guarantee.
FSYNC_POLICIES = ("none", "batch", "always")

_LENGTH = struct.Struct("!II")  # body length, crc32(body)
_BODY_HEAD = struct.Struct("!BQ")  # kind, seq
_ADMIT_REF = struct.Struct("!Q")  # terminal payload: the admission's seq
_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".wal"

#: Pickle protocol pinned so journals written by newer interpreters stay
#: readable by the oldest supported one.
_PICKLE_PROTOCOL = 4

#: Write-buffer size for the active segment.  Records are a few hundred
#: bytes; the default 8 KiB buffer turns roughly every dozenth append
#: into a write(2) on the hot path.  Durability never depends on the
#: buffer — flush()/fsync drain it at every policy boundary.
_WRITE_BUFFER = 256 << 10


class JournalCorrupt(RuntimeError):
    """A frame failed its CRC (or framing) somewhere other than the tail."""


@dataclass(frozen=True)
class AdmittedEntry:
    """One admitted-but-unresolved request recovered from the journal."""

    #: The admission record's journal sequence number.
    seq: int
    #: The submitted item, exactly as admitted.
    item: object
    #: The :class:`~repro.spec.LabelingSpec` it was admitted under.
    spec: object
    #: The admission deadline the original submit carried (seconds; replay
    #: ignores it — acknowledged work is completed, not re-expired).
    deadline: float | None


@dataclass(frozen=True)
class JournalStats:
    """Counters for the ``repro_journal_*`` metric families."""

    #: Admission records appended by this process.
    admitted: int
    #: Terminal records appended by this process, by status.
    terminals: dict
    #: Custom-kind records appended by this process.
    custom: int
    #: Bytes appended by this process.
    bytes_written: int
    #: fsync calls issued.
    fsyncs: int
    #: Admissions currently without a terminal (replayable backlog).
    pending: int
    #: Live segment files on disk.
    segments: int
    #: Checkpoints written.
    checkpoints: int
    #: Segments deleted by compaction.
    compacted: int
    #: Torn tail frames truncated during replay (crash evidence).
    torn_tails: int
    #: Records found on disk when the journal was opened.
    replayed: int


class Journal:
    """Append-only, CRC-guarded, segmented write-ahead journal.

    Opening a directory that already holds a journal **replays** it:
    the checkpoint is loaded, every segment past the watermark is
    scanned (tolerating a torn tail), and the pending admission set and
    next sequence number are rebuilt.  Thread-safe; every append is one
    short critical section.

    Parameters
    ----------
    directory:
        The journal directory (created if missing).
    fsync:
        One of :data:`FSYNC_POLICIES`; see the module docstring.
    segment_bytes:
        Rotate to a fresh segment once the current one exceeds this.
    checkpoint_every:
        Auto-checkpoint (and compact) after this many terminal records;
        ``0``/``None`` leaves checkpointing fully manual.
    """

    #: Record kinds.  Callers' custom kinds must be >= KIND_CUSTOM.
    KIND_ADMIT = 1
    KIND_TERMINAL = 2
    KIND_CUSTOM = 16

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync: str = "batch",
        segment_bytes: int = 4 << 20,
        checkpoint_every: int | None = 1024,
    ):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if segment_bytes < 256:
            raise ValueError("segment_bytes must be >= 256")
        if checkpoint_every is not None and checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_policy = fsync
        self.segment_bytes = segment_bytes
        self.checkpoint_every = checkpoint_every or 0
        self._lock = threading.RLock()
        self._store = CheckpointStore(self.directory)
        self._admitted = 0
        self._terminals: dict[str, int] = {}
        self._custom = 0
        self._bytes = 0
        self._fsyncs = 0
        self._checkpoints = 0
        self._compacted = 0
        self._torn = 0
        self._since_checkpoint = 0
        self._dirty = False
        self._closed = False
        #: seq -> raw admission payload, admissions lacking a terminal.
        self._pending: dict[int, bytes] = {}
        #: Custom-kind records found at open, for callers to replay.
        self._replayed_custom: list[tuple[int, int, bytes]] = []
        self._replayed = 0
        self._replay()

    # -- framing -------------------------------------------------------------

    @staticmethod
    def _frame(kind: int, seq: int, payload: bytes) -> bytes:
        body = _BODY_HEAD.pack(kind, seq) + payload
        return _LENGTH.pack(len(body), zlib.crc32(body)) + body

    @classmethod
    def _scan(cls, data: bytes, path: Path):
        """Yield ``(offset, kind, seq, payload)`` frames; returns clean size.

        A short or CRC-broken frame that runs to the end of ``data`` is a
        torn tail: scanning stops and the offset of the bad frame is the
        clean length.  The same damage followed by *more* bytes means the
        middle of the journal is gone — that is unrecoverable corruption.
        """
        offset = 0
        total = len(data)
        frames = []
        while offset < total:
            header_end = offset + _LENGTH.size
            if header_end > total:
                return frames, offset, True
            length, crc = _LENGTH.unpack_from(data, offset)
            body_end = header_end + length
            if length < _BODY_HEAD.size:
                raise JournalCorrupt(
                    f"{path.name}: frame at byte {offset} shorter than a "
                    f"record header"
                )
            if body_end > total:
                return frames, offset, True
            body = data[header_end:body_end]
            if zlib.crc32(body) != crc:
                if body_end == total:
                    return frames, offset, True
                raise JournalCorrupt(
                    f"{path.name}: CRC mismatch at byte {offset} with "
                    f"{total - body_end} byte(s) following — journal body "
                    f"corrupted (not a torn tail)"
                )
            kind, seq = _BODY_HEAD.unpack_from(body, 0)
            frames.append((offset, kind, seq, body[_BODY_HEAD.size :]))
            offset = body_end
        return frames, offset, False

    # -- replay --------------------------------------------------------------

    def _segment_paths(self) -> list[Path]:
        return sorted(
            p
            for p in self.directory.iterdir()
            if p.name.startswith(_SEGMENT_PREFIX)
            and p.name.endswith(_SEGMENT_SUFFIX)
        )

    @staticmethod
    def _segment_index(path: Path) -> int:
        return int(path.name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)])

    def _replay(self) -> None:
        checkpoint = self._store.load()
        self._pending = dict(checkpoint.pending)
        max_seq = checkpoint.seq
        #: segment path -> max seq it contains (compaction decisions).
        self._segment_max: dict[Path, int] = {}
        for path in self._segment_paths():
            data = path.read_bytes()
            frames, clean, torn = self._scan(data, path)
            if torn:
                self._torn += 1
                logger.warning(
                    "torn tail in %s: truncating %d byte(s) back to the "
                    "last good frame",
                    path.name,
                    len(data) - clean,
                )
                with open(path, "r+b") as fh:
                    fh.truncate(clean)
            seg_max = checkpoint.seq
            for _, kind, seq, payload in frames:
                seg_max = max(seg_max, seq)
                if seq > max_seq:
                    max_seq = seq
                self._replayed += 1
                if kind == self.KIND_ADMIT:
                    if seq > checkpoint.seq:
                        self._pending[seq] = payload
                elif kind == self.KIND_TERMINAL:
                    (admit_seq,) = _ADMIT_REF.unpack_from(payload, 0)
                    self._pending.pop(admit_seq, None)
                elif kind >= self.KIND_CUSTOM:
                    self._replayed_custom.append((seq, kind, payload))
            self._segment_max[path] = seg_max
        self._next_seq = max_seq + 1
        paths = self._segment_paths()
        if paths:
            last = paths[-1]
            self._segment_path = last
            self._segment_number = self._segment_index(last)
            self._fh: io.BufferedWriter = open(last, "ab", buffering=_WRITE_BUFFER)
            self._segment_size = last.stat().st_size
        else:
            self._segment_number = 1
            self._segment_path = self._segment_file(1)
            self._fh = open(self._segment_path, "ab", buffering=_WRITE_BUFFER)
            self._segment_max[self._segment_path] = 0
            self._segment_size = 0

    def _segment_file(self, number: int) -> Path:
        return self.directory / f"{_SEGMENT_PREFIX}{number:08d}{_SEGMENT_SUFFIX}"

    # -- appends -------------------------------------------------------------

    def _append_locked(self, kind: int, payload: bytes) -> int:
        if self._closed:
            raise ValueError("journal is closed")
        seq = self._next_seq
        self._next_seq += 1
        frame = self._frame(kind, seq, payload)
        self._fh.write(frame)
        self._bytes += len(frame)
        # Tracked instead of asking the file: tell() is an lseek(2) per
        # append, which dominates the (otherwise syscall-free) hot path.
        self._segment_size += len(frame)
        self._segment_max[self._segment_path] = seq
        if self.fsync_policy == "always":
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fsyncs += 1
        else:
            self._dirty = True
        if self._segment_size >= self.segment_bytes:
            self._rotate_locked()
        return seq

    def _rotate_locked(self) -> None:
        self._fh.flush()
        if self.fsync_policy != "none":
            os.fsync(self._fh.fileno())
            self._fsyncs += 1
            self._dirty = False
        self._fh.close()
        self._segment_number += 1
        self._segment_path = self._segment_file(self._segment_number)
        self._fh = open(self._segment_path, "ab", buffering=_WRITE_BUFFER)
        self._segment_size = 0
        self._segment_max[self._segment_path] = self._next_seq - 1
        logger.info("rotated journal to %s", self._segment_path.name)

    def append(self, kind: int, payload: bytes) -> int:
        """Append one custom record (``kind >= KIND_CUSTOM``); returns seq."""
        if kind < self.KIND_CUSTOM:
            raise ValueError(
                f"custom records must use kind >= {self.KIND_CUSTOM} "
                f"(kinds below are reserved for admissions/terminals)"
            )
        with self._lock:
            seq = self._append_locked(kind, payload)
            self._custom += 1
            return seq

    def log_admission(self, item, spec, deadline: float | None = None) -> int:
        """Journal one admitted ``(item, spec)`` pair; returns its seq.

        Called by the service *before* the request becomes completable,
        so no future can settle for work the journal does not know about.
        """
        payload = pickle.dumps((item, spec, deadline), _PICKLE_PROTOCOL)
        with self._lock:
            seq = self._append_locked(self.KIND_ADMIT, payload)
            self._pending[seq] = payload
            self._admitted += 1
            return seq

    def log_terminal(self, seq: int, status: str) -> None:
        """Journal the terminal outcome of admission ``seq``.

        ``status`` is the trace terminal stage (``completed`` /
        ``expired`` / ``rejected`` / ``cancelled`` / ``failed``).  Every
        admission with a terminal is excluded from replay; auto-
        checkpointing (``checkpoint_every``) triggers here, since
        terminals are what move the watermark.
        """
        payload = _ADMIT_REF.pack(seq) + status.encode("utf-8")
        with self._lock:
            self._append_locked(self.KIND_TERMINAL, payload)
            self._pending.pop(seq, None)
            self._terminals[status] = self._terminals.get(status, 0) + 1
            self._since_checkpoint += 1
            if self.checkpoint_every and (
                self._since_checkpoint >= self.checkpoint_every
            ):
                self._checkpoint_locked()

    # -- durability ----------------------------------------------------------

    def flush(self) -> None:
        """Push buffered appends to disk (fsync under the ``batch`` policy)."""
        with self._lock:
            if self._closed:
                return
            self._fh.flush()
            if self.fsync_policy == "batch" and self._dirty:
                os.fsync(self._fh.fileno())
                self._fsyncs += 1
                self._dirty = False

    def checkpoint(self) -> int:
        """Snapshot the watermark and compact; returns the covered seq.

        After a checkpoint at seq ``S``, replay loads the (atomic)
        snapshot and scans only records with seq > ``S`` — the recovery
        cost is the gap since this call, not the journal's history.
        """
        with self._lock:
            return self._checkpoint_locked()

    def _checkpoint_locked(self) -> int:
        # The snapshot must not claim records the OS may not have; flush
        # (and fsync under batch/always) before writing the watermark.
        self._fh.flush()
        if self.fsync_policy != "none" and self._dirty:
            os.fsync(self._fh.fileno())
            self._fsyncs += 1
            self._dirty = False
        seq = self._next_seq - 1
        self._store.save(seq, dict(self._pending))
        self._checkpoints += 1
        self._since_checkpoint = 0
        self._compact_locked(seq)
        return seq

    def _compact_locked(self, watermark: int) -> None:
        """Delete segments fully covered by the checkpoint at ``watermark``.

        A segment is deletable when every record in it has
        ``seq <= watermark``: its pending admissions live in the
        checkpoint snapshot and everything else is settled history.  The
        active segment is rotated away first if it qualifies, so the
        journal never appends to a deleted file.
        """
        for path, seg_max in list(self._segment_max.items()):
            if seg_max > watermark:
                continue
            if path == self._segment_path:
                if path.stat().st_size == 0:
                    continue  # fresh tail segment, nothing to reclaim
                self._rotate_locked()
            try:
                path.unlink()
            except FileNotFoundError:
                pass
            del self._segment_max[path]
            self._compacted += 1
            logger.info("compacted journal segment %s", path.name)

    def close(self) -> None:
        """Flush and close the active segment (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._fh.flush()
            if self.fsync_policy != "none" and self._dirty:
                os.fsync(self._fh.fileno())
                self._fsyncs += 1
                self._dirty = False
            self._fh.close()
            self._closed = True

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- recovery reads ------------------------------------------------------

    def pending_entries(self) -> list[AdmittedEntry]:
        """Decoded admissions lacking a terminal, in admission order."""
        with self._lock:
            pending = sorted(self._pending.items())
        entries = []
        for seq, payload in pending:
            item, spec, deadline = pickle.loads(payload)
            entries.append(
                AdmittedEntry(seq=seq, item=item, spec=spec, deadline=deadline)
            )
        return entries

    def replayed_custom(self, kind: int | None = None):
        """Custom records found when the journal was opened.

        Returns ``(seq, kind, payload)`` tuples in journal order,
        optionally filtered to one kind.
        """
        if kind is None:
            return list(self._replayed_custom)
        return [rec for rec in self._replayed_custom if rec[1] == kind]

    @property
    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    def stats(self) -> JournalStats:
        with self._lock:
            return JournalStats(
                admitted=self._admitted,
                terminals=dict(self._terminals),
                custom=self._custom,
                bytes_written=self._bytes,
                fsyncs=self._fsyncs,
                pending=len(self._pending),
                segments=len(self._segment_max),
                checkpoints=self._checkpoints,
                compacted=self._compacted,
                torn_tails=self._torn,
                replayed=self._replayed,
            )
