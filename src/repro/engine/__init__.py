"""Batched labeling engine with pluggable execution backends.

This subsystem turns the per-item prediction–scheduling–execution loop
into a batch/stream pipeline: the :class:`LabelingEngine` records items in
bulk, drives many items' schedules concurrently through an
:class:`ExecutionBackend`, and releases ground-truth records once results
are yielded.  The framework's public ``label``/``label_stream`` delegate
here; heavy-traffic callers can use the engine directly.
"""

from repro.engine.backends import (
    BACKEND_REGISTRY,
    BatchedBackend,
    ExecutionBackend,
    LabelingJob,
    ProcessPoolBackend,
    SerialBackend,
    ShmPayload,
    ThreadPoolBackend,
    make_backend,
    schedule_one_item,
)
from repro.engine.shm import RingSpec, SlotRing
from repro.engine.snapshot import WorldSnapshot
from repro.engine.engine import DEFAULT_BATCH_SIZE, LabelingEngine
from repro.engine.results import LabelingResult, result_from_trace
from repro.spec import LabelingSpec

__all__ = [
    "BACKEND_REGISTRY",
    "BatchedBackend",
    "DEFAULT_BATCH_SIZE",
    "ExecutionBackend",
    "LabelingEngine",
    "LabelingJob",
    "LabelingResult",
    "LabelingSpec",
    "ProcessPoolBackend",
    "RingSpec",
    "SerialBackend",
    "ShmPayload",
    "SlotRing",
    "ThreadPoolBackend",
    "WorldSnapshot",
    "make_backend",
    "result_from_trace",
    "schedule_one_item",
]
