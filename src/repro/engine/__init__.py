"""Batched labeling engine with pluggable execution backends.

This subsystem turns the per-item prediction–scheduling–execution loop
into a batch/stream pipeline: the :class:`LabelingEngine` records items in
bulk, drives many items' schedules concurrently through an
:class:`ExecutionBackend`, and releases ground-truth records once results
are yielded.  The framework's public ``label``/``label_stream`` delegate
here; heavy-traffic callers can use the engine directly.
"""

from repro.engine.backends import (
    BatchedBackend,
    ExecutionBackend,
    LabelingJob,
    ProcessPoolBackend,
    SerialBackend,
    ShmPayload,
    ThreadPoolBackend,
    schedule_one_item,
)
from repro.engine.cluster import (
    ClusterBackend,
    ClusterWorker,
    LocalWorkerFleet,
    WorkerDied,
    spawn_local_workers,
)
from repro.engine.config import (
    BACKEND_REGISTRY,
    BackendConfig,
    BatchedConfig,
    ClusterConfig,
    ProcessConfig,
    SerialConfig,
    ThreadConfig,
    make_backend,
)
from repro.engine.shm import RingSpec, SlotRing
from repro.engine.snapshot import (
    WorldSnapshot,
    capture_predictor,
    restore_predictor,
)
from repro.engine.engine import DEFAULT_BATCH_SIZE, LabelingEngine
from repro.engine.results import LabelingResult, result_from_trace
from repro.spec import LabelingSpec

__all__ = [
    "BACKEND_REGISTRY",
    "BackendConfig",
    "BatchedBackend",
    "BatchedConfig",
    "ClusterBackend",
    "ClusterConfig",
    "ClusterWorker",
    "DEFAULT_BATCH_SIZE",
    "ExecutionBackend",
    "LabelingEngine",
    "LabelingJob",
    "LabelingResult",
    "LabelingSpec",
    "LocalWorkerFleet",
    "ProcessConfig",
    "ProcessPoolBackend",
    "RingSpec",
    "SerialBackend",
    "SerialConfig",
    "ShmPayload",
    "SlotRing",
    "ThreadConfig",
    "ThreadPoolBackend",
    "WorkerDied",
    "WorldSnapshot",
    "capture_predictor",
    "make_backend",
    "restore_predictor",
    "result_from_trace",
    "schedule_one_item",
    "spawn_local_workers",
]
