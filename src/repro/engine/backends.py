"""Execution backends: how a batch of items is driven through the loop.

A backend consumes one :class:`LabelingJob` (a batch of recorded items plus
their resolved :class:`~repro.spec.LabelingSpec`) and returns one
:class:`ScheduleTrace` per item.  All backends implement the same per-item
semantics — dispatch on :attr:`LabelingSpec.regime` — and must produce
traces identical to :class:`SerialBackend`, the single-item reference:

* :class:`SerialBackend` — one item at a time, exactly the pre-engine code
  path; the parity baseline.
* :class:`BatchedBackend` — vectorized: all in-flight items advance in
  lock-step rounds, with **one** stacked Q-network forward pass per round
  across the whole batch, in *every* regime — unconstrained, deadline,
  and deadline+memory all delegate to their scheduler's
  ``schedule_batch`` dispatch tick.  Selection per item replays the
  serial rule (masked ``argmax`` with first-index tie-breaking), so
  traces stay identical while network cost is amortized over the batch.
  Caveat: the stacked ``(B, n)`` forward and the serial ``(1, n)``
  forward may differ in the last ULP on some BLAS builds, so exact
  parity additionally assumes no two candidate Q values sit within that
  rounding distance — vanishingly rare with continuous weights, and
  enforced empirically by the parity tests on seeded worlds.
* :class:`ThreadPoolBackend` — per-item scheduling fanned out over a thread
  pool, for custom predictors without a batch path.  The GIL caps it near
  one core: scheduling is CPU-bound pure Python with small numpy calls,
  so threads interleave instead of running in parallel.
* :class:`ProcessPoolBackend` — scheduling sharded into chunks over a
  persistent :class:`~concurrent.futures.ProcessPoolExecutor`.  A
  picklable :class:`~repro.engine.snapshot.WorldSnapshot` (zoo build
  parameters, recorded item shards, agent ``state_dict``) ships **once per
  worker** through the pool initializer and is reused across jobs; chunks
  of later jobs carry only the records the snapshot lacks.  Workers run
  the vectorized tick per chunk by default, chunk payloads travel through
  :mod:`repro.engine.shm` ring buffers instead of pickle where they fit,
  and chunk sizes adapt online toward a target chunk latency.  This is
  the backend that actually scales CPU-bound scheduling past one core.

Q-network inference is stateless (``train=False`` forwards cache nothing)
and ground-truth records are only read during scheduling, which is what
makes the thread backend safe without locks.
"""

from __future__ import annotations

import logging
import math
import multiprocessing
import os
import threading
import time
from collections import Counter
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.engine.shm import (
    RingSpec,
    SlotRing,
    decode_records,
    decode_traces,
    encode_records,
    encode_traces,
)
from repro.engine.snapshot import WorldSnapshot
from repro.scheduling.base import (
    ScheduleTrace,
    run_ordering_policy,
)
from repro.scheduling.deadline import CostQGreedyScheduler
from repro.scheduling.deadline_memory import MemoryDeadlineScheduler
from repro.scheduling.qgreedy import QGreedyPolicy, QValuePredictor
from repro.spec import LabelingSpec, validate_constraints  # noqa: F401 — re-export
from repro.zoo.oracle import GroundTruth, ItemRecord

logger = logging.getLogger("repro.engine.backends")


@dataclass(frozen=True)
class LabelingJob:
    """One batch of already-recorded items plus their resolved spec."""

    truth: GroundTruth
    item_ids: tuple[str, ...]
    spec: LabelingSpec = LabelingSpec()

    def __post_init__(self):
        if not isinstance(self.spec, LabelingSpec):
            raise TypeError(
                f"spec must be a LabelingSpec, got {type(self.spec).__name__}"
            )
        missing = [i for i in self.item_ids if i not in self.truth]
        if missing:
            raise KeyError(f"items not recorded in ground truth: {missing[:3]}")

    # Convenience views so backends read constraints without spelling
    # ``job.spec.`` everywhere.
    @property
    def deadline(self) -> float | None:
        return self.spec.deadline

    @property
    def memory_budget(self) -> float | None:
        return self.spec.memory_budget

    @property
    def max_models(self) -> int | None:
        return self.spec.max_models


class ExecutionBackend:
    """Interface: drive one job's items through the scheduling loop."""

    #: Registry name, set by subclasses.
    name = "backend"

    def run(
        self, job: LabelingJob, predictor: QValuePredictor
    ) -> list[ScheduleTrace]:
        """One trace per job item, aligned with ``job.item_ids``."""
        raise NotImplementedError

    def close(self) -> None:
        """Release backend-held resources (worker pools); default no-op.

        Lifecycle owners (the CLI, the serving tier, benchmarks) call
        this unconditionally when they are done with a backend they
        constructed.
        """

    def refresh(self, predictor: QValuePredictor) -> None:
        """Adopt retrained predictor weights for subsequent jobs.

        In-process backends receive the predictor per :meth:`run` call,
        so the default is a no-op.  Backends that hold worker-side
        copies of the world override this: the process pool drops its
        pool (the next job re-ships a fresh snapshot), the cluster
        backend hot-swaps weights fleet-wide with a control message.
        """


def schedule_one_item(
    job: LabelingJob, predictor: QValuePredictor, item_id: str
) -> ScheduleTrace:
    """The per-item regime dispatch every backend must reproduce."""
    spec = job.spec
    regime = spec.regime
    if regime == "deadline_memory":
        return MemoryDeadlineScheduler(predictor).schedule(
            job.truth, item_id, spec.deadline, spec.memory_budget
        )
    if regime == "deadline":
        return CostQGreedyScheduler(predictor).schedule(
            job.truth, item_id, spec.deadline
        )
    return run_ordering_policy(
        QGreedyPolicy(predictor), job.truth, item_id, max_models=spec.max_models
    )


class SerialBackend(ExecutionBackend):
    """Reference semantics: items one at a time, one forward per step."""

    name = "serial"

    def run(
        self, job: LabelingJob, predictor: QValuePredictor
    ) -> list[ScheduleTrace]:
        return [
            schedule_one_item(job, predictor, item_id) for item_id in job.item_ids
        ]


class BatchedBackend(ExecutionBackend):
    """Vectorized lock-step rounds with one stacked forward per round.

    Every regime delegates to its scheduler's ``schedule_batch`` dispatch
    tick: round ``k`` of the batch corresponds to step ``k`` of each
    serial run (one selection per item per round; for deadline+memory,
    one pivot wave plus one completion per round), so the observations
    stacked for the round are the very states the serial loop would have
    predicted on.  Selection is a masked argmax over the
    ``(B, n_models)`` score matrix — identical elementwise math and
    first-index tie-breaking as the serial subset argmax, hence
    per-item trace parity with :class:`SerialBackend` (see the module
    docstring for the stacked-forward ULP caveat).  Items leave the
    batch when their serial stop condition fires (budget exhausted, all
    models run, ``max_models`` hit).
    """

    name = "batched"

    def run(
        self, job: LabelingJob, predictor: QValuePredictor
    ) -> list[ScheduleTrace]:
        regime = job.spec.regime
        if regime == "deadline_memory":
            return MemoryDeadlineScheduler(predictor).schedule_batch(
                job.truth, job.item_ids, job.deadline, job.memory_budget
            )
        if regime == "deadline":
            return CostQGreedyScheduler(predictor).schedule_batch(
                job.truth, job.item_ids, job.deadline
            )
        return QGreedyPolicy(predictor).schedule_batch(
            job.truth, job.item_ids, max_models=job.max_models
        )


class ThreadPoolBackend(ExecutionBackend):
    """Per-item scheduling fanned out over a thread pool.

    Items are independent, model outputs are pre-recorded, and inference
    forwards are stateless, so per-item runs are pure reads over shared
    structures — results are deterministic and input-ordered regardless of
    thread interleaving.
    """

    name = "thread"

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers

    def run(
        self, job: LabelingJob, predictor: QValuePredictor
    ) -> list[ScheduleTrace]:
        if len(job.item_ids) <= 1:
            return SerialBackend().run(job, predictor)
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            return list(
                pool.map(
                    lambda item_id: schedule_one_item(job, predictor, item_id),
                    job.item_ids,
                )
            )


@dataclass(frozen=True)
class ShmPayload:
    """Descriptor of bytes parked in a shared-memory ring slot.

    Crosses the process pipe *instead of* the payload it describes: the
    receiver reads the slot in place.  The parent frees both kinds —
    delta slots (which it allocated) once the chunk's future resolves,
    result slots (worker-allocated) right after decoding; releasing is a
    single byte store, safe from any process.
    """

    slot: int
    length: int


#: Module-level worker state: (truth, predictor) restored from the snapshot
#: by the pool initializer, reused for every chunk the worker runs.
_WORKER_WORLD: tuple[GroundTruth, QValuePredictor] | None = None
#: (delta ring, result ring) attached by the initializer; None => pickle.
_WORKER_RINGS: tuple[SlotRing, SlotRing] | None = None
#: Cross-process lock serializing result-slot acquisition among workers.
_WORKER_RESULT_LOCK = None
#: Whether chunks run the vectorized dispatch tick or the serial loop.
_WORKER_VECTORIZED: bool = True


def _process_worker_init(
    snapshot: WorldSnapshot,
    vectorized: bool = True,
    delta_spec: RingSpec | None = None,
    result_spec: RingSpec | None = None,
    result_lock=None,
) -> None:
    """Pool initializer: restore the world once per worker process."""
    global _WORKER_WORLD, _WORKER_RINGS, _WORKER_RESULT_LOCK, _WORKER_VECTORIZED
    _WORKER_WORLD = snapshot.restore()
    _WORKER_VECTORIZED = vectorized
    _WORKER_RESULT_LOCK = result_lock
    if delta_spec is not None and result_spec is not None:
        _WORKER_RINGS = (delta_spec.attach(), result_spec.attach())
    else:
        _WORKER_RINGS = None


def _process_worker_chunk(
    item_ids: tuple[str, ...],
    extras: tuple[ItemRecord, ...] | ShmPayload,
    spec: LabelingSpec,
) -> tuple[int, list[ScheduleTrace] | ShmPayload, float]:
    """Schedule one chunk inside a worker; returns (pid, payload, seconds).

    ``extras`` carries the records the worker's snapshot lacks — items
    recorded by the parent after the snapshot was captured — either as
    pickled :class:`ItemRecord` tuples or as a :class:`ShmPayload`
    pointing at bytes the parent wrote into the delta ring (decoded
    zero-copy; the parent holds that slot until this chunk's future
    resolves).  Records are adopted for this chunk and released
    afterwards so long-lived workers stay bounded at snapshot size.
    Traces return through the result ring whenever they fit a slot,
    falling back to pickle otherwise; the elapsed wall seconds feed the
    parent's adaptive chunk sizing.
    """
    started = time.perf_counter()
    if _WORKER_WORLD is None:  # pragma: no cover — initializer always ran
        raise RuntimeError("worker initialized without a world snapshot")
    truth, predictor = _WORKER_WORLD
    if isinstance(extras, ShmPayload):
        delta_ring, _ = _WORKER_RINGS
        records: tuple[ItemRecord, ...] | list[ItemRecord] = decode_records(
            delta_ring.view(extras.slot, extras.length), truth.zoo
        )
    else:
        records = extras
    added = truth.adopt(records)
    try:
        job = LabelingJob(truth=truth, item_ids=tuple(item_ids), spec=spec)
        backend = BatchedBackend() if _WORKER_VECTORIZED else SerialBackend()
        traces = backend.run(job, predictor)
    finally:
        truth.release_many(added)
    payload: list[ScheduleTrace] | ShmPayload = traces
    if _WORKER_RINGS is not None:
        _, result_ring = _WORKER_RINGS
        encoded = encode_traces(traces)
        if len(encoded) <= result_ring.slot_bytes:
            with _WORKER_RESULT_LOCK:
                slot = result_ring.acquire()
            if slot is not None:
                result_ring.write(slot, encoded)
                payload = ShmPayload(slot, len(encoded))
    return os.getpid(), payload, time.perf_counter() - started


class ProcessPoolBackend(ExecutionBackend):
    """Per-item scheduling sharded over worker *processes* — escapes the GIL.

    The first :meth:`run` captures a :class:`WorldSnapshot` from the job's
    truth and predictor and spawns a persistent pool whose initializer
    restores the snapshot once per worker.  Later jobs against the same
    world (same zoo and predictor objects, same config) reuse the live
    pool; only records the snapshot lacks are pickled, per chunk, as small
    deltas.  Scheduling is deterministic per item and chunks are
    reassembled in input order, so traces are identical to
    :class:`SerialBackend` for every ``max_workers``/``chunk_size``
    combination — the same parity contract the thread/batched backends
    honor (enforced by the parity tests and the scaling benchmark).

    A chunk that raises (a poisoned item, a predictor bug) fails this
    :meth:`run` with the worker's exception while the pool stays alive for
    the next job; a worker that *dies* raises
    :class:`~concurrent.futures.process.BrokenProcessPool`, after which
    the pool is discarded and the next job respawns it.

    Thread-safe: the serving tier's worker threads may call :meth:`run`
    concurrently (pool submission is locked only around lifecycle).

    Parameters
    ----------
    max_workers:
        Worker process count (default: ``os.cpu_count()``).
    chunk_size:
        Items per worker task.  Default shards the job evenly across
        workers (``ceil(n_items / max_workers)``) unless
        ``target_chunk_s`` takes over; smaller chunks trade per-chunk
        overhead for better balance on skewed items.
    mp_context:
        Optional :mod:`multiprocessing` context overriding the
        platform-default start method.  The serving tier spawns this pool
        lazily from a worker *thread*; ``fork`` (the Linux default before
        Python 3.14) is fast and keeps stdin/REPL callers working, and
        CPython/OpenBLAS register at-fork handlers for their own locks,
        but callers that hit fork-alongside-threads issues with other
        native libraries should pass
        ``multiprocessing.get_context("forkserver")`` (workers then
        re-import ``__main__``, so scripts need the usual
        ``if __name__ == "__main__"`` guard).
    vectorized:
        Workers run the :class:`BatchedBackend` dispatch tick per chunk
        (default) — one stacked forward per round across the chunk —
        instead of the per-item :class:`SerialBackend` loop.  Traces are
        identical either way; ``False`` exists as the measurable
        baseline for the dispatch-throughput benchmark.
    transport:
        ``"shm"`` (default) parks chunk deltas and returned traces in
        :mod:`repro.engine.shm` ring buffers, sending only tiny slot
        descriptors through the pipe; any payload that cannot take the
        fast path — a custom :class:`ItemRecord` subclass, a payload
        larger than ``slot_bytes``, a momentarily full ring — falls back
        to pickle for that chunk.  ``"pickle"`` disables the rings.
    target_chunk_s:
        Optional adaptive chunk sizing: when set (and ``chunk_size`` is
        not), chunk sizes are resized online toward this many seconds of
        worker wall time per chunk, using an EWMA of worker-reported
        per-item scheduling time (see :attr:`chunk_stats`).  Stragglers
        shrink toward responsive chunks; trivially fast items coalesce
        into fewer, larger chunks.  Never exceeds the even
        ``ceil(n_items / max_workers)`` shard.
    ring_slots / slot_bytes:
        Geometry of each shared-memory ring (default: ``4x max_workers``
        slots of 1 MiB).  Oversized or overflow payloads fall back to
        pickle, so undersizing costs speed, never correctness.
    """

    name = "process"

    #: EWMA smoothing for worker-reported per-item scheduling seconds.
    EWMA_ALPHA = 0.3

    def __init__(
        self,
        max_workers: int | None = None,
        chunk_size: int | None = None,
        mp_context=None,
        vectorized: bool = True,
        transport: str = "shm",
        target_chunk_s: float | None = None,
        ring_slots: int | None = None,
        slot_bytes: int = 1 << 20,
    ):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if transport not in ("shm", "pickle"):
            raise ValueError(
                f"transport must be 'shm' or 'pickle', got {transport!r}"
            )
        if target_chunk_s is not None and target_chunk_s <= 0:
            raise ValueError("target_chunk_s must be positive")
        if ring_slots is not None and ring_slots < 1:
            raise ValueError("ring_slots must be >= 1")
        if slot_bytes < 1:
            raise ValueError("slot_bytes must be >= 1")
        self.max_workers = max_workers or os.cpu_count() or 1
        self.chunk_size = chunk_size
        self.mp_context = mp_context
        self.vectorized = vectorized
        self.transport = transport
        self.target_chunk_s = target_chunk_s
        self.ring_slots = ring_slots or 4 * self.max_workers
        self.slot_bytes = slot_bytes
        self._lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None
        #: Strong refs backing the identity key so ids cannot be recycled.
        self._world: tuple | None = None
        self._world_key: tuple | None = None
        #: Ids whose records shipped with the snapshot (never re-shipped).
        self._shipped_ids: frozenset[str] = frozenset()
        self._dispatch: Counter = Counter()
        #: Jobs currently inside run(); guards world switches (see
        #: :meth:`_ensure_pool`).
        self._active = 0
        #: Parent-written delta ring / worker-written result ring.
        self._delta_ring: SlotRing | None = None
        self._result_ring: SlotRing | None = None
        #: Serializes delta-slot acquisition among parent threads.
        self._delta_lock = threading.Lock()
        #: Per-chunk timing telemetry driving adaptive sizing.
        self._chunk_count = 0
        self._chunk_items = 0
        self._chunk_seconds = 0.0
        self._ewma_item_s: float | None = None
        self._last_chunk_size: int | None = None
        #: Fast-path vs fallback counts per payload direction.
        self._transport_counts: Counter = Counter()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down (idempotent; respawns on next run)."""
        with self._lock:
            self._close_locked()

    def _close_locked(self) -> None:
        if self._pool is not None:
            if getattr(self._pool, "_broken", False):
                # A worker died mid-job.  CPython's terminate_broken can
                # race a worker that was still spawning when the pool
                # broke: it never receives SIGTERM or an exit sentinel
                # and the manager thread joins it forever (easy to hit
                # under the slow-booting spawn start method).  By the
                # time close() runs no submits are in flight, so the
                # process table is stable — kill every straggler before
                # joining the executor.
                for process in list(
                    getattr(self._pool, "_processes", None) or {}
                ):
                    worker = self._pool._processes.get(process)
                    if worker is not None and worker.is_alive():
                        worker.kill()
            self._pool.shutdown(wait=True, cancel_futures=True)
        self._pool = None
        self._world = None
        self._world_key = None
        self._shipped_ids = frozenset()
        # Rings outlive the pool shutdown (workers hold attachments until
        # they exit), then the parent unlinks the segments.
        for ring in (self._delta_ring, self._result_ring):
            if ring is not None:
                ring.close()
                ring.unlink()
        self._delta_ring = None
        self._result_ring = None

    def __enter__(self) -> "ProcessPoolBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def refresh(self, predictor: QValuePredictor) -> None:
        """Drop the pool so the next job ships a snapshot of ``predictor``.

        Workers restore the world once at pool spawn, so new weights
        mean a new snapshot; closing is how this backend invalidates.
        (The cluster backend does the same hot-swap without a respawn.)
        """
        self.close()

    @property
    def dispatch_counts(self) -> dict[int, int]:
        """Items scheduled per worker pid, cumulative across jobs."""
        with self._lock:
            return dict(self._dispatch)

    @property
    def chunk_stats(self) -> dict:
        """Per-chunk timing/transport telemetry, cumulative across jobs.

        ``ewma_item_s`` is the smoothed worker-side per-item scheduling
        time driving ``target_chunk_s`` sizing; ``last_chunk_size`` is
        the size the most recent job sharded with; ``transport`` counts
        fast-path vs fallback payloads by direction (``delta_shm`` /
        ``delta_pickle`` / ``result_shm`` / ``result_pickle``).
        """
        with self._lock:
            return {
                "chunks": self._chunk_count,
                "items": self._chunk_items,
                "seconds": self._chunk_seconds,
                "ewma_item_s": self._ewma_item_s,
                "last_chunk_size": self._last_chunk_size,
                "transport": dict(self._transport_counts),
            }

    # -- internals -----------------------------------------------------------

    def _ensure_pool(
        self, truth: GroundTruth, predictor: QValuePredictor
    ) -> tuple[ProcessPoolExecutor, frozenset[str]]:
        """The live pool for this world, (re)spawning when the world changed.

        The key is object identity of the zoo and predictor plus the world
        config: the engine holds both for its lifetime, so steady-state
        serving reuses one pool across every batch, including batches
        labeled against fresh ephemeral truths (same zoo, new records —
        those travel as chunk deltas).

        The backend is *world-affine*: switching worlds (a new predictor,
        a different zoo) tears the pool down and re-ships a snapshot, so
        it is only allowed while no other job is in flight — concurrent
        jobs from different worlds would cancel each other's chunks and
        thrash respawns, and raise instead.  Callers juggling several
        worlds concurrently should give each its own backend.
        """
        key = (id(truth.zoo), id(predictor), truth.config)
        with self._lock:
            if self._pool is not None and self._world_key == key:
                self._active += 1
                return self._pool, self._shipped_ids
            if self._active > 0:
                raise RuntimeError(
                    "ProcessPoolBackend is world-affine: cannot switch to a "
                    "different zoo/predictor while another job is in flight; "
                    "use one backend per world for concurrent use"
                )
            self._close_locked()
            snapshot = WorldSnapshot.capture(truth, predictor)
            initargs: tuple = (snapshot, self.vectorized, None, None, None)
            if self.transport == "shm":
                self._delta_ring = SlotRing.create(self.ring_slots, self.slot_bytes)
                self._result_ring = SlotRing.create(self.ring_slots, self.slot_bytes)
                ctx = self.mp_context or multiprocessing.get_context()
                initargs = (
                    snapshot,
                    self.vectorized,
                    self._delta_ring.spec,
                    self._result_ring.spec,
                    ctx.Lock(),
                )
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=self.mp_context,
                initializer=_process_worker_init,
                initargs=initargs,
            )
            self._world = (truth.zoo, predictor)
            self._world_key = key
            self._shipped_ids = snapshot.item_ids
            self._active += 1
            return self._pool, self._shipped_ids

    def _chunks(self, item_ids: tuple[str, ...]) -> list[tuple[str, ...]]:
        size = self.chunk_size
        if size is None:
            even = max(1, math.ceil(len(item_ids) / self.max_workers))
            size = even
            if self.target_chunk_s is not None and self._ewma_item_s:
                size = max(
                    1, min(even, round(self.target_chunk_s / self._ewma_item_s))
                )
        self._last_chunk_size = size
        return [
            item_ids[start : start + size] for start in range(0, len(item_ids), size)
        ]

    def _ship_extras(
        self, extras: tuple[ItemRecord, ...]
    ) -> tuple[tuple[ItemRecord, ...] | ShmPayload, int | None]:
        """Park extras in the delta ring; (payload, held slot or None).

        Returns the pickled tuple unchanged (slot ``None``) when the shm
        fast path does not apply: no rings, a non-conforming record, a
        payload larger than a slot, or a momentarily full ring.
        """
        if not extras:
            return extras, None
        if self._delta_ring is None:
            if self.transport == "shm":  # pool alive but rings torn down
                with self._lock:
                    self._transport_counts["delta_pickle"] += 1
            return extras, None
        encoded = encode_records(list(extras))
        if encoded is None or len(encoded) > self._delta_ring.slot_bytes:
            if encoded is not None:
                logger.debug(
                    "delta payload (%d bytes) exceeds shm slot (%d bytes); "
                    "falling back to pickle",
                    len(encoded),
                    self._delta_ring.slot_bytes,
                )
            with self._lock:
                self._transport_counts["delta_pickle"] += 1
            return extras, None
        with self._delta_lock:
            slot = self._delta_ring.acquire()
        if slot is None:
            logger.debug(
                "delta ring momentarily full; falling back to pickle"
            )
            with self._lock:
                self._transport_counts["delta_pickle"] += 1
            return extras, None
        self._delta_ring.write(slot, encoded)
        with self._lock:
            self._transport_counts["delta_shm"] += 1
        return ShmPayload(slot, len(encoded)), slot

    def _receive_traces(
        self,
        payload: list[ScheduleTrace] | ShmPayload,
        chunk: tuple[str, ...],
        truth: GroundTruth,
    ) -> list[ScheduleTrace]:
        """Decode a chunk's traces, freeing its result slot if it used one."""
        if isinstance(payload, ShmPayload):
            ring = self._result_ring
            try:
                traces = decode_traces(
                    ring.view(payload.slot, payload.length),
                    list(chunk),
                    truth.zoo.names,
                )
            finally:
                ring.release(payload.slot)
            with self._lock:
                self._transport_counts["result_shm"] += 1
            return traces
        if self.transport == "shm":
            with self._lock:
                self._transport_counts["result_pickle"] += 1
        return payload

    def _observe_chunk(self, items: int, seconds: float) -> None:
        """Fold one worker-reported chunk timing into the EWMA (locked)."""
        self._chunk_count += 1
        self._chunk_items += items
        self._chunk_seconds += seconds
        per_item = seconds / max(items, 1)
        if self._ewma_item_s is None:
            self._ewma_item_s = per_item
        else:
            self._ewma_item_s += self.EWMA_ALPHA * (per_item - self._ewma_item_s)

    def run(
        self, job: LabelingJob, predictor: QValuePredictor
    ) -> list[ScheduleTrace]:
        if len(job.item_ids) <= 1:
            # Not worth a pool round-trip; still counted (under the parent
            # pid) so per-worker telemetry accounts for every item.
            with self._lock:
                self._dispatch[os.getpid()] += len(job.item_ids)
            return SerialBackend().run(job, predictor)
        pool, shipped = self._ensure_pool(job.truth, predictor)
        #: Delta slots still held on behalf of unresolved chunk futures.
        pending_slots: dict = {}
        try:
            futures = []
            for chunk in self._chunks(job.item_ids):
                extras = tuple(
                    job.truth.record(item_id)
                    for item_id in chunk
                    if item_id not in shipped
                )
                payload, slot = self._ship_extras(extras)
                future = pool.submit(_process_worker_chunk, chunk, payload, job.spec)
                if slot is not None:
                    pending_slots[future] = slot
                futures.append((future, chunk))
            traces: list[ScheduleTrace] = []
            try:
                for future, chunk in futures:
                    pid, payload, seconds = future.result()
                    slot = pending_slots.pop(future, None)
                    if slot is not None and self._delta_ring is not None:
                        self._delta_ring.release(slot)
                    chunk_traces = self._receive_traces(payload, chunk, job.truth)
                    with self._lock:
                        self._dispatch[pid] += len(chunk_traces)
                        self._observe_chunk(len(chunk), seconds)
                    traces.extend(chunk_traces)
            except BrokenProcessPool:
                # A worker died mid-chunk; the pool is unusable.  Drop it
                # so the next job respawns cleanly (rings included), then
                # surface the failure.
                logger.warning(
                    "process pool broke mid-job (%d items); closing it so "
                    "the next job respawns workers",
                    len(job.item_ids),
                )
                self.close()
                raise
            except BaseException:
                for future, _ in futures:
                    future.cancel()
                raise
            return traces
        finally:
            if self._delta_ring is not None:
                for slot in pending_slots.values():
                    self._delta_ring.release(slot)
            with self._lock:
                self._active -= 1


# BACKEND_REGISTRY and make_backend live in repro.engine.config: the
# registry maps names to (backend, typed config) pairs and resolution is
# validated eagerly there.  Re-exported from repro.engine for callers.
