"""Execution backends: how a batch of items is driven through the loop.

A backend consumes one :class:`LabelingJob` (a batch of recorded items plus
their resolved :class:`~repro.spec.LabelingSpec`) and returns one
:class:`ScheduleTrace` per item.  All backends implement the same per-item
semantics — dispatch on :attr:`LabelingSpec.regime` — and must produce
traces identical to :class:`SerialBackend`, the single-item reference:

* :class:`SerialBackend` — one item at a time, exactly the pre-engine code
  path; the parity baseline.
* :class:`BatchedBackend` — vectorized: all in-flight items advance in
  lock-step rounds, with **one** stacked Q-network forward pass per round
  across the whole batch.  Selection per item replays the serial rule
  (``argmax`` with first-index tie-breaking), so traces stay identical
  while network cost is amortized over the batch.  Caveat: the stacked
  ``(B, n)`` forward and the serial ``(1, n)`` forward may differ in the
  last ULP on some BLAS builds, so exact parity additionally assumes no
  two candidate Q values sit within that rounding distance — vanishingly
  rare with continuous weights, and enforced empirically by the parity
  tests on seeded worlds.
* :class:`ThreadPoolBackend` — per-item scheduling fanned out over a thread
  pool, for regimes that do not vectorize (the event-driven deadline+memory
  packing of Algorithm 2, custom predictors without a batch path).  The GIL
  caps it near one core: scheduling is CPU-bound pure Python with small
  numpy calls, so threads interleave instead of running in parallel.
* :class:`ProcessPoolBackend` — per-item scheduling sharded into chunks
  over a persistent :class:`~concurrent.futures.ProcessPoolExecutor`.  A
  picklable :class:`~repro.engine.snapshot.WorldSnapshot` (zoo build
  parameters, recorded item shards, agent ``state_dict``) ships **once per
  worker** through the pool initializer and is reused across jobs; chunks
  of later jobs carry only the records the snapshot lacks.  This is the
  backend that actually scales CPU-bound scheduling past one core.

Q-network inference is stateless (``train=False`` forwards cache nothing)
and ground-truth records are only read during scheduling, which is what
makes the thread backend safe without locks.
"""

from __future__ import annotations

import math
import os
import threading
from collections import Counter
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

import numpy as np

from repro.core.state import LabelingState
from repro.engine.snapshot import WorldSnapshot
from repro.scheduling.base import (
    TOLERANCE,
    ScheduleTrace,
    execute_serially,
    run_ordering_policy,
)
from repro.scheduling.deadline import CostQGreedyScheduler
from repro.scheduling.deadline_memory import MemoryDeadlineScheduler
from repro.scheduling.qgreedy import QGreedyPolicy, QValuePredictor
from repro.spec import LabelingSpec, validate_constraints  # noqa: F401 — re-export
from repro.zoo.oracle import GroundTruth, ItemRecord


@dataclass(frozen=True)
class LabelingJob:
    """One batch of already-recorded items plus their resolved spec."""

    truth: GroundTruth
    item_ids: tuple[str, ...]
    spec: LabelingSpec = LabelingSpec()

    def __post_init__(self):
        if not isinstance(self.spec, LabelingSpec):
            raise TypeError(
                f"spec must be a LabelingSpec, got {type(self.spec).__name__}"
            )
        missing = [i for i in self.item_ids if i not in self.truth]
        if missing:
            raise KeyError(f"items not recorded in ground truth: {missing[:3]}")

    # Convenience views so backends read constraints without spelling
    # ``job.spec.`` everywhere.
    @property
    def deadline(self) -> float | None:
        return self.spec.deadline

    @property
    def memory_budget(self) -> float | None:
        return self.spec.memory_budget

    @property
    def max_models(self) -> int | None:
        return self.spec.max_models


class ExecutionBackend:
    """Interface: drive one job's items through the scheduling loop."""

    #: Registry name, set by subclasses.
    name = "backend"

    def run(
        self, job: LabelingJob, predictor: QValuePredictor
    ) -> list[ScheduleTrace]:
        """One trace per job item, aligned with ``job.item_ids``."""
        raise NotImplementedError

    def close(self) -> None:
        """Release backend-held resources (worker pools); default no-op.

        Lifecycle owners (the CLI, the serving tier, benchmarks) call
        this unconditionally when they are done with a backend they
        constructed.
        """


def schedule_one_item(
    job: LabelingJob, predictor: QValuePredictor, item_id: str
) -> ScheduleTrace:
    """The per-item regime dispatch every backend must reproduce."""
    spec = job.spec
    regime = spec.regime
    if regime == "deadline_memory":
        return MemoryDeadlineScheduler(predictor).schedule(
            job.truth, item_id, spec.deadline, spec.memory_budget
        )
    if regime == "deadline":
        return CostQGreedyScheduler(predictor).schedule(
            job.truth, item_id, spec.deadline
        )
    return run_ordering_policy(
        QGreedyPolicy(predictor), job.truth, item_id, max_models=spec.max_models
    )


class SerialBackend(ExecutionBackend):
    """Reference semantics: items one at a time, one forward per step."""

    name = "serial"

    def run(
        self, job: LabelingJob, predictor: QValuePredictor
    ) -> list[ScheduleTrace]:
        return [
            schedule_one_item(job, predictor, item_id) for item_id in job.item_ids
        ]


class BatchedBackend(ExecutionBackend):
    """Vectorized lock-step rounds with one stacked forward per round.

    Each round, every in-flight item executes exactly one model, so round
    ``k`` of the batch corresponds to step ``k`` of each serial run — the
    observations stacked for the round are the very states the serial loop
    would have predicted on.  Items leave the batch when their serial stop
    condition fires (budget exhausted, all models run, ``max_models`` hit).

    The deadline+memory regime is event-driven (items advance on model
    *completions*, not rounds) and falls back to per-item scheduling.
    """

    name = "batched"

    def run(
        self, job: LabelingJob, predictor: QValuePredictor
    ) -> list[ScheduleTrace]:
        regime = job.spec.regime
        if regime == "deadline_memory":
            return SerialBackend().run(job, predictor)
        if regime == "deadline":
            return self._run_deadline(job, predictor)
        return self._run_unconstrained(job, predictor)

    @staticmethod
    def _fresh(
        job: LabelingJob,
    ) -> tuple[list[LabelingState], list[ScheduleTrace], list[float]]:
        states = [LabelingState(job.truth, iid) for iid in job.item_ids]
        traces = [
            ScheduleTrace(item_id=iid, total_value=job.truth.total_value(iid))
            for iid in job.item_ids
        ]
        clocks = [0.0] * len(states)
        return states, traces, clocks

    def _run_unconstrained(
        self, job: LabelingJob, predictor: QValuePredictor
    ) -> list[ScheduleTrace]:
        truth = job.truth
        limit = job.max_models if job.max_models is not None else len(truth.zoo)
        states, traces, clocks = self._fresh(job)
        active = [i for i, s in enumerate(states) if not s.all_executed]
        rounds = 0
        while active and rounds < limit:
            q_batch = predictor.predict_batch([states[i] for i in active])
            still_active = []
            for row, i in enumerate(active):
                state = states[i]
                remaining = state.remaining
                # Same selection as QGreedyPolicy.next_model.
                index = int(remaining[np.argmax(q_batch[row][remaining])])
                clocks[i] = execute_serially(state, traces[i], truth, index, clocks[i])
                if not state.all_executed:
                    still_active.append(i)
            active = still_active
            rounds += 1
        return traces

    def _run_deadline(
        self, job: LabelingJob, predictor: QValuePredictor
    ) -> list[ScheduleTrace]:
        truth = job.truth
        times = truth.zoo.times
        states, traces, clocks = self._fresh(job)
        budgets = [float(job.deadline)] * len(states)
        active = [
            i
            for i, s in enumerate(states)
            if budgets[i] > 0 and not s.all_executed
        ]
        while active:
            q_batch = predictor.predict_batch([states[i] for i in active])
            still_active = []
            for row, i in enumerate(active):
                state = states[i]
                remaining = state.remaining
                # Same affordability filter and ratio rule as Algorithm 1.
                affordable = remaining[times[remaining] <= budgets[i] + TOLERANCE]
                if len(affordable) == 0:
                    continue
                q = q_batch[row]
                ratios = q[affordable] / times[affordable]
                best = int(affordable[np.argmax(ratios)])
                clocks[i] = execute_serially(state, traces[i], truth, best, clocks[i])
                budgets[i] -= float(times[best])
                if budgets[i] > 0 and not state.all_executed:
                    still_active.append(i)
            active = still_active
        return traces


class ThreadPoolBackend(ExecutionBackend):
    """Per-item scheduling fanned out over a thread pool.

    Items are independent, model outputs are pre-recorded, and inference
    forwards are stateless, so per-item runs are pure reads over shared
    structures — results are deterministic and input-ordered regardless of
    thread interleaving.
    """

    name = "thread"

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers

    def run(
        self, job: LabelingJob, predictor: QValuePredictor
    ) -> list[ScheduleTrace]:
        if len(job.item_ids) <= 1:
            return SerialBackend().run(job, predictor)
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            return list(
                pool.map(
                    lambda item_id: schedule_one_item(job, predictor, item_id),
                    job.item_ids,
                )
            )


#: Module-level worker state: (truth, predictor) restored from the snapshot
#: by the pool initializer, reused for every chunk the worker runs.
_WORKER_WORLD: tuple[GroundTruth, QValuePredictor] | None = None


def _process_worker_init(snapshot: WorldSnapshot) -> None:
    """Pool initializer: restore the world once per worker process."""
    global _WORKER_WORLD
    _WORKER_WORLD = snapshot.restore()


def _process_worker_chunk(
    item_ids: tuple[str, ...],
    extra_records: tuple[ItemRecord, ...],
    spec: LabelingSpec,
) -> tuple[int, list[ScheduleTrace]]:
    """Schedule one chunk inside a worker; returns (worker pid, traces).

    ``extra_records`` are items recorded by the parent after the snapshot
    was captured; they are adopted for this chunk and released afterwards
    so long-lived workers stay bounded at snapshot size.
    """
    if _WORKER_WORLD is None:  # pragma: no cover — initializer always ran
        raise RuntimeError("worker initialized without a world snapshot")
    truth, predictor = _WORKER_WORLD
    added = truth.adopt(extra_records)
    try:
        job = LabelingJob(truth=truth, item_ids=tuple(item_ids), spec=spec)
        traces = [schedule_one_item(job, predictor, item_id) for item_id in item_ids]
    finally:
        truth.release_many(added)
    return os.getpid(), traces


class ProcessPoolBackend(ExecutionBackend):
    """Per-item scheduling sharded over worker *processes* — escapes the GIL.

    The first :meth:`run` captures a :class:`WorldSnapshot` from the job's
    truth and predictor and spawns a persistent pool whose initializer
    restores the snapshot once per worker.  Later jobs against the same
    world (same zoo and predictor objects, same config) reuse the live
    pool; only records the snapshot lacks are pickled, per chunk, as small
    deltas.  Scheduling is deterministic per item and chunks are
    reassembled in input order, so traces are identical to
    :class:`SerialBackend` for every ``max_workers``/``chunk_size``
    combination — the same parity contract the thread/batched backends
    honor (enforced by the parity tests and the scaling benchmark).

    A chunk that raises (a poisoned item, a predictor bug) fails this
    :meth:`run` with the worker's exception while the pool stays alive for
    the next job; a worker that *dies* raises
    :class:`~concurrent.futures.process.BrokenProcessPool`, after which
    the pool is discarded and the next job respawns it.

    Thread-safe: the serving tier's worker threads may call :meth:`run`
    concurrently (pool submission is locked only around lifecycle).

    Parameters
    ----------
    max_workers:
        Worker process count (default: ``os.cpu_count()``).
    chunk_size:
        Items per worker task.  Default shards the job evenly across
        workers (``ceil(n_items / max_workers)``); smaller chunks trade
        pickling overhead for better balance on skewed items.
    mp_context:
        Optional :mod:`multiprocessing` context overriding the
        platform-default start method.  The serving tier spawns this pool
        lazily from a worker *thread*; ``fork`` (the Linux default before
        Python 3.14) is fast and keeps stdin/REPL callers working, and
        CPython/OpenBLAS register at-fork handlers for their own locks,
        but callers that hit fork-alongside-threads issues with other
        native libraries should pass
        ``multiprocessing.get_context("forkserver")`` (workers then
        re-import ``__main__``, so scripts need the usual
        ``if __name__ == "__main__"`` guard).
    """

    name = "process"

    def __init__(
        self,
        max_workers: int | None = None,
        chunk_size: int | None = None,
        mp_context=None,
    ):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.max_workers = max_workers or os.cpu_count() or 1
        self.chunk_size = chunk_size
        self.mp_context = mp_context
        self._lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None
        #: Strong refs backing the identity key so ids cannot be recycled.
        self._world: tuple | None = None
        self._world_key: tuple | None = None
        #: Ids whose records shipped with the snapshot (never re-pickled).
        self._shipped_ids: frozenset[str] = frozenset()
        self._dispatch: Counter = Counter()
        #: Jobs currently inside run(); guards world switches (see
        #: :meth:`_ensure_pool`).
        self._active = 0

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down (idempotent; respawns on next run)."""
        with self._lock:
            self._close_locked()

    def _close_locked(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
        self._pool = None
        self._world = None
        self._world_key = None
        self._shipped_ids = frozenset()

    def __enter__(self) -> "ProcessPoolBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def dispatch_counts(self) -> dict[int, int]:
        """Items scheduled per worker pid, cumulative across jobs."""
        with self._lock:
            return dict(self._dispatch)

    # -- internals -----------------------------------------------------------

    def _ensure_pool(
        self, truth: GroundTruth, predictor: QValuePredictor
    ) -> tuple[ProcessPoolExecutor, frozenset[str]]:
        """The live pool for this world, (re)spawning when the world changed.

        The key is object identity of the zoo and predictor plus the world
        config: the engine holds both for its lifetime, so steady-state
        serving reuses one pool across every batch, including batches
        labeled against fresh ephemeral truths (same zoo, new records —
        those travel as chunk deltas).

        The backend is *world-affine*: switching worlds (a new predictor,
        a different zoo) tears the pool down and re-ships a snapshot, so
        it is only allowed while no other job is in flight — concurrent
        jobs from different worlds would cancel each other's chunks and
        thrash respawns, and raise instead.  Callers juggling several
        worlds concurrently should give each its own backend.
        """
        key = (id(truth.zoo), id(predictor), truth.config)
        with self._lock:
            if self._pool is not None and self._world_key == key:
                self._active += 1
                return self._pool, self._shipped_ids
            if self._active > 0:
                raise RuntimeError(
                    "ProcessPoolBackend is world-affine: cannot switch to a "
                    "different zoo/predictor while another job is in flight; "
                    "use one backend per world for concurrent use"
                )
            self._close_locked()
            snapshot = WorldSnapshot.capture(truth, predictor)
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=self.mp_context,
                initializer=_process_worker_init,
                initargs=(snapshot,),
            )
            self._world = (truth.zoo, predictor)
            self._world_key = key
            self._shipped_ids = snapshot.item_ids
            self._active += 1
            return self._pool, self._shipped_ids

    def _chunks(self, item_ids: tuple[str, ...]) -> list[tuple[str, ...]]:
        size = self.chunk_size or max(1, math.ceil(len(item_ids) / self.max_workers))
        return [
            item_ids[start : start + size] for start in range(0, len(item_ids), size)
        ]

    def run(
        self, job: LabelingJob, predictor: QValuePredictor
    ) -> list[ScheduleTrace]:
        if len(job.item_ids) <= 1:
            # Not worth a pool round-trip; still counted (under the parent
            # pid) so per-worker telemetry accounts for every item.
            with self._lock:
                self._dispatch[os.getpid()] += len(job.item_ids)
            return SerialBackend().run(job, predictor)
        pool, shipped = self._ensure_pool(job.truth, predictor)
        try:
            futures = []
            for chunk in self._chunks(job.item_ids):
                extras = tuple(
                    job.truth.record(item_id)
                    for item_id in chunk
                    if item_id not in shipped
                )
                futures.append(
                    pool.submit(_process_worker_chunk, chunk, extras, job.spec)
                )
            traces: list[ScheduleTrace] = []
            try:
                for future in futures:
                    pid, chunk_traces = future.result()
                    with self._lock:
                        self._dispatch[pid] += len(chunk_traces)
                    traces.extend(chunk_traces)
            except BrokenProcessPool:
                # A worker died mid-chunk; the pool is unusable.  Drop it
                # so the next job respawns cleanly, then surface the
                # failure.
                self.close()
                raise
            except BaseException:
                for future in futures:
                    future.cancel()
                raise
            return traces
        finally:
            with self._lock:
                self._active -= 1


#: Name -> backend class, for config/CLI-driven construction.
BACKEND_REGISTRY: dict[str, type[ExecutionBackend]] = {
    cls.name: cls
    for cls in (SerialBackend, BatchedBackend, ThreadPoolBackend, ProcessPoolBackend)
}


def make_backend(backend: str | ExecutionBackend, **kwargs) -> ExecutionBackend:
    """Resolve a backend instance from a registry name (pass-through if
    already constructed)."""
    if isinstance(backend, ExecutionBackend):
        return backend
    try:
        cls = BACKEND_REGISTRY[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {sorted(BACKEND_REGISTRY)}"
        ) from None
    return cls(**kwargs)
