"""Execution backends: how a batch of items is driven through the loop.

A backend consumes one :class:`LabelingJob` (a batch of recorded items plus
their resolved :class:`~repro.spec.LabelingSpec`) and returns one
:class:`ScheduleTrace` per item.  All backends implement the same per-item
semantics — dispatch on :attr:`LabelingSpec.regime` — and must produce
traces identical to :class:`SerialBackend`, the single-item reference:

* :class:`SerialBackend` — one item at a time, exactly the pre-engine code
  path; the parity baseline.
* :class:`BatchedBackend` — vectorized: all in-flight items advance in
  lock-step rounds, with **one** stacked Q-network forward pass per round
  across the whole batch.  Selection per item replays the serial rule
  (``argmax`` with first-index tie-breaking), so traces stay identical
  while network cost is amortized over the batch.  Caveat: the stacked
  ``(B, n)`` forward and the serial ``(1, n)`` forward may differ in the
  last ULP on some BLAS builds, so exact parity additionally assumes no
  two candidate Q values sit within that rounding distance — vanishingly
  rare with continuous weights, and enforced empirically by the parity
  tests on seeded worlds.
* :class:`ThreadPoolBackend` — per-item scheduling fanned out over a thread
  pool, for regimes that do not vectorize (the event-driven deadline+memory
  packing of Algorithm 2, custom predictors without a batch path).

Q-network inference is stateless (``train=False`` forwards cache nothing)
and ground-truth records are only read during scheduling, which is what
makes the thread backend safe without locks.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.state import LabelingState
from repro.scheduling.base import (
    TOLERANCE,
    ScheduleTrace,
    execute_serially,
    run_ordering_policy,
)
from repro.scheduling.deadline import CostQGreedyScheduler
from repro.scheduling.deadline_memory import MemoryDeadlineScheduler
from repro.scheduling.qgreedy import QGreedyPolicy, QValuePredictor
from repro.spec import LabelingSpec, validate_constraints  # noqa: F401 — re-export
from repro.zoo.oracle import GroundTruth


@dataclass(frozen=True)
class LabelingJob:
    """One batch of already-recorded items plus their resolved spec."""

    truth: GroundTruth
    item_ids: tuple[str, ...]
    spec: LabelingSpec = LabelingSpec()

    def __post_init__(self):
        if not isinstance(self.spec, LabelingSpec):
            raise TypeError(
                f"spec must be a LabelingSpec, got {type(self.spec).__name__}"
            )
        missing = [i for i in self.item_ids if i not in self.truth]
        if missing:
            raise KeyError(f"items not recorded in ground truth: {missing[:3]}")

    # Convenience views so backends read constraints without spelling
    # ``job.spec.`` everywhere.
    @property
    def deadline(self) -> float | None:
        return self.spec.deadline

    @property
    def memory_budget(self) -> float | None:
        return self.spec.memory_budget

    @property
    def max_models(self) -> int | None:
        return self.spec.max_models


class ExecutionBackend:
    """Interface: drive one job's items through the scheduling loop."""

    #: Registry name, set by subclasses.
    name = "backend"

    def run(
        self, job: LabelingJob, predictor: QValuePredictor
    ) -> list[ScheduleTrace]:
        """One trace per job item, aligned with ``job.item_ids``."""
        raise NotImplementedError


def schedule_one_item(
    job: LabelingJob, predictor: QValuePredictor, item_id: str
) -> ScheduleTrace:
    """The per-item regime dispatch every backend must reproduce."""
    spec = job.spec
    regime = spec.regime
    if regime == "deadline_memory":
        return MemoryDeadlineScheduler(predictor).schedule(
            job.truth, item_id, spec.deadline, spec.memory_budget
        )
    if regime == "deadline":
        return CostQGreedyScheduler(predictor).schedule(
            job.truth, item_id, spec.deadline
        )
    return run_ordering_policy(
        QGreedyPolicy(predictor), job.truth, item_id, max_models=spec.max_models
    )


class SerialBackend(ExecutionBackend):
    """Reference semantics: items one at a time, one forward per step."""

    name = "serial"

    def run(
        self, job: LabelingJob, predictor: QValuePredictor
    ) -> list[ScheduleTrace]:
        return [
            schedule_one_item(job, predictor, item_id) for item_id in job.item_ids
        ]


class BatchedBackend(ExecutionBackend):
    """Vectorized lock-step rounds with one stacked forward per round.

    Each round, every in-flight item executes exactly one model, so round
    ``k`` of the batch corresponds to step ``k`` of each serial run — the
    observations stacked for the round are the very states the serial loop
    would have predicted on.  Items leave the batch when their serial stop
    condition fires (budget exhausted, all models run, ``max_models`` hit).

    The deadline+memory regime is event-driven (items advance on model
    *completions*, not rounds) and falls back to per-item scheduling.
    """

    name = "batched"

    def run(
        self, job: LabelingJob, predictor: QValuePredictor
    ) -> list[ScheduleTrace]:
        regime = job.spec.regime
        if regime == "deadline_memory":
            return SerialBackend().run(job, predictor)
        if regime == "deadline":
            return self._run_deadline(job, predictor)
        return self._run_unconstrained(job, predictor)

    @staticmethod
    def _fresh(
        job: LabelingJob,
    ) -> tuple[list[LabelingState], list[ScheduleTrace], list[float]]:
        states = [LabelingState(job.truth, iid) for iid in job.item_ids]
        traces = [
            ScheduleTrace(item_id=iid, total_value=job.truth.total_value(iid))
            for iid in job.item_ids
        ]
        clocks = [0.0] * len(states)
        return states, traces, clocks

    def _run_unconstrained(
        self, job: LabelingJob, predictor: QValuePredictor
    ) -> list[ScheduleTrace]:
        truth = job.truth
        limit = job.max_models if job.max_models is not None else len(truth.zoo)
        states, traces, clocks = self._fresh(job)
        active = [i for i, s in enumerate(states) if not s.all_executed]
        rounds = 0
        while active and rounds < limit:
            q_batch = predictor.predict_batch([states[i] for i in active])
            still_active = []
            for row, i in enumerate(active):
                state = states[i]
                remaining = state.remaining
                # Same selection as QGreedyPolicy.next_model.
                index = int(remaining[np.argmax(q_batch[row][remaining])])
                clocks[i] = execute_serially(state, traces[i], truth, index, clocks[i])
                if not state.all_executed:
                    still_active.append(i)
            active = still_active
            rounds += 1
        return traces

    def _run_deadline(
        self, job: LabelingJob, predictor: QValuePredictor
    ) -> list[ScheduleTrace]:
        truth = job.truth
        times = truth.zoo.times
        states, traces, clocks = self._fresh(job)
        budgets = [float(job.deadline)] * len(states)
        active = [
            i
            for i, s in enumerate(states)
            if budgets[i] > 0 and not s.all_executed
        ]
        while active:
            q_batch = predictor.predict_batch([states[i] for i in active])
            still_active = []
            for row, i in enumerate(active):
                state = states[i]
                remaining = state.remaining
                # Same affordability filter and ratio rule as Algorithm 1.
                affordable = remaining[times[remaining] <= budgets[i] + TOLERANCE]
                if len(affordable) == 0:
                    continue
                q = q_batch[row]
                ratios = q[affordable] / times[affordable]
                best = int(affordable[np.argmax(ratios)])
                clocks[i] = execute_serially(state, traces[i], truth, best, clocks[i])
                budgets[i] -= float(times[best])
                if budgets[i] > 0 and not state.all_executed:
                    still_active.append(i)
            active = still_active
        return traces


class ThreadPoolBackend(ExecutionBackend):
    """Per-item scheduling fanned out over a thread pool.

    Items are independent, model outputs are pre-recorded, and inference
    forwards are stateless, so per-item runs are pure reads over shared
    structures — results are deterministic and input-ordered regardless of
    thread interleaving.
    """

    name = "thread"

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers

    def run(
        self, job: LabelingJob, predictor: QValuePredictor
    ) -> list[ScheduleTrace]:
        if len(job.item_ids) <= 1:
            return SerialBackend().run(job, predictor)
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            return list(
                pool.map(
                    lambda item_id: schedule_one_item(job, predictor, item_id),
                    job.item_ids,
                )
            )


#: Name -> backend class, for config/CLI-driven construction.
BACKEND_REGISTRY: dict[str, type[ExecutionBackend]] = {
    cls.name: cls
    for cls in (SerialBackend, BatchedBackend, ThreadPoolBackend)
}


def make_backend(backend: str | ExecutionBackend, **kwargs) -> ExecutionBackend:
    """Resolve a backend instance from a registry name (pass-through if
    already constructed)."""
    if isinstance(backend, ExecutionBackend):
        return backend
    try:
        cls = BACKEND_REGISTRY[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {sorted(BACKEND_REGISTRY)}"
        ) from None
    return cls(**kwargs)
