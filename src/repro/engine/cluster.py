"""Cluster backend: shard the scheduling world across socket workers.

:class:`ProcessPoolBackend` escapes the GIL but not the box — every
worker is a child of one machine.  This module generalizes its
snapshot/delta protocol over stdlib TCP sockets so scheduling work can
leave the host:

* :class:`ClusterWorker` — a worker process (or host) serving a
  length-prefixed frame protocol on a socket.  A dispatcher connection
  first ships a :class:`~repro.engine.snapshot.WorldSnapshot` (shipped
  **once** per worker connection), then streams chunk requests carrying
  only the records the snapshot lacks; the worker schedules each chunk
  with the vectorized dispatch tick and streams trace shards back.
  Payloads reuse the :mod:`repro.engine.shm` fixed-dtype codecs — the
  same compact layout that backs the shared-memory rings, here framed
  over the wire — with pickle as the correctness fallback.
* :class:`ClusterBackend` (registry ``"cluster"``) — the dispatcher.
  Chunks are assigned to workers by **consistent hashing** (an md5 hash
  ring with virtual nodes), so a worker's death moves only *its* chunks
  to the survivors: in-flight chunks on a dead socket are re-dispatched
  and the job completes with a byte-identical trace (the
  ``BrokenProcessPool`` respawn logic, generalized to partial failure).
  A dead worker that comes back is re-connected on the next job and
  receives a fresh snapshot.  ``refresh(predictor)`` hot-swaps agent
  weights fleet-wide with one small control frame per worker — no
  reconnect, no snapshot re-ship — which is the hook an online-learning
  loop needs.
* :func:`spawn_local_workers` / :class:`LocalWorkerFleet` — a loopback
  fleet of worker *processes* for single-host scaling, tests, and the
  CLI's ``--workers N`` form.

Scheduling is deterministic per item and chunks are reassembled in input
order, so traces are identical to :class:`SerialBackend` for every
worker count, chunk size, and failure interleaving — the same parity
contract every other backend honors.

Wire format: each frame is ``!IBq`` (payload length, kind, request id)
followed by the payload.  Requests are SNAPSHOT / CHUNK / REFRESH;
replies are OK / RESULT / ERROR and echo the request id, so a dispatcher
may pipeline many chunks down one connection and match replies as they
arrive.
"""

from __future__ import annotations

import bisect
import hashlib
import logging
import math
import multiprocessing
import os
import pickle
import random
import socket
import struct
import threading
import time
from collections import Counter
from concurrent.futures import Future
from dataclasses import replace

from repro.engine.backends import (
    BatchedBackend,
    ExecutionBackend,
    LabelingJob,
    SerialBackend,
)
from repro.engine.shm import (
    decode_records,
    decode_traces,
    encode_records,
    encode_traces,
)
from repro.engine.snapshot import (
    WorldSnapshot,
    capture_predictor,
    restore_predictor,
)
from repro.scheduling.base import ScheduleTrace
from repro.scheduling.qgreedy import QValuePredictor
from repro.zoo.oracle import GroundTruth, ItemRecord

logger = logging.getLogger("repro.engine.cluster")

__all__ = [
    "ClusterBackend",
    "ClusterWorker",
    "HashRing",
    "LocalWorkerFleet",
    "WorkerDied",
    "spawn_local_workers",
]

# -- frame protocol ----------------------------------------------------------

#: Frame header: payload length (u32), frame kind (u8), request id (i64).
_HEADER = struct.Struct("!IBq")

MSG_SNAPSHOT = 1  #: pickle((WorldSnapshot, vectorized)) -> OK
MSG_CHUNK = 2  #: pickle((item_ids, spec, extras_kind, extras)) -> RESULT
MSG_REFRESH = 3  #: pickle(predictor payload tuple) -> OK
REPLY_OK = 0x80
REPLY_RESULT = 0x82
REPLY_ERROR = 0x83  #: pickle(exception)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    data = bytearray()
    while len(data) < n:
        chunk = sock.recv(n - len(data))
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        data += chunk
    return bytes(data)


def _send_frame(sock: socket.socket, kind: int, req_id: int, body: bytes) -> None:
    sock.sendall(_HEADER.pack(len(body), kind, req_id) + body)


def _recv_frame(sock: socket.socket) -> tuple[int, int, bytes]:
    length, kind, req_id = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    return kind, req_id, _recv_exact(sock, length)


def _parse_address(address: str) -> tuple[str, int]:
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(f"worker address must be 'host:port', got {address!r}")
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(
            f"worker address must be 'host:port', got {address!r}"
        ) from None


class WorkerDied(ConnectionError):
    """A cluster worker's connection failed with requests outstanding."""

    def __init__(self, address: str, reason: str = ""):
        detail = f": {reason}" if reason else ""
        super().__init__(f"cluster worker {address} died{detail}")
        self.address = address


# -- consistent hashing ------------------------------------------------------


class HashRing:
    """Consistent hash ring with virtual nodes.

    Each node is placed at ``replicas`` md5-derived points on a ring;
    a key maps to the first node clockwise from its own hash.  Removing
    a node (via ``exclude``) reassigns only the keys that mapped to it —
    every other key keeps its worker, which is what keeps re-dispatch
    traffic proportional to the failure, not the job.
    """

    def __init__(self, nodes: tuple[str, ...], replicas: int = 32):
        if not nodes:
            raise ValueError("HashRing needs at least one node")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        points = []
        for node in nodes:
            for i in range(replicas):
                digest = hashlib.md5(f"{node}#{i}".encode()).digest()
                points.append((int.from_bytes(digest[:8], "big"), node))
        points.sort()
        self._points = points
        self._hashes = [point for point, _ in points]
        self.nodes = tuple(dict.fromkeys(nodes))

    def lookup(self, key: str, exclude: frozenset[str] | set[str] = frozenset()):
        """The live node owning ``key``; walks past excluded nodes."""
        digest = hashlib.md5(str(key).encode()).digest()
        start = bisect.bisect(self._hashes, int.from_bytes(digest[:8], "big"))
        n = len(self._points)
        for step in range(n):
            _, node = self._points[(start + step) % n]
            if node not in exclude:
                return node
        raise RuntimeError("no live cluster workers left on the hash ring")


# -- worker ------------------------------------------------------------------


class _ConnectionState:
    """Per-connection world: each dispatcher ships its own snapshot."""

    __slots__ = ("truth", "predictor", "vectorized")

    def __init__(self):
        self.truth: GroundTruth | None = None
        self.predictor: QValuePredictor | None = None
        self.vectorized = True


class ClusterWorker:
    """Serve scheduling chunks over a socket; one world per connection.

    ``delay_per_item`` adds a per-item sleep after each chunk's
    scheduling pass — a stand-in for model-execution latency (GPU
    inference, remote model APIs) used by the scaling benchmark to
    demonstrate dispatch overlap on hosts with fewer cores than workers.
    It never affects traces.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        delay_per_item: float = 0.0,
    ):
        if delay_per_item < 0:
            raise ValueError("delay_per_item must be >= 0")
        self._server = socket.create_server((host, port))
        self.host = host
        self.port = self._server.getsockname()[1]
        self.delay_per_item = delay_per_item
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Accept dispatcher connections until :meth:`stop` (blocking)."""
        self._server.settimeout(0.5)
        try:
            while not self._stop.is_set():
                try:
                    conn, _ = self._server.accept()
                except TimeoutError:
                    continue
                except OSError:
                    break
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                threading.Thread(
                    target=self._serve_connection,
                    args=(conn,),
                    daemon=True,
                    name=f"cluster-worker-conn-{self.port}",
                ).start()
        finally:
            self._server.close()

    def serve_background(self) -> "ClusterWorker":
        """Run the accept loop in a daemon thread (in-process tests)."""
        self._thread = threading.Thread(
            target=self.serve_forever,
            daemon=True,
            name=f"cluster-worker-{self.port}",
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    # -- frame handling ------------------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        state = _ConnectionState()
        with conn:
            while not self._stop.is_set():
                try:
                    kind, req_id, body = _recv_frame(conn)
                except (ConnectionError, OSError):
                    return
                try:
                    reply_kind, reply_body = self._handle(state, kind, body)
                except Exception as exc:
                    reply_kind = REPLY_ERROR
                    try:
                        reply_body = pickle.dumps(exc)
                    except Exception:
                        reply_body = pickle.dumps(RuntimeError(repr(exc)))
                try:
                    _send_frame(conn, reply_kind, req_id, reply_body)
                except (ConnectionError, OSError):
                    return

    def _handle(
        self, state: _ConnectionState, kind: int, body: bytes
    ) -> tuple[int, bytes]:
        if kind == MSG_SNAPSHOT:
            snapshot, vectorized = pickle.loads(body)
            state.truth, state.predictor = snapshot.restore()
            state.vectorized = vectorized
            return REPLY_OK, b""
        if kind == MSG_REFRESH:
            if state.truth is None:
                raise RuntimeError("refresh before a snapshot was shipped")
            state.predictor = restore_predictor(pickle.loads(body), state.truth)
            return REPLY_OK, b""
        if kind == MSG_CHUNK:
            return REPLY_RESULT, self._run_chunk(state, body)
        raise ValueError(f"unknown frame kind {kind:#x}")

    def _run_chunk(self, state: _ConnectionState, body: bytes) -> bytes:
        if state.truth is None or state.predictor is None:
            raise RuntimeError("chunk received before a snapshot was shipped")
        item_ids, spec, extras_kind, extras = pickle.loads(body)
        truth = state.truth
        if extras_kind == "codec":
            records: list[ItemRecord] | tuple[ItemRecord, ...] = decode_records(
                extras, truth.zoo
            )
        else:
            records = extras
        started = time.perf_counter()
        added = truth.adopt(records)
        try:
            job = LabelingJob(truth=truth, item_ids=tuple(item_ids), spec=spec)
            backend = BatchedBackend() if state.vectorized else SerialBackend()
            traces = backend.run(job, state.predictor)
        finally:
            truth.release_many(added)
        if self.delay_per_item:
            time.sleep(self.delay_per_item * len(item_ids))
        seconds = time.perf_counter() - started
        try:
            payload: tuple[str, object] = ("codec", encode_traces(traces))
        except Exception:  # non-conforming trace subclass: pickle wins
            payload = ("pickle", traces)
        return pickle.dumps((*payload, seconds, os.getpid()))


# -- dispatcher link ---------------------------------------------------------


class _Link:
    """One dispatcher->worker connection with pipelined request framing.

    A daemon reader thread resolves reply futures by request id; socket
    failure (EOF, reset) fails every outstanding future with
    :class:`WorkerDied` so the backend can re-dispatch those chunks.
    """

    def __init__(self, address: str, timeout: float):
        self.address = address
        host, port = _parse_address(address)
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.settimeout(None)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._lock = threading.RLock()
        self._pending: dict[int, Future] = {}
        self._next_id = 0
        self.dead = False
        self._reader = threading.Thread(
            target=self._read_loop, daemon=True, name=f"cluster-link-{address}"
        )
        self._reader.start()

    def request(self, kind: int, body: bytes) -> Future:
        """Send one frame; the returned future resolves to (kind, body)."""
        future: Future = Future()
        with self._lock:
            if self.dead:
                raise WorkerDied(self.address)
            req_id = self._next_id
            self._next_id += 1
            self._pending[req_id] = future
            try:
                _send_frame(self._sock, kind, req_id, body)
            except OSError as exc:
                self._pending.pop(req_id, None)
                self._fail(exc)
                raise WorkerDied(self.address, repr(exc)) from exc
        return future

    def call(self, kind: int, body: bytes) -> tuple[int, bytes]:
        """Synchronous request; raises the worker's exception on ERROR."""
        return self.request(kind, body).result()

    def _read_loop(self) -> None:
        try:
            while True:
                kind, req_id, body = _recv_frame(self._sock)
                with self._lock:
                    future = self._pending.pop(req_id, None)
                if future is None:
                    continue
                if kind == REPLY_ERROR:
                    try:
                        exc = pickle.loads(body)
                    except Exception:
                        exc = RuntimeError("worker error (undecodable payload)")
                    future.set_exception(exc)
                else:
                    future.set_result((kind, body))
        except (ConnectionError, OSError) as exc:
            self._fail(exc)

    def _fail(self, exc: BaseException) -> None:
        with self._lock:
            if self.dead:
                return
            self.dead = True
            pending, self._pending = self._pending, {}
        for future in pending.values():
            future.set_exception(WorkerDied(self.address, repr(exc)))
        try:
            self._sock.close()
        except OSError:
            pass

    def close(self) -> None:
        self._fail(ConnectionError("link closed"))


# -- local worker fleet ------------------------------------------------------


def _local_worker_main(host, port, conn, delay_per_item) -> None:
    """Worker-process entry point (module-level: spawn-context safe)."""
    worker = ClusterWorker(host, port, delay_per_item=delay_per_item)
    conn.send(worker.port)
    conn.close()
    worker.serve_forever()


def _spawn_one(ctx, host: str, port: int, delay_per_item: float):
    parent, child = ctx.Pipe()
    process = ctx.Process(
        target=_local_worker_main,
        args=(host, port, child, delay_per_item),
        daemon=True,
    )
    process.start()
    child.close()
    if not parent.poll(30):
        process.kill()
        raise RuntimeError(f"cluster worker on {host}:{port} failed to bind")
    bound = parent.recv()
    parent.close()
    return process, bound


class LocalWorkerFleet:
    """A set of loopback :class:`ClusterWorker` processes with fixed ports.

    ``kill(i)`` SIGKILLs a worker (chaos testing); ``restart(i)``
    respawns it on the *same* port so a dispatcher's configured address
    list stays valid across the death.
    """

    def __init__(self, processes, ports, host, ctx, delay_per_item):
        self._processes = processes
        self._ports = ports
        self._host = host
        self._ctx = ctx
        self._delay = delay_per_item

    @property
    def addresses(self) -> tuple[str, ...]:
        return tuple(f"{self._host}:{port}" for port in self._ports)

    def kill(self, index: int) -> None:
        process = self._processes[index]
        process.kill()
        process.join(timeout=10)

    def restart(self, index: int) -> None:
        self.kill(index)
        process, _ = _spawn_one(
            self._ctx, self._host, self._ports[index], self._delay
        )
        self._processes[index] = process

    def close(self) -> None:
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.kill()
                process.join(timeout=10)

    def __enter__(self) -> "LocalWorkerFleet":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def spawn_local_workers(
    n: int,
    host: str = "127.0.0.1",
    mp_context=None,
    delay_per_item: float = 0.0,
) -> LocalWorkerFleet:
    """Spawn ``n`` loopback worker processes on OS-assigned ports."""
    if n < 1:
        raise ValueError("need at least one local worker")
    ctx = mp_context or multiprocessing.get_context()
    processes, ports = [], []
    try:
        for _ in range(n):
            process, port = _spawn_one(ctx, host, 0, delay_per_item)
            processes.append(process)
            ports.append(port)
    except BaseException:
        for process in processes:
            process.kill()
        raise
    return LocalWorkerFleet(processes, ports, host, ctx, delay_per_item)


# -- dispatcher backend ------------------------------------------------------


class ClusterBackend(ExecutionBackend):
    """Shard scheduling chunks over socket workers by consistent hashing.

    The first :meth:`run` captures a :class:`WorldSnapshot`, connects to
    every configured worker, and ships the snapshot once per worker;
    later jobs against the same world reuse the live connections and
    carry only post-snapshot records as per-chunk deltas (shm-codec
    encoded where they conform, pickle otherwise).  Chunk->worker
    assignment follows a :class:`HashRing`, so one worker's death moves
    only its chunks: each failed chunk is re-dispatched to the next live
    node on the ring and the job still returns serial-parity traces.
    Dead workers are re-connected (and re-shipped a fresh snapshot) on
    the next job; :meth:`refresh` hot-swaps predictor weights fleet-wide
    without either.

    Like :class:`ProcessPoolBackend`, the backend is world-affine:
    switching worlds re-ships snapshots and is refused while other jobs
    are in flight.  Unreachable workers at connect time are skipped with
    a warning as long as one worker is live.

    Parameters
    ----------
    workers:
        ``"host:port"`` addresses of externally-managed workers
        (``repro.cli cluster-worker`` or :class:`ClusterWorker`).
    local_workers:
        Additionally spawn this many loopback worker processes owned
        (and closed) by the backend.
    chunk_size:
        Items per dispatched chunk; default shards evenly across live
        workers.
    vectorized:
        Workers run the batched dispatch tick per chunk (default) or
        the serial loop; traces are identical either way.
    connect_timeout:
        Seconds to wait per worker TCP connect before marking it
        unreachable.
    connect_attempts:
        Dial attempts per worker per job before skipping it; transient
        refusals (a worker restarting, a race with fleet spawn) are
        retried with jittered exponential backoff instead of silently
        shrinking the ring for a whole job.
    connect_backoff:
        Base seconds between dial attempts; each retry doubles it and
        applies +-50% jitter so a fleet reconnecting en masse does not
        hammer a recovering worker in lockstep.
    replicas:
        Virtual nodes per worker on the hash ring.
    mp_context:
        :mod:`multiprocessing` context for ``local_workers``.
    """

    name = "cluster"

    #: EWMA smoothing for worker-reported per-item scheduling seconds.
    EWMA_ALPHA = 0.3

    def __init__(
        self,
        workers: tuple[str, ...] | list[str] = (),
        local_workers: int | None = None,
        chunk_size: int | None = None,
        vectorized: bool = True,
        connect_timeout: float = 10.0,
        connect_attempts: int = 3,
        connect_backoff: float = 0.2,
        replicas: int = 32,
        mp_context=None,
    ):
        workers = tuple(workers)
        for address in workers:
            _parse_address(address)
        if local_workers is not None and local_workers < 1:
            raise ValueError("local_workers must be >= 1")
        if not workers and not local_workers:
            raise ValueError(
                "cluster backend needs workers: pass workers=('host:port', ...) "
                "and/or local_workers=N"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if connect_timeout <= 0:
            raise ValueError("connect_timeout must be positive")
        if connect_attempts < 1:
            raise ValueError("connect_attempts must be >= 1")
        if connect_backoff < 0:
            raise ValueError("connect_backoff must be >= 0")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.workers = workers
        self.local_workers = local_workers
        self.chunk_size = chunk_size
        self.vectorized = vectorized
        self.connect_timeout = connect_timeout
        self.connect_attempts = connect_attempts
        self.connect_backoff = connect_backoff
        self.replicas = replicas
        self.mp_context = mp_context
        self._lock = threading.Lock()
        self._links: dict[str, _Link] = {}
        self._fleet: LocalWorkerFleet | None = None
        self._ring: HashRing | None = None
        self._snapshot: WorldSnapshot | None = None
        #: Strong refs backing the identity key so ids cannot be recycled.
        self._world: tuple | None = None
        self._world_key: tuple | None = None
        self._shipped_ids: frozenset[str] = frozenset()
        self._active = 0
        self._dispatch: Counter = Counter()
        self._snapshot_ships: Counter = Counter()
        self._redispatched: Counter = Counter()
        self._refreshes = 0
        self._chunk_count = 0
        self._chunk_items = 0
        self._chunk_seconds = 0.0
        self._ewma_item_s: float | None = None
        self._last_chunk_size: int | None = None
        self._transport_counts: Counter = Counter()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Disconnect every worker and stop the owned local fleet."""
        with self._lock:
            for link in self._links.values():
                link.close()
            self._links = {}
            self._ring = None
            self._snapshot = None
            self._world = None
            self._world_key = None
            self._shipped_ids = frozenset()
            fleet, self._fleet = self._fleet, None
        if fleet is not None:
            fleet.close()

    def __enter__(self) -> "ClusterBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- telemetry -----------------------------------------------------------

    @property
    def dispatch_counts(self) -> dict[str, int]:
        """Items scheduled per worker address, cumulative across jobs."""
        with self._lock:
            return dict(self._dispatch)

    @property
    def chunk_stats(self) -> dict:
        """Per-chunk telemetry, shaped like ProcessPoolBackend's."""
        with self._lock:
            return {
                "chunks": self._chunk_count,
                "items": self._chunk_items,
                "seconds": self._chunk_seconds,
                "ewma_item_s": self._ewma_item_s,
                "last_chunk_size": self._last_chunk_size,
                "transport": dict(self._transport_counts),
            }

    @property
    def cluster_stats(self) -> dict:
        """Cluster health: per-worker liveness, ships, re-dispatches."""
        with self._lock:
            fleet = self._fleet.addresses if self._fleet is not None else ()
            addresses = dict.fromkeys(self.workers + tuple(fleet))
            for address in self._links:
                addresses.setdefault(address)
            return {
                "workers": {
                    address: {
                        "alive": address in self._links
                        and not self._links[address].dead,
                        "snapshot_ships": self._snapshot_ships[address],
                        "redispatched": self._redispatched[address],
                    }
                    for address in addresses
                },
                "refreshes": self._refreshes,
                "snapshot_ships": sum(self._snapshot_ships.values()),
                "redispatched": sum(self._redispatched.values()),
            }

    # -- control plane -------------------------------------------------------

    def refresh(self, predictor: QValuePredictor) -> int:
        """Hot-swap predictor weights fleet-wide; returns workers updated.

        One small control frame per live worker — no reconnect, no
        snapshot re-ship.  The stored snapshot's predictor payload is
        swapped too, so a worker that rejoins later restores the *new*
        weights, and the world key is re-anchored on ``predictor`` so
        the next :meth:`run` with it reuses every connection.
        """
        with self._lock:
            if self._world_key is None or self._snapshot is None:
                raise RuntimeError(
                    "refresh() before any job shipped a world snapshot"
                )
            if self._active > 0:
                raise RuntimeError(
                    "cannot refresh the fleet while jobs are in flight"
                )
            payload = capture_predictor(predictor)
            body = pickle.dumps(payload)
            updated = 0
            for link in self._links.values():
                if link.dead:
                    continue
                link.call(MSG_REFRESH, body)
                updated += 1
            self._snapshot = replace(self._snapshot, predictor_payload=payload)
            zoo_id, _, config = self._world_key
            self._world = (self._world[0], predictor)
            self._world_key = (zoo_id, id(predictor), config)
            self._refreshes += 1
            return updated

    # -- internals -----------------------------------------------------------

    def _addresses(self) -> tuple[str, ...]:
        fleet = self._fleet.addresses if self._fleet is not None else ()
        return self.workers + tuple(fleet)

    def _dial(self, address: str) -> _Link:
        """Connect to one worker, retrying transient failures with backoff.

        Only the TCP connect is retried — once a link exists, failures
        are the re-dispatch path's problem.  Backoff doubles per attempt
        with +-50% jitter; the last failure propagates to the caller,
        which logs and skips the worker for this job.
        """
        delay = self.connect_backoff
        for attempt in range(1, self.connect_attempts + 1):
            try:
                return _Link(address, self.connect_timeout)
            except OSError:
                if attempt == self.connect_attempts:
                    raise
                sleep = delay * random.uniform(0.5, 1.5)
                logger.debug(
                    "dial %s failed (attempt %d/%d); retrying in %.2fs",
                    address,
                    attempt,
                    self.connect_attempts,
                    sleep,
                )
                time.sleep(sleep)
                delay *= 2
        raise AssertionError("unreachable")  # pragma: no cover

    def _ensure_cluster(
        self, truth: GroundTruth, predictor: QValuePredictor
    ) -> tuple[dict[str, _Link], frozenset[str], HashRing]:
        """Live links for this world; (re)connects and ships snapshots.

        Mirrors ``ProcessPoolBackend._ensure_pool``: the world key is
        object identity of zoo and predictor plus the config, switching
        worlds while jobs are in flight raises (world-affinity), and a
        matching world reuses every live connection.  Unlike the pool,
        partial presence is fine — dead or unreachable workers are
        skipped (and retried next job) as long as one link is live.
        """
        key = (id(truth.zoo), id(predictor), truth.config)
        with self._lock:
            world_changed = self._world_key != key
            if world_changed and self._active > 0:
                raise RuntimeError(
                    "ClusterBackend is world-affine: cannot switch to a "
                    "different zoo/predictor while another job is in flight; "
                    "use one backend per world for concurrent use"
                )
            if self._fleet is None and self.local_workers:
                self._fleet = spawn_local_workers(
                    self.local_workers, mp_context=self.mp_context
                )
            addresses = self._addresses()
            if self._ring is None:
                self._ring = HashRing(addresses, self.replicas)
            if world_changed:
                self._snapshot = WorldSnapshot.capture(truth, predictor)
                self._world = (truth.zoo, predictor)
                self._world_key = key
                self._shipped_ids = self._snapshot.item_ids
                for link in self._links.values():
                    link.close()
                self._links = {}
            snapshot_body = None
            for address in addresses:
                link = self._links.get(address)
                if link is not None and not link.dead:
                    continue
                if snapshot_body is None:
                    snapshot_body = pickle.dumps(
                        (self._snapshot, self.vectorized)
                    )
                try:
                    link = self._dial(address)
                    link.call(MSG_SNAPSHOT, snapshot_body)
                except (OSError, WorkerDied) as exc:
                    logger.warning(
                        "cluster worker %s unreachable, skipping: %s",
                        address,
                        exc,
                    )
                    self._links.pop(address, None)
                    continue
                self._links[address] = link
                self._snapshot_ships[address] += 1
            live = {a: ln for a, ln in self._links.items() if not ln.dead}
            if not live:
                raise RuntimeError(
                    f"no live cluster workers reachable among {addresses}"
                )
            self._active += 1
            return live, self._shipped_ids, self._ring

    def _chunks(self, item_ids: tuple[str, ...], n_live: int):
        size = self.chunk_size
        if size is None:
            size = max(1, math.ceil(len(item_ids) / max(n_live, 1)))
        with self._lock:
            self._last_chunk_size = size
        return [
            item_ids[start : start + size]
            for start in range(0, len(item_ids), size)
        ]

    def _chunk_body(
        self, job: LabelingJob, chunk: tuple[str, ...], shipped: frozenset[str]
    ) -> bytes:
        extras = tuple(
            job.truth.record(item_id)
            for item_id in chunk
            if item_id not in shipped
        )
        extras_kind, payload = "pickle", extras
        if extras:
            encoded = encode_records(list(extras))
            if encoded is not None:
                extras_kind, payload = "codec", encoded
            with self._lock:
                self._transport_counts[f"delta_{extras_kind}"] += 1
        return pickle.dumps((chunk, job.spec, extras_kind, payload))

    def _dispatch_chunk(
        self,
        links: dict[str, _Link],
        ring: HashRing,
        index: int,
        chunk: tuple[str, ...],
        body: bytes,
        redispatch_from: str | None = None,
    ) -> tuple[str, Future]:
        """Send one chunk to its ring owner, walking past dead workers."""
        if redispatch_from is not None:
            with self._lock:
                self._redispatched[redispatch_from] += 1
        while True:
            # Exclude both dead links and ring nodes that never connected.
            dead = {
                node
                for node in ring.nodes
                if node not in links or links[node].dead
            }
            if len(dead) == len(ring.nodes):
                raise RuntimeError(
                    "all cluster workers died mid-job; re-run to reconnect"
                )
            address = ring.lookup(f"{chunk[0]}#{index}", exclude=dead)
            try:
                return address, links[address].request(MSG_CHUNK, body)
            except WorkerDied:
                logger.warning(
                    "cluster worker %s died at dispatch; re-routing chunk %d",
                    address,
                    index,
                )
                with self._lock:
                    self._redispatched[address] += 1

    def _decode_result(
        self, body: bytes, chunk: tuple[str, ...], truth: GroundTruth
    ) -> tuple[list[ScheduleTrace], float]:
        kind, payload, seconds, _pid = pickle.loads(body)
        with self._lock:
            self._transport_counts[f"result_{kind}"] += 1
        if kind == "codec":
            return decode_traces(payload, list(chunk), truth.zoo.names), seconds
        return payload, seconds

    def _observe_chunk(self, items: int, seconds: float) -> None:
        self._chunk_count += 1
        self._chunk_items += items
        self._chunk_seconds += seconds
        per_item = seconds / max(items, 1)
        if self._ewma_item_s is None:
            self._ewma_item_s = per_item
        else:
            self._ewma_item_s += self.EWMA_ALPHA * (per_item - self._ewma_item_s)

    def run(
        self, job: LabelingJob, predictor: QValuePredictor
    ) -> list[ScheduleTrace]:
        if len(job.item_ids) <= 1:
            # Not worth a network round-trip; counted under "local" so
            # per-worker telemetry still accounts for every item.
            with self._lock:
                self._dispatch["local"] += len(job.item_ids)
            return SerialBackend().run(job, predictor)
        links, shipped, ring = self._ensure_cluster(job.truth, predictor)
        try:
            chunks = self._chunks(job.item_ids, len(links))
            bodies = [self._chunk_body(job, chunk, shipped) for chunk in chunks]
            pending: list[tuple[str, Future]] = [
                self._dispatch_chunk(links, ring, index, chunk, body)
                for index, (chunk, body) in enumerate(zip(chunks, bodies))
            ]
            traces: list[ScheduleTrace] = []
            for index, chunk in enumerate(chunks):
                while True:
                    address, future = pending[index]
                    try:
                        _kind, body = future.result()
                        break
                    except WorkerDied:
                        # Only this worker's chunks move: re-dispatch to
                        # the next live ring node and keep waiting.
                        logger.warning(
                            "cluster worker %s died mid-chunk; "
                            "re-dispatching chunk %d",
                            address,
                            index,
                        )
                        pending[index] = self._dispatch_chunk(
                            links,
                            ring,
                            index,
                            chunk,
                            bodies[index],
                            redispatch_from=address,
                        )
                chunk_traces, seconds = self._decode_result(
                    body, chunk, job.truth
                )
                with self._lock:
                    self._dispatch[address] += len(chunk_traces)
                    self._observe_chunk(len(chunk), seconds)
                traces.extend(chunk_traces)
            return traces
        finally:
            with self._lock:
                self._active -= 1
