"""Typed backend configuration: eagerly-validated, frozen, buildable.

``make_backend(name, **kwargs)`` used to forward loose kwargs straight
into backend constructors — typos surfaced as ``TypeError`` deep inside
the engine, invalid values surfaced only when a pool finally spawned,
and ``make_backend(instance, **kwargs)`` silently *dropped* the kwargs.
This module replaces that with one frozen config dataclass per backend:

* every field is validated eagerly in ``__post_init__``, so a bad
  worker count or a malformed ``host:port`` fails at *config* time, not
  first-job time;
* :data:`BACKEND_REGISTRY` maps each registry name to its
  ``(backend class, config class)`` pair, so tooling can introspect
  what a backend accepts without constructing one;
* :meth:`BackendConfig.build` constructs the backend from the config's
  fields — configs are the single source of truth for constructor
  surface.

:func:`make_backend` remains the one resolution entry point.  Passing a
name with loose kwargs still works but now warns ``DeprecationWarning``
and round-trips through the typed config (so it inherits the eager
validation); passing kwargs alongside an already-constructed instance —
previously ignored — is now a ``TypeError``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields
from typing import ClassVar

from repro.engine.backends import (
    BatchedBackend,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
)
from repro.engine.cluster import ClusterBackend, _parse_address

__all__ = [
    "BACKEND_REGISTRY",
    "BackendConfig",
    "BatchedConfig",
    "ClusterConfig",
    "ProcessConfig",
    "SerialConfig",
    "ThreadConfig",
    "make_backend",
]


@dataclass(frozen=True)
class BackendConfig:
    """Base for per-backend configs: frozen, validated, buildable."""

    #: Registry name, mirrored from the backend class.
    name: ClassVar[str]
    #: The backend class :meth:`build` constructs.
    backend_cls: ClassVar[type[ExecutionBackend]]

    def build(self) -> ExecutionBackend:
        """Construct the configured backend instance."""
        kwargs = {field.name: getattr(self, field.name) for field in fields(self)}
        return self.backend_cls(**kwargs)

    @staticmethod
    def resolve(name: str, **kwargs) -> "BackendConfig":
        """Config for a registry name; loose kwargs are deprecated.

        ``resolve("process")`` returns the default :class:`ProcessConfig`
        silently; ``resolve("process", max_workers=4)`` still works but
        warns — pass ``ProcessConfig(max_workers=4)`` around instead.
        """
        try:
            _, config_cls = BACKEND_REGISTRY[name]
        except (KeyError, TypeError):
            raise ValueError(
                f"unknown backend {name!r}; choose from {sorted(BACKEND_REGISTRY)}"
            ) from None
        if kwargs:
            warnings.warn(
                f"passing loose kwargs for backend {name!r} is deprecated; "
                f"pass a typed {config_cls.__name__} instead",
                DeprecationWarning,
                stacklevel=3,
            )
        return config_cls(**kwargs)


@dataclass(frozen=True)
class SerialConfig(BackendConfig):
    """Reference single-item backend; takes no parameters."""

    name: ClassVar[str] = "serial"
    backend_cls: ClassVar[type[ExecutionBackend]] = SerialBackend


@dataclass(frozen=True)
class BatchedConfig(BackendConfig):
    """Vectorized lock-step backend; takes no parameters."""

    name: ClassVar[str] = "batched"
    backend_cls: ClassVar[type[ExecutionBackend]] = BatchedBackend


@dataclass(frozen=True)
class ThreadConfig(BackendConfig):
    """Thread-pool backend parameters."""

    name: ClassVar[str] = "thread"
    backend_cls: ClassVar[type[ExecutionBackend]] = ThreadPoolBackend

    max_workers: int | None = None

    def __post_init__(self):
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")


@dataclass(frozen=True)
class ProcessConfig(BackendConfig):
    """Process-pool backend parameters (see :class:`ProcessPoolBackend`)."""

    name: ClassVar[str] = "process"
    backend_cls: ClassVar[type[ExecutionBackend]] = ProcessPoolBackend

    max_workers: int | None = None
    chunk_size: int | None = None
    mp_context: object = None
    vectorized: bool = True
    transport: str = "shm"
    target_chunk_s: float | None = None
    ring_slots: int | None = None
    slot_bytes: int = 1 << 20

    def __post_init__(self):
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.transport not in ("shm", "pickle"):
            raise ValueError(
                f"transport must be 'shm' or 'pickle', got {self.transport!r}"
            )
        if self.target_chunk_s is not None and self.target_chunk_s <= 0:
            raise ValueError("target_chunk_s must be positive")
        if self.ring_slots is not None and self.ring_slots < 1:
            raise ValueError("ring_slots must be >= 1")
        if self.slot_bytes < 1:
            raise ValueError("slot_bytes must be >= 1")


@dataclass(frozen=True)
class ClusterConfig(BackendConfig):
    """Cluster backend parameters (see :class:`ClusterBackend`).

    Needs at least one worker source: ``workers`` addresses and/or a
    ``local_workers`` count.
    """

    name: ClassVar[str] = "cluster"
    backend_cls: ClassVar[type[ExecutionBackend]] = ClusterBackend

    workers: tuple[str, ...] = ()
    local_workers: int | None = None
    chunk_size: int | None = None
    vectorized: bool = True
    connect_timeout: float = 10.0
    connect_attempts: int = 3
    connect_backoff: float = 0.2
    replicas: int = 32
    mp_context: object = None

    def __post_init__(self):
        object.__setattr__(self, "workers", tuple(self.workers))
        for address in self.workers:
            _parse_address(address)
        if self.local_workers is not None and self.local_workers < 1:
            raise ValueError("local_workers must be >= 1")
        if not self.workers and not self.local_workers:
            raise ValueError(
                "cluster backend needs workers: pass workers=('host:port', ...) "
                "and/or local_workers=N"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.connect_timeout <= 0:
            raise ValueError("connect_timeout must be positive")
        if self.connect_attempts < 1:
            raise ValueError("connect_attempts must be >= 1")
        if self.connect_backoff < 0:
            raise ValueError("connect_backoff must be >= 0")
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")


#: Name -> (backend class, config class), for config/CLI construction.
BACKEND_REGISTRY: dict[str, tuple[type[ExecutionBackend], type[BackendConfig]]] = {
    config_cls.name: (config_cls.backend_cls, config_cls)
    for config_cls in (
        SerialConfig,
        BatchedConfig,
        ThreadConfig,
        ProcessConfig,
        ClusterConfig,
    )
}


def make_backend(
    backend: str | BackendConfig | ExecutionBackend, **kwargs
) -> ExecutionBackend:
    """Resolve a backend from a name, a typed config, or an instance.

    Names resolve through :meth:`BackendConfig.resolve` (bare names
    silently, loose kwargs with a ``DeprecationWarning``).  Kwargs
    alongside a config or an already-constructed instance are a
    ``TypeError`` — they used to be silently dropped for instances,
    which hid real configuration bugs.
    """
    if isinstance(backend, ExecutionBackend):
        if kwargs:
            raise TypeError(
                "make_backend() got keyword arguments "
                f"{sorted(kwargs)} for an already-constructed "
                f"{type(backend).__name__} instance; configure the instance "
                "directly or pass a typed config instead"
            )
        return backend
    if isinstance(backend, BackendConfig):
        if kwargs:
            raise TypeError(
                "make_backend() got keyword arguments "
                f"{sorted(kwargs)} alongside a {type(backend).__name__}; "
                "put them in the config"
            )
        return backend.build()
    return BackendConfig.resolve(backend, **kwargs).build()
