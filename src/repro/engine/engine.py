"""The batched labeling engine: record, schedule, assemble, release.

:class:`LabelingEngine` is the throughput layer between the public
framework API and the per-item schedulers.  It accepts batches or streams
of :class:`~repro.data.datasets.DataItem`, records each batch into the
ground-truth cache in one pass (:meth:`GroundTruth.record_batch`), hands
the batch to a pluggable :class:`~repro.engine.backends.ExecutionBackend`,
assembles :class:`LabelingResult` records, and — on the streaming path —
releases the records it created once their results have been yielded, so
labeling an unbounded stream runs in bounded memory.

Scheduling constraints arrive as one :class:`~repro.spec.LabelingSpec`
(``spec=``) or as the legacy ``deadline=/memory_budget=/max_models=``
kwargs; both forms funnel through :meth:`LabelingSpec.resolve`, so the
legacy form keeps working unchanged while passing both raises eagerly.

Eviction never touches records that pre-existed in a caller-supplied
cache: the engine only releases what it recorded itself, and callers can
opt out entirely with ``release_records=False``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from time import perf_counter

from repro.config import WorldConfig
from repro.data.datasets import DataItem
from repro.data.streams import batched
from repro.engine.backends import (
    ExecutionBackend,
    LabelingJob,
)
from repro.engine.config import BackendConfig, make_backend
from repro.engine.results import LabelingResult, result_from_trace
from repro.obs.instrument import engine_observer
from repro.scheduling.qgreedy import QValuePredictor
from repro.spec import LabelingSpec
from repro.zoo.model import ModelZoo
from repro.zoo.oracle import GroundTruth

#: Default number of in-flight items per scheduling batch.
DEFAULT_BATCH_SIZE = 64


class LabelingEngine:
    """Drives the schedule loop for many items concurrently.

    Parameters
    ----------
    zoo:
        The model collection ``M``.
    predictor:
        The per-state value predictor shared by all items.
    world_config:
        World parameters (valuable-confidence threshold etc.).
    backend:
        Registry name (``"serial"``, ``"batched"``, ``"thread"``, …), a
        typed :class:`~repro.engine.config.BackendConfig`, or a
        constructed :class:`ExecutionBackend`.
    batch_size:
        Streaming chunk size: how many items are in flight at once.
    """

    def __init__(
        self,
        zoo: ModelZoo,
        predictor: QValuePredictor,
        world_config: WorldConfig | None = None,
        backend: str | BackendConfig | ExecutionBackend = "batched",
        batch_size: int = DEFAULT_BATCH_SIZE,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.zoo = zoo
        self.predictor = predictor
        self.world_config = world_config or WorldConfig()
        self.backend = make_backend(backend)
        self.batch_size = batch_size

    def with_backend(
        self, backend: str | BackendConfig | ExecutionBackend, **kwargs
    ) -> "LabelingEngine":
        """A sibling engine sharing this world but running another backend.

        The zoo, predictor, and config are shared (no copying); only the
        execution strategy changes.  Used by the serving tier's
        ``backend=`` override and handy for A/B-ing backends in tests.
        """
        return LabelingEngine(
            self.zoo,
            self.predictor,
            self.world_config,
            backend=make_backend(backend, **kwargs),
            batch_size=self.batch_size,
        )

    # -- internals -----------------------------------------------------------

    def _ephemeral_truth(self) -> GroundTruth:
        return GroundTruth(self.zoo, [], self.world_config)

    def _run_batch(
        self,
        truth: GroundTruth,
        items: Sequence[DataItem],
        spec: LabelingSpec,
    ) -> tuple[list[LabelingResult], list[str]]:
        """Record + schedule + assemble one batch; returns (results, owned)."""
        # None unless obs instrumentation is installed; bare dispatches pay
        # one global read and one branch, no timing calls.
        sink = engine_observer()
        if sink is not None:
            dispatch_started = perf_counter()
        owned = [item.item_id for item in items if item.item_id not in truth]
        truth.record_batch(items)
        job = LabelingJob(
            truth=truth,
            item_ids=tuple(item.item_id for item in items),
            spec=spec,
        )
        traces = self.backend.run(job, self.predictor)
        results = [result_from_trace(truth, trace) for trace in traces]
        if sink is not None:
            sink.observe_engine(
                type(self.backend).__name__,
                spec.regime,
                len(items),
                perf_counter() - dispatch_started,
            )
        return results, owned

    # -- labeling ------------------------------------------------------------

    def label_batch(
        self,
        items: Sequence[DataItem],
        spec: LabelingSpec | None = None,
        *,
        deadline: float | None = None,
        memory_budget: float | None = None,
        max_models: int | None = None,
        truth: GroundTruth | None = None,
        release_records: bool = False,
    ) -> list[LabelingResult]:
        """Label one batch of items under one shared spec.

        Results are input-ordered.  With ``release_records=True`` the
        records this call added to ``truth`` are evicted before returning
        (records that were already present are always kept).
        """
        # Resolve (and thereby validate) before paying for recording.
        resolved = LabelingSpec.resolve(
            spec,
            deadline=deadline,
            memory_budget=memory_budget,
            max_models=max_models,
        )
        items = list(items)
        if truth is None:
            truth = self._ephemeral_truth()
        results, owned = self._run_batch(truth, items, resolved)
        if release_records:
            truth.release_many(owned)
        return results

    def label_stream(
        self,
        items: Iterable[DataItem],
        spec: LabelingSpec | None = None,
        *,
        deadline: float | None = None,
        memory_budget: float | None = None,
        max_models: int | None = None,
        truth: GroundTruth | None = None,
        batch_size: int | None = None,
        release_records: bool = True,
    ) -> Iterator[LabelingResult]:
        """Label a stream lazily, ``batch_size`` items in flight at a time.

        One result is yielded per input item, in input order.  The source
        is consumed one chunk ahead: the first result arrives after
        ``batch_size`` items (or stream end), so latency-sensitive live
        sources should use a small ``batch_size`` (1 = per-item).  After a
        chunk's results have been yielded, the records the engine added for
        that chunk are released (pass ``release_records=False`` to keep the
        cache growing instead).
        """
        # Resolve and validate eagerly (before the first next()): a bad
        # spec or a batch_size of 0 must be an error at call time, not a
        # silent fall-through once iteration starts.
        resolved = LabelingSpec.resolve(
            spec,
            deadline=deadline,
            memory_budget=memory_budget,
            max_models=max_models,
        )
        if batch_size is None:
            size = self.batch_size
        elif batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        else:
            size = batch_size
        return self._stream(items, resolved, truth, size, release_records)

    def _stream(
        self,
        items: Iterable[DataItem],
        spec: LabelingSpec,
        truth: GroundTruth | None,
        size: int,
        release_records: bool,
    ) -> Iterator[LabelingResult]:
        shared = truth if truth is not None else self._ephemeral_truth()
        for chunk in batched(items, size):
            results, owned = self._run_batch(shared, chunk, spec)
            yield from results
            if release_records:
                shared.release_many(owned)
