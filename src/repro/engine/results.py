"""The labeling result record and its construction from a trace.

:class:`LabelingResult` is what every labeling entry point returns per item.
It lives in the engine layer (the framework re-exports it for backwards
compatibility) because result construction is the last step of the engine's
prediction–scheduling–execution loop: read the executed models' recorded
outputs back from the ground-truth cache and keep, per label, the
highest-confidence emission (Eq. 1's max-confidence union).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.output import LabelOutput
from repro.scheduling.base import ScheduleTrace
from repro.zoo.oracle import GroundTruth


@dataclass
class LabelingResult:
    """What the framework returns for one labeled item."""

    item_id: str
    #: All valuable labels obtained, with confidences.
    labels: list[LabelOutput]
    #: The underlying execution trace (models, times, marginal values).
    trace: ScheduleTrace

    @property
    def label_names(self) -> list[str]:
        return [l.name for l in self.labels]

    @property
    def models_executed(self) -> list[str]:
        return [e.model_name for e in self.trace.executions]

    @property
    def time_used(self) -> float:
        return self.trace.makespan

    @property
    def recall(self) -> float:
        return self.trace.recall


def result_from_trace(truth: GroundTruth, trace: ScheduleTrace) -> LabelingResult:
    """Collect the valuable labels revealed along a trace into a result."""
    state_conf: dict[int, float] = {}
    labels: dict[int, LabelOutput] = {}
    for execution in trace.executions:
        output = truth.output(trace.item_id, execution.model_index)
        for label in output.valuable(truth.threshold):
            seen = state_conf.get(label.label_id, 0.0)
            if label.confidence > seen:
                state_conf[label.label_id] = label.confidence
                labels[label.label_id] = label
    return LabelingResult(
        item_id=trace.item_id,
        labels=sorted(labels.values(), key=lambda l: -l.confidence),
        trace=trace,
    )
