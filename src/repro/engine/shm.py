"""Zero-copy shared-memory transport for multi-process scheduling.

The :class:`~repro.engine.backends.ProcessPoolBackend` ships two payload
kinds between the parent and its workers: *chunk deltas* (the
:class:`~repro.zoo.oracle.ItemRecord` shards recorded after the worker's
world snapshot) going down, and *trace shards*
(:class:`~repro.scheduling.base.ScheduleTrace` lists) coming back.  Both
are numeric at heart — id/conf arrays, per-execution rows — yet the
pickle path copies them twice per hop (serialize + deserialize) and once
more through the pipe.  This module keeps those payloads in
:mod:`multiprocessing.shared_memory` instead:

* :class:`SlotRing` — one shared block divided into fixed-size slots
  with a byte of state each.  The parent creates a *delta* ring it
  writes and workers read, and a *result* ring workers write and the
  parent reads.  Only a tiny ``(slot, length)`` descriptor crosses the
  pipe; the payload itself is written once and read in place.
* :func:`encode_records` / :func:`decode_records` — a compact
  fixed-dtype layout for the *scheduling surface* of an
  :class:`ItemRecord` (valuable ids/confs, solo values, best
  confidences, total value).  Decoding builds numpy views directly into
  the shared block — no per-array copies — with stub item content and
  empty outputs: workers only schedule against the record cache, they
  never execute models on shipped items.
* :func:`encode_traces` / :func:`decode_traces` — per-trace headers plus
  one structured row per execution.

Fallback contract: :func:`encode_records` returns ``None`` whenever a
record is not a plain :class:`ItemRecord` (custom zoos may subclass it
with extra state the layout cannot carry), and the backend falls back to
pickle for that chunk — likewise when a payload outgrows its slot or the
ring is momentarily full.  Correctness never depends on the fast path.

Lifetime contract: arrays produced by :func:`decode_records` alias the
shared block, so they are valid only while the producing slot is held.
The backend holds each delta slot until the chunk's future completes and
workers copy nothing — adopted records live exactly as long as the chunk
that shipped them (the worker releases them afterwards).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.core.output import ModelOutput
from repro.data.datasets import DataItem
from repro.scheduling.base import ScheduledExecution, ScheduleTrace
from repro.zoo.model import ModelZoo
from repro.zoo.oracle import ItemRecord

#: One structured row per execution in a trace shard.
EXEC_DTYPE = np.dtype(
    [
        ("model", np.int32),
        ("new_labels", np.int32),
        ("start", np.float64),
        ("finish", np.float64),
        ("marginal", np.float64),
    ]
)

#: Per-trace header preceding its execution rows.
TRACE_HEAD_DTYPE = np.dtype([("total", np.float64), ("n_exec", np.int64)])

_FREE, _HELD = 0, 1


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without registering it for cleanup.

    Only the creating process may own (and eventually unlink) the block.
    Python 3.13 grew ``track=False`` for exactly this; on earlier
    interpreters the resource tracker would otherwise unlink the segment
    when the *worker* exits (cpython#82300), so we unregister manually.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - exercised on Python < 3.13
        # Suppress registration rather than unregistering afterwards:
        # the whole process tree shares one tracker, so a worker's
        # unregister would cancel the parent's (sole, legitimate)
        # registration and later unregisters would error in the tracker.
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class SlotRing:
    """A ring of fixed-size payload slots inside one shared-memory block.

    Layout: ``[hint u32][state u8 x slots][pad to 8][slot data ...]``.
    Each slot is either free or held; ``acquire`` scans round-robin from
    a rotation hint so successive payloads spread across the ring.  The
    ring itself is not a lock — callers serialize acquirers externally
    (the backend uses a :class:`threading.Lock` on the parent-owned ring
    and a ``multiprocessing.Lock`` on the worker-written one).  Releasing
    is a single byte store and needs no lock.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        slots: int,
        slot_bytes: int,
        owner: bool,
    ):
        self._shm = shm
        self.slots = slots
        self.slot_bytes = slot_bytes
        self._owner = owner
        self._data_offset = (4 + slots + 7) & ~7

    @classmethod
    def create(cls, slots: int, slot_bytes: int) -> SlotRing:
        if slots <= 0 or slot_bytes <= 0:
            raise ValueError("slots and slot_bytes must be positive")
        size = ((4 + slots + 7) & ~7) + slots * slot_bytes
        shm = shared_memory.SharedMemory(create=True, size=size)
        ring = cls(shm, slots, slot_bytes, owner=True)
        shm.buf[: 4 + slots] = bytes(4 + slots)
        return ring

    @classmethod
    def attach(
        cls, name: str, slots: int, slot_bytes: int, untrack: bool = True
    ) -> SlotRing:
        """Attach to an existing ring by name.

        ``untrack`` (the default) is for *worker processes*: it keeps the
        worker's resource tracker from unlinking the parent's segment on
        worker exit.  Pass ``untrack=False`` when attaching a second
        handle inside the creating process (tests do) — untracking there
        would cancel the creator's own registration.
        """
        if untrack:
            return cls(_attach_untracked(name), slots, slot_bytes, owner=False)
        return cls(
            shared_memory.SharedMemory(name=name), slots, slot_bytes, owner=False
        )

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def spec(self) -> RingSpec:
        return RingSpec(self.name, self.slots, self.slot_bytes)

    # -- slot state ----------------------------------------------------------

    def _hint(self) -> int:
        return struct.unpack_from("<I", self._shm.buf, 0)[0]

    def acquire(self) -> int | None:
        """Claim the next free slot, or ``None`` when the ring is full.

        Callers must hold the ring's external acquirer lock.
        """
        buf = self._shm.buf
        start = self._hint() % self.slots
        for step in range(self.slots):
            slot = (start + step) % self.slots
            if buf[4 + slot] == _FREE:
                buf[4 + slot] = _HELD
                struct.pack_into("<I", buf, 0, (slot + 1) % self.slots)
                return slot
        return None

    def release(self, slot: int) -> None:
        """Free a slot (single byte store; safe cross-process, no lock).

        No-op on a closed ring: a teardown racing a late release (a
        broken pool being dropped while another thread frees its chunk's
        slot) must not raise.
        """
        buf = self._shm.buf
        if buf is not None:
            buf[4 + slot] = _FREE

    def held(self, slot: int) -> bool:
        return self._shm.buf[4 + slot] == _HELD

    # -- payload -------------------------------------------------------------

    def write(self, slot: int, payload: bytes) -> int:
        """Copy ``payload`` into a held slot; returns its length."""
        length = len(payload)
        if length > self.slot_bytes:
            raise ValueError(
                f"payload of {length} bytes exceeds slot size {self.slot_bytes}"
            )
        offset = self._data_offset + slot * self.slot_bytes
        self._shm.buf[offset : offset + length] = payload
        return length

    def view(self, slot: int, length: int) -> memoryview:
        """Zero-copy view of a slot's first ``length`` bytes."""
        if length > self.slot_bytes:
            raise ValueError(
                f"requested {length} bytes from a {self.slot_bytes}-byte slot"
            )
        offset = self._data_offset + slot * self.slot_bytes
        return self._shm.buf[offset : offset + length]

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - views still alive
            pass

    def unlink(self) -> None:
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass


@dataclass(frozen=True)
class RingSpec:
    """Picklable handle a worker uses to attach to a parent's ring."""

    name: str
    slots: int
    slot_bytes: int

    def attach(self) -> SlotRing:
        return SlotRing.attach(self.name, self.slots, self.slot_bytes)


# -- record codec ------------------------------------------------------------
#
# Layout (little-endian; every section is a multiple of 8 bytes, so all
# numeric views are aligned):
#
#   <Q n_items> <Q n_models> <Q n_labels>
#   per item:
#     <Q padded_id_len> <Q id_len>  id_bytes (padded to 8)
#     <d total_value>
#     solo_values        f64[n_models]
#     best_confidence    f64[n_labels]
#     valuable counts    i64[n_models]
#     valuable ids       i64[sum(counts)]
#     valuable confs     f64[sum(counts)]


def encode_records(records: list[ItemRecord]) -> bytes | None:
    """Pack records' scheduling surface; ``None`` when they don't conform.

    Non-conforming means any record is not a plain :class:`ItemRecord`
    (a custom zoo may subclass it with state this layout cannot carry)
    or the shard is inconsistent in shape; callers fall back to pickle.
    """
    if not records:
        return None
    first = records[0]
    n_models = len(first.outputs)
    n_labels = len(first.best_confidence)
    for record in records:
        if type(record) is not ItemRecord:
            return None
        if (
            len(record.outputs) != n_models
            or len(record.best_confidence) != n_labels
            or len(record.valuable_ids) != n_models
        ):
            return None
    parts: list[bytes] = [struct.pack("<QQQ", len(records), n_models, n_labels)]
    for record in records:
        id_bytes = record.item.item_id.encode("utf-8")
        pad = (-len(id_bytes)) % 8
        parts.append(struct.pack("<QQ", len(id_bytes) + pad, len(id_bytes)))
        parts.append(id_bytes + b"\0" * pad)
        parts.append(struct.pack("<d", float(record.total_value)))
        parts.append(
            np.ascontiguousarray(record.solo_values, dtype=np.float64).tobytes()
        )
        parts.append(
            np.ascontiguousarray(record.best_confidence, dtype=np.float64).tobytes()
        )
        counts = np.asarray(
            [len(ids) for ids in record.valuable_ids], dtype=np.int64
        )
        parts.append(counts.tobytes())
        parts.append(
            np.concatenate(
                [np.asarray(a, dtype=np.int64) for a in record.valuable_ids]
            ).tobytes()
        )
        parts.append(
            np.concatenate(
                [np.asarray(a, dtype=np.float64) for a in record.valuable_confs]
            ).tobytes()
        )
    return b"".join(parts)


def _read_array(
    buf, dtype: np.dtype, count: int, offset: int
) -> tuple[np.ndarray, int]:
    array = np.frombuffer(buf, dtype=dtype, count=count, offset=offset)
    array.flags.writeable = False
    return array, offset + count * dtype.itemsize


def decode_records(buf, zoo: ModelZoo) -> list[ItemRecord]:
    """Rebuild records from :func:`encode_records` bytes, zero-copy.

    All numpy fields are read-only views into ``buf`` (valid only while
    the producing slot is held — see the module docstring).  ``item``
    carries no content and ``outputs`` are empty placeholders: shipped
    records exist to be *scheduled against*, and every consumer on that
    path (state updates, oracle gains, value accounting) reads only the
    valuable arrays and aggregates encoded here.
    """
    n_items, n_models, n_labels = struct.unpack_from("<QQQ", buf, 0)
    if n_models != len(zoo) or n_labels != len(zoo.space):
        raise ValueError(
            f"shard encoded for {n_models} models / {n_labels} labels but the "
            f"zoo has {len(zoo)} / {len(zoo.space)}"
        )
    names = zoo.names
    offset = 24
    records: list[ItemRecord] = []
    for _ in range(n_items):
        padded, id_len = struct.unpack_from("<QQ", buf, offset)
        offset += 16
        item_id = bytes(buf[offset : offset + id_len]).decode("utf-8")
        offset += padded
        (total_value,) = struct.unpack_from("<d", buf, offset)
        offset += 8
        solo, offset = _read_array(buf, np.dtype(np.float64), n_models, offset)
        best, offset = _read_array(buf, np.dtype(np.float64), n_labels, offset)
        counts, offset = _read_array(buf, np.dtype(np.int64), n_models, offset)
        total_count = int(counts.sum())
        ids, offset = _read_array(buf, np.dtype(np.int64), total_count, offset)
        confs, offset = _read_array(
            buf, np.dtype(np.float64), total_count, offset
        )
        splits = np.cumsum(counts)[:-1]
        dataset = item_id.split("/", 1)[0]
        records.append(
            ItemRecord(
                item=DataItem(
                    item_id=item_id, dataset=dataset, index=-1, content=None
                ),
                outputs=tuple(
                    ModelOutput(model=name, item_id=item_id, labels=())
                    for name in names
                ),
                valuable_ids=tuple(np.split(ids, splits)),
                valuable_confs=tuple(np.split(confs, splits)),
                solo_values=solo,
                best_confidence=best,
                total_value=float(total_value),
            )
        )
    return records


# -- trace codec -------------------------------------------------------------


def encode_traces(traces: list[ScheduleTrace]) -> bytes:
    """Pack traces as ``<Q n>`` + headers + execution rows.

    Item ids are *not* encoded: the parent knows the chunk's ordered ids
    and reattaches them (plus model names) on decode.
    """
    n = len(traces)
    heads = np.empty(n, dtype=TRACE_HEAD_DTYPE)
    rows = np.empty(
        sum(len(t.executions) for t in traces), dtype=EXEC_DTYPE
    )
    cursor = 0
    for i, trace in enumerate(traces):
        heads[i] = (trace.total_value, len(trace.executions))
        for execution in trace.executions:
            rows[cursor] = (
                execution.model_index,
                execution.new_labels,
                execution.start_time,
                execution.finish_time,
                execution.marginal_value,
            )
            cursor += 1
    return struct.pack("<Q", n) + heads.tobytes() + rows.tobytes()


def decode_traces(
    buf, item_ids: list[str], model_names: tuple[str, ...]
) -> list[ScheduleTrace]:
    """Rebuild traces, pairing them positionally with ``item_ids``."""
    (n,) = struct.unpack_from("<Q", buf, 0)
    if n != len(item_ids):
        raise ValueError(
            f"shard holds {n} traces but {len(item_ids)} item ids were given"
        )
    offset = 8
    heads = np.frombuffer(buf, dtype=TRACE_HEAD_DTYPE, count=n, offset=offset)
    offset += heads.nbytes
    total_rows = int(heads["n_exec"].sum())
    rows = np.frombuffer(buf, dtype=EXEC_DTYPE, count=total_rows, offset=offset)
    traces: list[ScheduleTrace] = []
    cursor = 0
    for i, item_id in enumerate(item_ids):
        trace = ScheduleTrace(
            item_id=item_id, total_value=float(heads["total"][i])
        )
        for _ in range(int(heads["n_exec"][i])):
            row = rows[cursor]
            cursor += 1
            model_index = int(row["model"])
            trace.executions.append(
                ScheduledExecution(
                    model_index=model_index,
                    model_name=model_names[model_index],
                    start_time=float(row["start"]),
                    finish_time=float(row["finish"]),
                    marginal_value=float(row["marginal"]),
                    new_labels=int(row["new_labels"]),
                )
            )
        traces.append(trace)
    return traces
