"""Picklable world snapshots for multi-process scheduling workers.

The scheduling loop is CPU-bound pure Python/numpy, so escaping the GIL
means shipping the *world* — zoo, recorded ground truth, value predictor,
spec — into worker processes.  Shipping it naively (re-pickling the full
``GroundTruth`` per batch) would drown the speedup in serialization, so
:class:`WorldSnapshot` captures everything a worker needs **once**:

* **zoo build parameters** — the zoo is deterministic in its
  :class:`~repro.config.WorldConfig`, so workers rebuild it from the
  config via :func:`~repro.zoo.builder.build_zoo` instead of unpickling
  thirty model objects; a zoo that does not match its config's standard
  build (hand-assembled zoos) falls back to being pickled wholesale;
* **recorded item shards** — the parent's :class:`ItemRecord` values at
  capture time, adopted into each worker's own
  :class:`~repro.zoo.oracle.GroundTruth` (items recorded *after* capture
  travel as small per-chunk deltas, see
  :class:`~repro.engine.backends.ProcessPoolBackend`);
* **the predictor** — an :class:`~repro.scheduling.qgreedy.AgentPredictor`
  is reduced to ``(algo, dims, state_dict)`` and rebuilt with
  :func:`~repro.rl.agents.make_agent` + ``load_state_dict``; an
  :class:`~repro.scheduling.qgreedy.OraclePredictor` is re-anchored on the
  worker's truth; anything else must simply be picklable.

The snapshot is immutable after capture: agent weights are copied, records
are frozen dataclasses.  A worker that restores the same snapshot twice
produces identical predictors, which is what keeps process traces
parity-identical to :class:`~repro.engine.backends.SerialBackend`.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

import numpy as np

from repro.config import WorldConfig
from repro.rl.agents import make_agent
from repro.scheduling.qgreedy import (
    AgentPredictor,
    OraclePredictor,
    QValuePredictor,
)
from repro.zoo.builder import build_zoo
from repro.zoo.model import ModelZoo
from repro.zoo.oracle import GroundTruth, ItemRecord

__all__ = ["WorldSnapshot", "capture_predictor", "restore_predictor"]


def _zoo_matches_config(zoo: ModelZoo, config: WorldConfig) -> bool:
    """Whether ``build_zoo(config)`` reproduces ``zoo`` exactly."""
    rebuilt = build_zoo(config)
    return (
        rebuilt.names == zoo.names
        and len(rebuilt.space) == len(zoo.space)
        and np.array_equal(rebuilt.times, zoo.times)
        and np.array_equal(rebuilt.mems, zoo.mems)
    )


def capture_predictor(predictor: QValuePredictor) -> tuple:
    """Reduce a predictor to a small picklable payload.

    The payload round-trips through :func:`restore_predictor`; it is
    what :class:`WorldSnapshot` ships per worker and what the cluster
    backend's ``refresh`` control message carries for fleet-wide weight
    hot-swaps.
    """
    if isinstance(predictor, AgentPredictor):
        agent = predictor.agent
        state = {key: value.copy() for key, value in agent.state_dict().items()}
        return (
            "agent",
            agent.algo,
            agent.obs_dim,
            agent.n_actions,
            agent.hidden_size,
            predictor.n_models,
            state,
        )
    if isinstance(predictor, OraclePredictor):
        return ("oracle", predictor.item_id)
    try:
        return ("pickled", pickle.dumps(predictor))
    except Exception as exc:
        raise TypeError(
            f"cannot snapshot predictor {type(predictor).__name__} for "
            f"multi-process scheduling: not an AgentPredictor/OraclePredictor "
            f"and not picklable ({exc})"
        ) from exc


@dataclass(frozen=True)
class WorldSnapshot:
    """Everything one scheduling worker needs, shipped once per worker."""

    #: World parameters; the zoo and label space rebuild from these.
    config: WorldConfig
    #: Pickled zoo, only when it cannot be rebuilt from ``config``.
    zoo_payload: bytes | None
    #: Ground-truth records present at capture time.
    records: tuple[ItemRecord, ...]
    #: Reduced predictor (see :func:`capture_predictor`).
    predictor_payload: tuple

    @classmethod
    def capture(
        cls, truth: GroundTruth, predictor: QValuePredictor
    ) -> "WorldSnapshot":
        """Freeze the parent's world for shipment to worker processes."""
        zoo_payload = None
        if not _zoo_matches_config(truth.zoo, truth.config):
            zoo_payload = pickle.dumps(truth.zoo)
        return cls(
            config=truth.config,
            zoo_payload=zoo_payload,
            records=truth.records_snapshot(),
            predictor_payload=capture_predictor(predictor),
        )

    @property
    def item_ids(self) -> frozenset[str]:
        """Ids whose records ship with the snapshot (no per-chunk delta)."""
        return frozenset(record.item.item_id for record in self.records)

    def restore(self) -> tuple[GroundTruth, QValuePredictor]:
        """Rebuild (truth, predictor) inside a worker process."""
        if self.zoo_payload is not None:
            zoo = pickle.loads(self.zoo_payload)
        else:
            zoo = build_zoo(self.config)
        truth = GroundTruth(zoo, [], self.config)
        truth.adopt(self.records)
        return truth, self._restore_predictor(truth)

    def _restore_predictor(self, truth: GroundTruth) -> QValuePredictor:
        return restore_predictor(self.predictor_payload, truth)


def restore_predictor(payload: tuple, truth: GroundTruth) -> QValuePredictor:
    """Rebuild a predictor from a :func:`capture_predictor` payload."""
    kind = payload[0]
    if kind == "agent":
        _, algo, obs_dim, n_actions, hidden_size, n_models, state = payload
        agent = make_agent(
            algo, obs_dim=obs_dim, n_actions=n_actions, hidden_size=hidden_size
        )
        agent.load_state_dict(state)
        return AgentPredictor(agent, n_models)
    if kind == "oracle":
        return OraclePredictor(truth, payload[1])
    return pickle.loads(payload[1])
