"""Experiment harness: one module per table/figure of the paper.

Every experiment exposes ``run(ctx) -> ExperimentReport`` where ``ctx`` is
an :class:`~repro.experiments.common.ExperimentContext` built for a scale
preset.  Reports carry the measured series plus the paper's reference
numbers so benchmarks and the runner can print paper-vs-measured tables.
"""

from repro.experiments.common import ExperimentContext, ExperimentReport

__all__ = ["ExperimentContext", "ExperimentReport"]
