"""Shared experiment setup: world, datasets, ground truth, trained agents.

Everything is cached per (scale, dataset, algo, ...) inside the process so
benchmark modules can share one world and one set of trained agents; the
``paper`` scale additionally persists trained agents under
``~/.cache/repro-ams`` so repeated runner invocations skip training.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path


from repro.config import ExperimentScale, get_scale
from repro.core.reward import RewardConfig
from repro.data.datasets import Dataset, generate_dataset, train_test_split
from repro.labels import LabelSpace, build_label_space
from repro.rl.agents import QAgent, make_agent
from repro.rl.training import train_agent
from repro.scheduling.qgreedy import AgentPredictor
from repro.zoo.builder import build_zoo
from repro.zoo.model import ModelZoo
from repro.zoo.oracle import GroundTruth

#: The three datasets of Figs. 4/5/10 and the two transfer datasets (§VI-D).
PREDICTION_DATASETS = ("mscoco2017", "mirflickr25", "places365")
TRANSFER_DATASETS = ("stanford40", "voc2012")
ALL_ALGOS = ("dqn", "double_dqn", "dueling_dqn", "deep_sarsa")


@dataclass
class ExperimentReport:
    """Human-readable experiment result: text plus raw measured series."""

    experiment: str
    title: str
    text: str
    #: Measured headline numbers, keyed by metric name.
    measured: dict[str, float] = field(default_factory=dict)
    #: The paper's corresponding numbers, keyed identically where possible.
    paper: dict[str, float] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"== {self.experiment}: {self.title} ==\n{self.text}"


class ExperimentContext:
    """Lazily-built, cached world + data + agents for one scale preset."""

    def __init__(self, scale: ExperimentScale | str = "bench"):
        self.scale = get_scale(scale) if isinstance(scale, str) else scale
        self.space: LabelSpace = build_label_space(self.scale.world.vocab_scale)
        self.zoo: ModelZoo = build_zoo(self.scale.world, self.space)
        self._datasets: dict[str, tuple[Dataset, Dataset]] = {}
        self._truth: GroundTruth | None = None
        self._agents: dict[tuple, QAgent] = {}
        self._train_seconds: dict[tuple, float] = {}

    # -- data -----------------------------------------------------------------

    def splits(self, dataset: str) -> tuple[Dataset, Dataset]:
        """(train, test) split of a dataset at this scale (1:4 as §VI-A)."""
        if dataset not in self._datasets:
            full = generate_dataset(
                self.space, self.scale.world, dataset, self.scale.items_per_dataset
            )
            self._datasets[dataset] = train_test_split(full)
        return self._datasets[dataset]

    def eval_ids(self, dataset: str, n: int | None = None) -> list[str]:
        """Test-item ids used for evaluation (subsampled deterministically)."""
        _, test = self.splits(dataset)
        n = n or self.scale.eval_items
        sampled = test.sample(n, seed=13)
        ids = [item.item_id for item in sampled]
        self.truth.add_items(sampled)
        return ids

    @property
    def truth(self) -> GroundTruth:
        """One shared ground-truth cache; items added on demand."""
        if self._truth is None:
            self._truth = GroundTruth(self.zoo, [], self.scale.world)
        return self._truth

    def ensure_truth(self, dataset: str) -> GroundTruth:
        """Ground truth covering the dataset's full train+test splits."""
        train, test = self.splits(dataset)
        self.truth.add_items(train)
        self.truth.add_items(test)
        return self.truth

    # -- agents -----------------------------------------------------------------

    def agent(
        self,
        dataset: str,
        algo: str = "dueling_dqn",
        reward_config: RewardConfig | None = None,
        tag: str = "",
    ) -> QAgent:
        """A trained agent for (dataset, algo); cached per context.

        ``reward_config``/``tag`` distinguish e.g. theta-priority variants.
        """
        key = (dataset, algo, tag)
        if key not in self._agents:
            truth = self.ensure_truth(dataset)
            train, _ = self.splits(dataset)
            cache_path = self._cache_path(key)
            start = time.perf_counter()
            if cache_path is not None and cache_path.exists():
                agent = self._load_agent(algo, cache_path)
            else:
                result = train_agent(
                    algo,
                    truth,
                    [item.item_id for item in train],
                    config=self.scale.train,
                    reward_config=reward_config,
                )
                agent = result.agent
                if cache_path is not None:
                    cache_path.parent.mkdir(parents=True, exist_ok=True)
                    agent.save(cache_path)
            self._train_seconds[key] = time.perf_counter() - start
            self._agents[key] = agent
        return self._agents[key]

    def predictor(
        self,
        dataset: str,
        algo: str = "dueling_dqn",
        reward_config: RewardConfig | None = None,
        tag: str = "",
    ) -> AgentPredictor:
        return AgentPredictor(
            self.agent(dataset, algo, reward_config, tag), len(self.zoo)
        )

    # -- persistence ---------------------------------------------------------------

    def _cache_path(self, key: tuple) -> Path | None:
        """Disk cache only at paper scale (bench runs stay self-contained)."""
        if self.scale.name != "paper":
            return None
        root = Path(
            os.environ.get("REPRO_CACHE_DIR", Path.home() / ".cache" / "repro-ams")
        )
        dataset, algo, tag = key
        suffix = f"-{tag}" if tag else ""
        name = (
            f"{self.scale.name}-{self.scale.world.seed}-{dataset}-{algo}"
            f"-{self.scale.train.episodes}ep{suffix}.npz"
        )
        return root / name

    def _load_agent(self, algo: str, path: Path) -> QAgent:
        agent = make_agent(
            algo,
            obs_dim=len(self.space),
            n_actions=len(self.zoo) + 1,
            hidden_size=self.scale.train.hidden_size,
            learning_rate=self.scale.train.learning_rate,
            gamma=self.scale.train.gamma,
            seed=self.scale.train.seed,
        )
        agent.load(path)
        return agent
