"""Fig. 2 + §II data-driven analysis: no policy vs random vs optimal.

The paper runs all 30 models over 394k images from MSCOCO + Places365 +
MirFlickr25 and reports the per-image time cost of three policies that all
recall *every* valuable label:

* no policy  — run everything: 5.16 s/image;
* random     — random order until all valuable labels recalled: 4.64 s;
* optimal    — only the useful executions: 1.14 s (22.1% of no policy),

plus the CDF of per-image costs.  We replay the same protocol on the
synthetic datasets.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.cdf import empirical_cdf
from repro.analysis.tables import format_series, format_table
from repro.experiments.common import (
    ExperimentContext,
    ExperimentReport,
    PREDICTION_DATASETS,
)
from repro.scheduling.base import run_ordering_policy
from repro.scheduling.optimal import OptimalPolicy
from repro.scheduling.random_policy import RandomPolicy

PAPER = {
    "no_policy_time": 5.16,
    "random_time": 4.64,
    "optimal_time": 1.14,
    "optimal_fraction": 0.221,
}


def run(ctx: ExperimentContext, n_items: int | None = None) -> ExperimentReport:
    """Measure the three §II policies on the mixed dataset."""
    truth = ctx.truth
    item_ids: list[str] = []
    per_dataset = max(10, (n_items or ctx.scale.eval_items) // 3)
    for dataset in PREDICTION_DATASETS:
        item_ids.extend(ctx.eval_ids(dataset, per_dataset))

    no_policy_time = ctx.zoo.total_time
    random_policy = RandomPolicy(seed=7)
    optimal_policy = OptimalPolicy()

    random_costs = []
    optimal_costs = []
    for item_id in item_ids:
        # Random: execute in random order until all valuable labels are in.
        trace = run_ordering_policy(random_policy, truth, item_id)
        _, time_full = trace.cost_to_recall(1.0)
        random_costs.append(time_full)
        # Optimal: execute exactly the useful models.
        useful = truth.record(item_id).useful_models
        optimal_costs.append(float(ctx.zoo.times[useful].sum()))

    random_time = float(np.mean(random_costs))
    optimal_time = float(np.mean(optimal_costs))
    fraction = optimal_time / no_policy_time

    rows = [
        ("no policy", f"{PAPER['no_policy_time']:.2f}", f"{no_policy_time:.2f}"),
        ("random policy", f"{PAPER['random_time']:.2f}", f"{random_time:.2f}"),
        ("optimal policy", f"{PAPER['optimal_time']:.2f}", f"{optimal_time:.2f}"),
        (
            "optimal / no policy",
            f"{PAPER['optimal_fraction']:.1%}",
            f"{fraction:.1%}",
        ),
    ]
    table = format_table(
        ("policy", "paper s/img", "measured s/img"),
        rows,
        title="Fig. 2 (left): average per-item time to recall all valuable labels",
    )

    grid = np.round(np.arange(0.0, no_policy_time + 0.26, 0.5), 2)
    _, cdf_random = empirical_cdf(random_costs, grid)
    _, cdf_optimal = empirical_cdf(optimal_costs, grid)
    cdf_table = format_series(
        "time_s",
        grid,
        {"random_cdf": cdf_random, "optimal_cdf": cdf_optimal},
        title="Fig. 2 (right): CDF of per-item time cost",
    )

    return ExperimentReport(
        experiment="fig02",
        title="Data-driven analysis: no/random/optimal policies",
        text=table + "\n\n" + cdf_table,
        measured={
            "no_policy_time": no_policy_time,
            "random_time": random_time,
            "optimal_time": optimal_time,
            "optimal_fraction": fraction,
        },
        paper=dict(PAPER),
    )
