"""Figs. 4 & 5: RL-based model value prediction quality (§VI-B).

For each of MSCOCO 2017, MirFlickr25 and Places365, run the Q-value greedy
policy of each agent (DQN, DoubleDQN, DuelingDQN, DeepSARSA) plus random
and optimal baselines, and report the average number of executed models
(Fig. 4) and average execution time (Fig. 5) needed to reach each recall
threshold of the true output value.

Headline paper numbers: vs the random policy, the best agent (DuelingDQN)
saves 44.1-60.6% executions at 0.8 recall and 48.4-50.0% at 1.0 recall
(Fig. 4), and 45.6-59.5% / 48.6-51.2% execution time (Fig. 5).
"""

from __future__ import annotations

from repro.analysis.metrics import (
    DEFAULT_RECALL_GRID,
    PolicyCurve,
    average_cost_curves,
    savings,
)
from repro.analysis.tables import format_series
from repro.experiments.common import (
    ALL_ALGOS,
    ExperimentContext,
    ExperimentReport,
    PREDICTION_DATASETS,
)
from repro.scheduling.base import run_ordering_policy
from repro.scheduling.optimal import OptimalPolicy
from repro.scheduling.qgreedy import QGreedyPolicy
from repro.scheduling.random_policy import RandomPolicy

PAPER = {
    # DuelingDQN vs random (ranges over the three datasets).
    "dueling_models_saved_at_0.8_low": 0.441,
    "dueling_models_saved_at_0.8_high": 0.606,
    "dueling_models_saved_at_1.0_low": 0.484,
    "dueling_models_saved_at_1.0_high": 0.500,
    "dueling_time_saved_at_0.8_low": 0.456,
    "dueling_time_saved_at_0.8_high": 0.595,
    "optimal_models_saved_at_0.8_low": 0.793,
    "optimal_models_saved_at_0.8_high": 0.840,
}


def curves_for_dataset(
    ctx: ExperimentContext,
    dataset: str,
    algos: tuple[str, ...] = ALL_ALGOS,
    n_items: int | None = None,
) -> dict[str, PolicyCurve]:
    """Cost-vs-recall curves for every policy on one dataset."""
    truth = ctx.ensure_truth(dataset)
    item_ids = ctx.eval_ids(dataset, n_items)
    policies = {"random": RandomPolicy(seed=11), "optimal": OptimalPolicy()}
    for algo in algos:
        policies[algo] = QGreedyPolicy(ctx.predictor(dataset, algo))
    curves: dict[str, PolicyCurve] = {}
    for name, policy in policies.items():
        traces = [run_ordering_policy(policy, truth, i) for i in item_ids]
        curves[name] = average_cost_curves(name, traces)
    return curves


def run(
    ctx: ExperimentContext,
    datasets: tuple[str, ...] = PREDICTION_DATASETS,
    algos: tuple[str, ...] = ALL_ALGOS,
    n_items: int | None = None,
) -> ExperimentReport:
    sections: list[str] = []
    measured: dict[str, float] = {}
    dueling_key = "dueling_dqn" if "dueling_dqn" in algos else algos[0]

    model_savings_08: list[float] = []
    model_savings_10: list[float] = []
    time_savings_08: list[float] = []

    for dataset in datasets:
        curves = curves_for_dataset(ctx, dataset, algos, n_items)
        sections.append(
            format_series(
                "recall",
                DEFAULT_RECALL_GRID,
                {name: c.avg_models for name, c in curves.items()},
                title=f"Fig. 4 ({dataset}): avg #executed models vs recall",
                precision=2,
            )
        )
        sections.append(
            format_series(
                "recall",
                DEFAULT_RECALL_GRID,
                {name: c.avg_time for name, c in curves.items()},
                title=f"Fig. 5 ({dataset}): avg execution time (s) vs recall",
            )
        )
        rnd, agent = curves["random"], curves[dueling_key]
        m08 = savings(rnd.at(0.8)[0], agent.at(0.8)[0])
        m10 = savings(rnd.at(1.0)[0], agent.at(1.0)[0])
        t08 = savings(rnd.at(0.8)[1], agent.at(0.8)[1])
        model_savings_08.append(m08)
        model_savings_10.append(m10)
        time_savings_08.append(t08)
        measured[f"{dataset}_dueling_models_saved_at_0.8"] = m08
        measured[f"{dataset}_dueling_models_saved_at_1.0"] = m10
        measured[f"{dataset}_dueling_time_saved_at_0.8"] = t08
        measured[f"{dataset}_optimal_models_saved_at_0.8"] = savings(
            rnd.at(0.8)[0], curves["optimal"].at(0.8)[0]
        )

    measured["dueling_models_saved_at_0.8_low"] = min(model_savings_08)
    measured["dueling_models_saved_at_0.8_high"] = max(model_savings_08)
    measured["dueling_models_saved_at_1.0_low"] = min(model_savings_10)
    measured["dueling_models_saved_at_1.0_high"] = max(model_savings_10)
    measured["dueling_time_saved_at_0.8_low"] = min(time_savings_08)
    measured["dueling_time_saved_at_0.8_high"] = max(time_savings_08)

    summary = (
        f"DuelingDQN vs random: models saved @0.8 recall = "
        f"{min(model_savings_08):.1%}-{max(model_savings_08):.1%} "
        f"(paper 44.1%-60.6%), @1.0 = "
        f"{min(model_savings_10):.1%}-{max(model_savings_10):.1%} "
        f"(paper 48.4%-50.0%)"
    )
    return ExperimentReport(
        experiment="fig04_05",
        title="RL-based model value prediction (Q-greedy vs baselines)",
        text="\n\n".join(sections + [summary]),
        measured=measured,
        paper=dict(PAPER),
    )
