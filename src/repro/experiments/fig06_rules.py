"""Fig. 6 + Table II: agent knowledge vs handcrafted rules (§VI-C).

The rule-based policy applies the ten Table II rules as execution
probability multipliers.  The paper finds it saves only 22.6% executions at
0.8 recall (2.1% at 1.0) vs the random policy, while the DuelingDQN agent
saves far more — handcrafted pairwise rules cannot capture the semantic
structure at 30-model/1104-label scale.
"""

from __future__ import annotations

from repro.analysis.metrics import DEFAULT_RECALL_GRID, average_cost_curves, savings
from repro.analysis.tables import format_series, format_table
from repro.experiments.common import ExperimentContext, ExperimentReport
from repro.scheduling.base import run_ordering_policy
from repro.scheduling.optimal import OptimalPolicy
from repro.scheduling.qgreedy import QGreedyPolicy
from repro.scheduling.random_policy import RandomPolicy
from repro.scheduling.rules import HANDCRAFTED_RULES, RuleBasedPolicy

PAPER = {
    "rules_models_saved_at_0.8": 0.226,
    "rules_models_saved_at_1.0": 0.021,
    "rules_time_saved_at_0.8": 0.201,
    "rules_time_saved_at_1.0": 0.014,
}


def run(
    ctx: ExperimentContext,
    dataset: str = "mscoco2017",
    n_items: int | None = None,
) -> ExperimentReport:
    truth = ctx.ensure_truth(dataset)
    item_ids = ctx.eval_ids(dataset, n_items)
    policies = {
        "rules": RuleBasedPolicy(seed=5),
        "dueling_dqn": QGreedyPolicy(ctx.predictor(dataset, "dueling_dqn")),
        "random": RandomPolicy(seed=5),
        "optimal": OptimalPolicy(),
    }
    curves = {
        name: average_cost_curves(
            name, [run_ordering_policy(p, truth, i) for i in item_ids]
        )
        for name, p in policies.items()
    }

    rules_table = format_table(
        ("#", "rule"),
        [(i + 1, r.description) for i, r in enumerate(HANDCRAFTED_RULES)],
        title="Table II: the ten handcrafted rules",
    )
    fig = format_series(
        "recall",
        DEFAULT_RECALL_GRID,
        {name: c.avg_models for name, c in curves.items()},
        title=f"Fig. 6 (left, {dataset}): avg #executed models vs recall",
        precision=2,
    )
    fig_time = format_series(
        "recall",
        DEFAULT_RECALL_GRID,
        {name: c.avg_time for name, c in curves.items()},
        title=f"Fig. 6 (right, {dataset}): avg execution time (s) vs recall",
    )

    rnd = curves["random"]
    rules = curves["rules"]
    agent = curves["dueling_dqn"]
    measured = {
        "rules_models_saved_at_0.8": savings(rnd.at(0.8)[0], rules.at(0.8)[0]),
        "rules_models_saved_at_1.0": savings(rnd.at(1.0)[0], rules.at(1.0)[0]),
        "rules_time_saved_at_0.8": savings(rnd.at(0.8)[1], rules.at(0.8)[1]),
        "rules_time_saved_at_1.0": savings(rnd.at(1.0)[1], rules.at(1.0)[1]),
        "dueling_models_saved_at_0.8": savings(rnd.at(0.8)[0], agent.at(0.8)[0]),
    }
    summary = (
        f"rules vs random: models saved @0.8 = "
        f"{measured['rules_models_saved_at_0.8']:.1%} (paper 22.6%), @1.0 = "
        f"{measured['rules_models_saved_at_1.0']:.1%} (paper 2.1%); "
        f"DuelingDQN saves {measured['dueling_models_saved_at_0.8']:.1%} @0.8 — "
        "the agent dominates handcrafted rules"
    )
    return ExperimentReport(
        experiment="fig06",
        title="Agent knowledge vs handcrafted rules",
        text="\n\n".join([rules_table, fig, fig_time, summary]),
        measured=measured,
        paper=dict(PAPER),
    )
