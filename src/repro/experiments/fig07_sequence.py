"""Fig. 7: a qualitative scheduled execution sequence (§VI-C).

The paper visualizes the DuelingDQN agent's Q-greedy order on one
MirFlickr25 image: a place classifier fires first ("pub"), object
detectors find cups/persons, then the action classifier confirms
"drinking beer" — the learned ordering follows common-sense semantics.

We reproduce the narrative: pick a test item whose content exercises the
same chain and print the scheduled sequence with each model's output.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentContext, ExperimentReport
from repro.scheduling.base import run_ordering_policy
from repro.scheduling.qgreedy import QGreedyPolicy


def run(
    ctx: ExperimentContext,
    dataset: str = "mirflickr25",
    max_steps: int = 8,
) -> ExperimentReport:
    truth = ctx.ensure_truth(dataset)
    item_ids = ctx.eval_ids(dataset)
    policy = QGreedyPolicy(ctx.predictor(dataset, "dueling_dqn"))

    # Pick the richest item: most valuable labels from most distinct tasks.
    def richness(item_id: str) -> tuple[int, float]:
        rec = truth.record(item_id)
        tasks = {
            ctx.zoo[j].task
            for j in range(len(ctx.zoo))
            if rec.solo_values[j] > 0
        }
        return (len(tasks), rec.total_value)

    item_id = max(item_ids, key=richness)
    trace = run_ordering_policy(policy, truth, item_id, max_models=max_steps)

    lines = [f"Item {item_id} — Q-greedy execution sequence (first {max_steps}):"]
    for step, execution in enumerate(trace.executions, start=1):
        output = truth.output(item_id, execution.model_index)
        valuable = output.valuable(truth.threshold)
        shown = ", ".join(str(l) for l in valuable[:4]) or "<nothing valuable>"
        if len(valuable) > 4:
            shown += f", ... (+{len(valuable) - 4} labels)"
        lines.append(
            f"  {step}. {execution.model_name:24s} "
            f"[+{execution.marginal_value:5.2f} value] {shown}"
        )
    lines.append(
        "Expected shape (paper): early picks hit the item's actual content; "
        "later picks mop up or return nothing."
    )
    gained = trace.value_obtained / max(trace.total_value, 1e-9)
    lines.append(
        f"Recall after {len(trace.executions)} of {len(ctx.zoo)} models: {gained:.1%}"
    )
    return ExperimentReport(
        experiment="fig07",
        title="Qualitative scheduled sequence",
        text="\n".join(lines),
        measured={"recall_after_sequence": gained},
        paper={},
    )
