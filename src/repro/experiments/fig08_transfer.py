"""Fig. 8: knowledge transferability across datasets (§VI-D).

Agent1 is trained on Stanford40 (action-centric), Agent2 on PASCAL VOC 2012
(broad objects); both are evaluated on both test sets with the Q-greedy
policy, measuring the average time to recall *all* valuable labels.  Paper:
agents average 1.94-2.63 s vs random 4.04-4.12 s — 51.1% / 36.9% time saved
on Dataset1 / Dataset2 even for the cross-trained agent.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.cdf import empirical_cdf
from repro.analysis.metrics import savings
from repro.analysis.tables import format_series, format_table
from repro.experiments.common import ExperimentContext, ExperimentReport
from repro.scheduling.base import run_ordering_policy
from repro.scheduling.optimal import OptimalPolicy
from repro.scheduling.qgreedy import QGreedyPolicy
from repro.scheduling.random_policy import RandomPolicy

PAPER = {
    "agent1_dataset1_time": 1.94,
    "agent2_dataset1_time": 2.09,
    "random_dataset1_time": 4.12,
    "optimal_dataset1_time": 0.79,
    "agent1_dataset2_time": 2.63,
    "agent2_dataset2_time": 2.47,
    "random_dataset2_time": 4.04,
    "optimal_dataset2_time": 0.68,
    "agents_saved_dataset1": 0.511,
    "agents_saved_dataset2": 0.369,
}

DATASET1 = "stanford40"
DATASET2 = "voc2012"


def time_to_full_recall(policy, truth, item_ids) -> list[float]:
    """Per-item time until all valuable labels are recalled."""
    costs = []
    for item_id in item_ids:
        trace = run_ordering_policy(policy, truth, item_id)
        _, t = trace.cost_to_recall(1.0)
        costs.append(t)
    return costs


def run(ctx: ExperimentContext, n_items: int | None = None) -> ExperimentReport:
    for dataset in (DATASET1, DATASET2):
        ctx.ensure_truth(dataset)
    truth = ctx.truth
    agents = {
        "agent1": QGreedyPolicy(ctx.predictor(DATASET1, "dueling_dqn")),
        "agent2": QGreedyPolicy(ctx.predictor(DATASET2, "dueling_dqn")),
        "random": RandomPolicy(seed=3),
        "optimal": OptimalPolicy(),
    }
    measured: dict[str, float] = {}
    sections: list[str] = []
    for tag, dataset in (("dataset1", DATASET1), ("dataset2", DATASET2)):
        item_ids = ctx.eval_ids(dataset, n_items)
        costs = {
            name: time_to_full_recall(policy, truth, item_ids)
            for name, policy in agents.items()
        }
        means = {name: float(np.mean(c)) for name, c in costs.items()}
        for name, value in means.items():
            measured[f"{name}_{tag}_time"] = value
        agent_mean = 0.5 * (means["agent1"] + means["agent2"])
        measured[f"agents_saved_{tag}"] = savings(means["random"], agent_mean)
        rows = [
            (
                name,
                f"{PAPER.get(f'{name}_{tag}_time', float('nan')):.2f}",
                f"{means[name]:.2f}",
            )
            for name in ("agent1", "agent2", "random", "optimal")
        ]
        sections.append(
            format_table(
                ("policy", "paper s/img", "measured s/img"),
                rows,
                title=f"Fig. 8 ({tag}={dataset}): avg time to 100% recall",
            )
        )
        grid = np.round(np.arange(0.0, ctx.zoo.total_time + 0.26, 0.5), 2)
        cdfs = {
            name: empirical_cdf(cost, grid)[1] for name, cost in costs.items()
        }
        sections.append(
            format_series(
                "time_s",
                grid,
                cdfs,
                title=f"Fig. 8 CDF ({tag}={dataset})",
            )
        )
    summary = (
        f"agents save {measured['agents_saved_dataset1']:.1%} on dataset1 "
        f"(paper 51.1%) and {measured['agents_saved_dataset2']:.1%} on "
        "dataset2 (paper 36.9%) — cross-trained knowledge transfers"
    )
    return ExperimentReport(
        experiment="fig08",
        title="Knowledge transferability (Stanford40 <-> VOC2012)",
        text="\n\n".join(sections + [summary]),
        measured=measured,
        paper=dict(PAPER),
    )
