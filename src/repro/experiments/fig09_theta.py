"""Fig. 9: controlling model priority with theta (§VI-E).

Raising theta for face detection in the reward function (Eq. 3) should pull
its position forward in the scheduled sequence without sacrificing overall
efficiency.  Paper (DuelingDQN): average selection order of the face
detector falls from ~28.9 (theta=1) to ~3.0 (theta=10), while total-time
savings vs random stay at 48-54%.

Substrate note: our zoo deploys *three* face detectors sharing the single
"face" label (Table I gives the task one label), so prioritizing one of
them is confounded by its siblings — whichever runs second is punished for
duplicating the label.  We therefore apply theta at the *task* level (the
same granularity as Table II's P(Task) rules) and measure when the first
face-detection model runs.  We also extend the sweep to theta=20: our
simulated face detections carry a higher base value than the paper's, which
shifts the theta at which priority overtakes content evidence.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import savings
from repro.analysis.tables import format_table
from repro.core.reward import RewardConfig
from repro.experiments.common import ExperimentContext, ExperimentReport
from repro.scheduling.base import run_ordering_policy
from repro.scheduling.qgreedy import QGreedyPolicy
from repro.scheduling.random_policy import RandomPolicy
from repro.vocab import TASK_FACE

PAPER = {
    "order_theta_1": 28.9,
    "order_theta_2": 27.4,
    "order_theta_5": 4.0,
    "order_theta_10": 3.0,
    "time_saved_low": 0.482,
    "time_saved_high": 0.543,
}

#: The task whose priority is swept (the paper boosts face detection).
TARGET_TASK = TASK_FACE
THETAS = (1.0, 2.0, 5.0, 10.0, 20.0)


def run(
    ctx: ExperimentContext,
    # MirFlickr's social photos have the highest face incidence, which is
    # where a face-detector priority can actually be honoured.
    dataset: str = "mirflickr25",
    thetas: tuple[float, ...] = THETAS,
    algo: str = "dueling_dqn",
    n_items: int | None = None,
) -> ExperimentReport:
    truth = ctx.ensure_truth(dataset)
    item_ids = ctx.eval_ids(dataset, n_items)
    target_models = ctx.zoo.models_for_task(TARGET_TASK)
    target_indices = {ctx.zoo.index_of(m.name) for m in target_models}

    random_costs = []
    random_policy = RandomPolicy(seed=23)
    random_orders = []
    for item_id in item_ids:
        trace = run_ordering_policy(random_policy, truth, item_id)
        _, t = trace.cost_to_recall(1.0)
        random_costs.append(t)
        for position, execution in enumerate(trace.executions, start=1):
            if execution.model_index in target_indices:
                random_orders.append(position)
                break
    random_time = float(np.mean(random_costs))

    rows = []
    measured: dict[str, float] = {"random_order": float(np.mean(random_orders))}
    for theta in thetas:
        if theta != 1.0:
            reward_config = RewardConfig(
                theta={m.name: theta for m in target_models}
            )
            tag = f"task-theta{theta:g}"
        else:
            reward_config = None
            tag = ""
        policy = QGreedyPolicy(
            ctx.predictor(dataset, algo, reward_config=reward_config, tag=tag)
        )
        orders = []
        full_costs = []
        for item_id in item_ids:
            trace = run_ordering_policy(policy, truth, item_id)
            for position, execution in enumerate(trace.executions, start=1):
                if execution.model_index in target_indices:
                    orders.append(position)
                    break
            _, t = trace.cost_to_recall(1.0)
            full_costs.append(t)
        avg_order = float(np.mean(orders))
        avg_time = float(np.mean(full_costs))
        saved = savings(random_time, avg_time)
        measured[f"order_theta_{theta:g}"] = avg_order
        measured[f"time_saved_theta_{theta:g}"] = saved
        rows.append(
            (
                f"{theta:g}",
                f"{PAPER.get(f'order_theta_{theta:g}', float('nan')):.1f}",
                f"{avg_order:.1f}",
                f"{avg_time:.2f}",
                f"{saved:.1%}",
            )
        )

    table = format_table(
        (
            "theta",
            "paper avg order",
            "measured avg order",
            "time to 100% recall (s)",
            "saved vs random",
        ),
        rows,
        title=(
            f"Fig. 9: priority sweep for the {TARGET_TASK} task "
            f"(random={random_time:.2f}s, random order="
            f"{measured['random_order']:.1f})"
        ),
    )
    orders_list = [measured[f"order_theta_{t:g}"] for t in thetas]
    summary = (
        f"increasing theta pulls face detection from position "
        f"{orders_list[0]:.1f} to {min(orders_list):.1f} while time savings "
        "stay stable (paper: 28.9 -> 3.0, savings 48-54%)"
    )
    return ExperimentReport(
        experiment="fig09",
        title="Model priority via theta",
        text=table + "\n" + summary,
        measured=measured,
        paper=dict(PAPER),
    )
