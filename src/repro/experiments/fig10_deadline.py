"""Fig. 10: scheduling under deadline constraints (§VI-F, Algorithm 1).

For each dataset, sweep the per-item deadline and report the recall rate of
output value for: Algorithm 1 (Cost-Q greedy), Q-greedy, random, and the
optimal* upper bound — plus the performance ratio of Algorithm 1 to
optimal*, which the paper finds exceeds 1 - 1/e in most cases.  Headline:
Algorithm 1 boosts recall by 188.7-309.5% over random at a 0.5 s deadline.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import improvement, performance_ratio
from repro.analysis.tables import format_series
from repro.experiments.common import (
    ExperimentContext,
    ExperimentReport,
    PREDICTION_DATASETS,
)
from repro.scheduling.deadline import (
    CostQGreedyScheduler,
    QGreedyDeadlineScheduler,
    RandomDeadlineScheduler,
    RelaxedOptimalDeadline,
)

PAPER = {
    "improvement_at_0.5s_low": 1.887,
    "improvement_at_0.5s_high": 3.095,
    "ratio_floor": 1 - 1 / np.e,
}

#: Deadline grid (seconds); the paper sweeps 0-5 s.
DEADLINES = (0.25, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0)


def sweep_dataset(
    ctx: ExperimentContext,
    dataset: str,
    deadlines: tuple[float, ...],
    n_items: int | None = None,
    algo: str = "dueling_dqn",
) -> dict[str, np.ndarray]:
    """Mean recall per deadline for the four Fig. 10 policies."""
    truth = ctx.ensure_truth(dataset)
    item_ids = ctx.eval_ids(dataset, n_items)
    predictor = ctx.predictor(dataset, algo)
    cost_q = CostQGreedyScheduler(predictor)
    q_greedy = QGreedyDeadlineScheduler(predictor)
    random_sched = RandomDeadlineScheduler(seed=31)
    star = RelaxedOptimalDeadline()

    out = {
        name: np.zeros(len(deadlines))
        for name in ("cost_q_greedy", "q_greedy", "random", "optimal_star")
    }
    for di, deadline in enumerate(deadlines):
        recalls = {name: [] for name in out}
        for item_id in item_ids:
            recalls["cost_q_greedy"].append(
                cost_q.schedule(truth, item_id, deadline).recall_by(deadline)
            )
            recalls["q_greedy"].append(
                q_greedy.schedule(truth, item_id, deadline).recall_by(deadline)
            )
            recalls["random"].append(
                random_sched.schedule(truth, item_id, deadline).recall_by(deadline)
            )
            recalls["optimal_star"].append(star.recall(truth, item_id, deadline))
        for name in out:
            out[name][di] = float(np.mean(recalls[name]))
    return out


def run(
    ctx: ExperimentContext,
    datasets: tuple[str, ...] = PREDICTION_DATASETS,
    deadlines: tuple[float, ...] = DEADLINES,
    n_items: int | None = None,
) -> ExperimentReport:
    sections = []
    measured: dict[str, float] = {}
    improvements_05 = []
    ratios = {}
    for dataset in datasets:
        curves = sweep_dataset(ctx, dataset, deadlines, n_items)
        sections.append(
            format_series(
                "deadline_s",
                deadlines,
                curves,
                title=f"Fig. 10 ({dataset}): value recall vs deadline",
            )
        )
        ratio = performance_ratio(curves["cost_q_greedy"], curves["optimal_star"])
        ratios[dataset] = ratio
        measured[f"{dataset}_ratio"] = ratio
        # improvement vs random at the deadline closest to 0.5 s
        i05 = int(np.argmin(np.abs(np.asarray(deadlines) - 0.5)))
        imp = improvement(curves["random"][i05], curves["cost_q_greedy"][i05])
        improvements_05.append(imp)
        measured[f"{dataset}_improvement_at_0.5s"] = imp

    ratio_series = {
        dataset: np.full(len(deadlines), ratios[dataset]) for dataset in datasets
    }
    ratio_series["1-1/e"] = np.full(len(deadlines), 1 - 1 / np.e)
    sections.append(
        format_series(
            "deadline_s",
            deadlines,
            ratio_series,
            title="Fig. 10(d): performance ratio of Algorithm 1 to optimal*",
        )
    )
    measured["improvement_at_0.5s_low"] = min(improvements_05)
    measured["improvement_at_0.5s_high"] = max(improvements_05)
    measured["min_ratio"] = min(ratios.values())
    summary = (
        f"Algorithm 1 vs random @0.5s: +{min(improvements_05):.1%} to "
        f"+{max(improvements_05):.1%} recall (paper +188.7% to +309.5%); "
        f"min performance ratio {min(ratios.values()):.3f} vs 1-1/e="
        f"{1 - 1 / np.e:.3f}"
    )
    return ExperimentReport(
        experiment="fig10",
        title="Scheduling under deadline constraint (Algorithm 1)",
        text="\n\n".join(sections + [summary]),
        measured=measured,
        paper=dict(PAPER),
    )
