"""Fig. 11: scheduling under memory-deadline constraints (§VI-G, Alg. 2).

Multi-processor setting: models run in parallel within a GPU-memory budget.
The paper evaluates the worst case from its transfer study — the
Stanford40-trained agent on VOC2012 — under 8/12/16 GB memory budgets and
0-2 s deadlines.  Headline: Algorithm 2 improves recall over random by
106.9% / 52.8% / 19.5% under 8/12/16 GB at the 0.8 s deadline, and its
performance ratio to optimal* exceeds 1 - 1/e in most cases.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import improvement, performance_ratio
from repro.analysis.tables import format_series
from repro.experiments.common import ExperimentContext, ExperimentReport
from repro.scheduling.deadline_memory import (
    MemoryDeadlineScheduler,
    RandomMemoryDeadlineScheduler,
    RelaxedOptimalMemoryDeadline,
)

PAPER = {
    "improvement_8gb_at_0.8s": 1.069,
    "improvement_12gb_at_0.8s": 0.528,
    "improvement_16gb_at_0.8s": 0.195,
    "ratio_floor": 1 - 1 / np.e,
}

#: Memory budgets in MB (the paper's 8/12/16 GB).
MEMORY_BUDGETS = (8000.0, 12000.0, 16000.0)
#: Deadline grid in seconds (the paper sweeps 0-2 s).
DEADLINES = (0.2, 0.4, 0.8, 1.2, 1.6, 2.0)

#: Worst case from §VI-D: agent trained on Stanford40, tested on VOC2012.
TRAIN_DATASET = "stanford40"
TEST_DATASET = "voc2012"


def run(
    ctx: ExperimentContext,
    memory_budgets: tuple[float, ...] = MEMORY_BUDGETS,
    deadlines: tuple[float, ...] = DEADLINES,
    n_items: int | None = None,
) -> ExperimentReport:
    ctx.ensure_truth(TRAIN_DATASET)
    truth = ctx.ensure_truth(TEST_DATASET)
    item_ids = ctx.eval_ids(TEST_DATASET, n_items)
    predictor = ctx.predictor(TRAIN_DATASET, "dueling_dqn")
    agent_sched = MemoryDeadlineScheduler(predictor)
    random_sched = RandomMemoryDeadlineScheduler(seed=17)
    star = RelaxedOptimalMemoryDeadline()

    sections = []
    measured: dict[str, float] = {}
    ratios = {}
    for mem in memory_budgets:
        curves = {
            name: np.zeros(len(deadlines))
            for name in ("agent", "random", "optimal_star")
        }
        for di, deadline in enumerate(deadlines):
            agent_recalls = []
            random_recalls = []
            star_recalls = []
            for item_id in item_ids:
                agent_recalls.append(
                    agent_sched.schedule(truth, item_id, deadline, mem).recall_by(
                        deadline
                    )
                )
                random_recalls.append(
                    random_sched.schedule(truth, item_id, deadline, mem).recall_by(
                        deadline
                    )
                )
                star_recalls.append(star.recall(truth, item_id, deadline, mem))
            curves["agent"][di] = float(np.mean(agent_recalls))
            curves["random"][di] = float(np.mean(random_recalls))
            curves["optimal_star"][di] = float(np.mean(star_recalls))

        gb = mem / 1000
        sections.append(
            format_series(
                "deadline_s",
                deadlines,
                curves,
                title=f"Fig. 11 ({gb:.0f}GB): value recall vs deadline",
            )
        )
        i08 = int(np.argmin(np.abs(np.asarray(deadlines) - 0.8)))
        imp = improvement(curves["random"][i08], curves["agent"][i08])
        measured[f"improvement_{gb:.0f}gb_at_0.8s"] = imp
        ratio = performance_ratio(curves["agent"], curves["optimal_star"])
        ratios[gb] = ratio
        measured[f"ratio_{gb:.0f}gb"] = ratio

    summary_lines = [
        f"Algorithm 2 vs random @0.8s: "
        + ", ".join(
            f"{gb:.0f}GB +{measured[f'improvement_{gb:.0f}gb_at_0.8s']:.1%}"
            for gb in (m / 1000 for m in memory_budgets)
        )
        + " (paper: 8GB +106.9%, 12GB +52.8%, 16GB +19.5%)",
        f"performance ratios: "
        + ", ".join(f"{gb:.0f}GB {r:.3f}" for gb, r in ratios.items())
        + f" vs 1-1/e={1 - 1 / np.e:.3f}",
        "expected shape: the improvement shrinks as memory grows (more room "
        "means even random packing eventually fits everything).",
    ]
    return ExperimentReport(
        experiment="fig11",
        title="Scheduling under memory-deadline constraints (Algorithm 2)",
        text="\n\n".join(sections + ["\n".join(summary_lines)]),
        measured=measured,
        paper=dict(PAPER),
    )
