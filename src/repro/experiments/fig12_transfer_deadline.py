"""Fig. 12: transferred agents under deadline constraints (§VI-F end).

Same transfer setting as Fig. 8 (Agent1=Stanford40-trained,
Agent2=VOC2012-trained) but scheduling with Algorithm 1 under deadlines.
Paper headline: at a 1.0 s deadline the agents improve recalled value over
random by +346.8%/+250.5% (Agent1) and +224.9%/+190.5% (Agent2) on
Dataset1/Dataset2.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import improvement
from repro.analysis.tables import format_series
from repro.experiments.common import ExperimentContext, ExperimentReport
from repro.scheduling.deadline import (
    CostQGreedyScheduler,
    RandomDeadlineScheduler,
    RelaxedOptimalDeadline,
)

PAPER = {
    "agent1_improvement_dataset1_at_1s": 3.468,
    "agent2_improvement_dataset1_at_1s": 2.249,
    "agent1_improvement_dataset2_at_1s": 2.505,
    "agent2_improvement_dataset2_at_1s": 1.905,
}

DATASET1 = "stanford40"
DATASET2 = "voc2012"
DEADLINES = (0.25, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0)


def run(
    ctx: ExperimentContext,
    deadlines: tuple[float, ...] = DEADLINES,
    n_items: int | None = None,
) -> ExperimentReport:
    for dataset in (DATASET1, DATASET2):
        ctx.ensure_truth(dataset)
    truth = ctx.truth
    schedulers = {
        "agent1": CostQGreedyScheduler(ctx.predictor(DATASET1, "dueling_dqn")),
        "agent2": CostQGreedyScheduler(ctx.predictor(DATASET2, "dueling_dqn")),
    }
    random_sched = RandomDeadlineScheduler(seed=41)
    star = RelaxedOptimalDeadline()

    sections = []
    measured: dict[str, float] = {}
    for tag, dataset in (("dataset1", DATASET1), ("dataset2", DATASET2)):
        item_ids = ctx.eval_ids(dataset, n_items)
        curves = {
            name: np.zeros(len(deadlines))
            for name in ("agent1", "agent2", "random", "optimal_star")
        }
        for di, deadline in enumerate(deadlines):
            for name, scheduler in schedulers.items():
                curves[name][di] = float(
                    np.mean(
                        [
                            scheduler.schedule(truth, i, deadline).recall_by(deadline)
                            for i in item_ids
                        ]
                    )
                )
            curves["random"][di] = float(
                np.mean(
                    [
                        random_sched.schedule(truth, i, deadline).recall_by(deadline)
                        for i in item_ids
                    ]
                )
            )
            curves["optimal_star"][di] = float(
                np.mean([star.recall(truth, i, deadline) for i in item_ids])
            )
        sections.append(
            format_series(
                "deadline_s",
                deadlines,
                curves,
                title=f"Fig. 12 ({tag}={dataset}): value recall vs deadline",
            )
        )
        i1 = int(np.argmin(np.abs(np.asarray(deadlines) - 1.0)))
        for name in ("agent1", "agent2"):
            imp = improvement(curves["random"][i1], curves[name][i1])
            measured[f"{name}_improvement_{tag}_at_1s"] = imp

    summary = "transferred agents vs random @1.0s deadline: " + ", ".join(
        f"{k}=+{v:.1%}" for k, v in measured.items()
    )
    return ExperimentReport(
        experiment="fig12",
        title="Transferred agents under deadline constraints",
        text="\n\n".join(sections + [summary]),
        measured=measured,
        paper=dict(PAPER),
    )
