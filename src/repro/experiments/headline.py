"""The paper's headline claims (§I): 53.1% time saved at 100% recall,
~70.0% at 80% recall, and +132-310% value under a 0.5 s budget.

This experiment aggregates the Fig. 5 and Fig. 10 machinery over the three
prediction datasets to produce those three numbers.  Note the paper's
70.0%/53.1% compare the DRL agent to *no policy* (executing everything);
the Fig. 4/5 percentages compare to the random policy.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import improvement, savings
from repro.analysis.tables import format_table
from repro.experiments.common import (
    ExperimentContext,
    ExperimentReport,
    PREDICTION_DATASETS,
)
from repro.scheduling.base import run_ordering_policy
from repro.scheduling.deadline import CostQGreedyScheduler, RandomDeadlineScheduler
from repro.scheduling.qgreedy import QGreedyPolicy

PAPER = {
    "time_saved_at_1.0": 0.531,
    "time_saved_at_0.8": 0.700,
    "improvement_at_0.5s_low": 1.32,
    "improvement_at_0.5s_high": 3.10,
}


def run(ctx: ExperimentContext, n_items: int | None = None) -> ExperimentReport:
    no_policy_time = ctx.zoo.total_time
    times_08 = []
    times_10 = []
    improvements = []
    for dataset in PREDICTION_DATASETS:
        truth = ctx.ensure_truth(dataset)
        item_ids = ctx.eval_ids(dataset, n_items)
        policy = QGreedyPolicy(ctx.predictor(dataset, "dueling_dqn"))
        for item_id in item_ids:
            trace = run_ordering_policy(policy, truth, item_id)
            _, t08 = trace.cost_to_recall(0.8)
            _, t10 = trace.cost_to_recall(1.0)
            times_08.append(t08)
            times_10.append(t10)
        # value improvement vs random at 0.5 s
        scheduler = CostQGreedyScheduler(ctx.predictor(dataset, "dueling_dqn"))
        random_sched = RandomDeadlineScheduler(seed=59)
        ours = np.mean(
            [scheduler.schedule(truth, i, 0.5).recall_by(0.5) for i in item_ids]
        )
        rand = np.mean(
            [random_sched.schedule(truth, i, 0.5).recall_by(0.5) for i in item_ids]
        )
        improvements.append(improvement(float(rand), float(ours)))

    saved_10 = savings(no_policy_time, float(np.mean(times_10)))
    saved_08 = savings(no_policy_time, float(np.mean(times_08)))
    rows = [
        ("time saved @100% recall (vs no policy)", "53.1%", f"{saved_10:.1%}"),
        ("time saved @80% recall (vs no policy)", "~70.0%", f"{saved_08:.1%}"),
        (
            "value vs random @0.5s budget",
            "+132% to +310%",
            f"+{min(improvements):.0%} to +{max(improvements):.0%}",
        ),
    ]
    table = format_table(
        ("headline claim", "paper", "measured"),
        rows,
        title="Section I headline claims",
    )
    return ExperimentReport(
        experiment="headline",
        title="Headline claims",
        text=table,
        measured={
            "time_saved_at_1.0": saved_10,
            "time_saved_at_0.8": saved_08,
            "improvement_at_0.5s_low": min(improvements),
            "improvement_at_0.5s_high": max(improvements),
        },
        paper=dict(PAPER),
    )
