"""Experiment runner CLI.

Usage::

    python -m repro.experiments.runner --all --scale bench
    python -m repro.experiments.runner --exp fig10 fig11 --scale paper
    python -m repro.experiments.runner --list

Reports are printed to stdout and optionally appended to a markdown file
(``--out results.md``) in the EXPERIMENTS.md format.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    fig02_motivation,
    fig04_05_prediction,
    fig06_rules,
    fig07_sequence,
    fig08_transfer,
    fig09_theta,
    fig10_deadline,
    fig11_memory,
    fig12_transfer_deadline,
    headline,
    table01_models,
    table03_overhead,
)
from repro.experiments.common import ExperimentContext

#: Experiment id -> module with a ``run(ctx)`` entry point.
EXPERIMENTS = {
    "table01": table01_models,
    "fig02": fig02_motivation,
    "fig04_05": fig04_05_prediction,
    "fig06": fig06_rules,
    "fig07": fig07_sequence,
    "fig08": fig08_transfer,
    "fig09": fig09_theta,
    "fig10": fig10_deadline,
    "fig11": fig11_memory,
    "fig12": fig12_transfer_deadline,
    "table03": table03_overhead,
    "headline": headline,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--exp", nargs="+", choices=sorted(EXPERIMENTS), help="experiments to run"
    )
    parser.add_argument(
        "--scale",
        default="bench",
        choices=("smoke", "bench", "paper"),
        help="experiment scale preset",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument("--out", default=None, help="append reports to this file")
    args = parser.parse_args(argv)

    if args.list:
        for exp_id in EXPERIMENTS:
            print(exp_id)
        return 0

    selected = list(EXPERIMENTS) if args.all or not args.exp else args.exp
    ctx = ExperimentContext(args.scale)
    reports = []
    for exp_id in selected:
        start = time.perf_counter()
        report = EXPERIMENTS[exp_id].run(ctx)
        elapsed = time.perf_counter() - start
        print(f"\n{report}\n[{exp_id} took {elapsed:.1f}s]")
        reports.append(report)

    if args.out:
        with open(args.out, "a") as fh:
            for report in reports:
                fh.write(f"\n## {report.experiment}: {report.title}\n\n")
                fh.write("```\n" + report.text + "\n```\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
