"""Table I: the deployed zoo — 10 tasks, 30 models, 1104 labels."""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.experiments.common import ExperimentContext, ExperimentReport
from repro.vocab import ALL_TASKS, FULL_TASK_SIZES

PAPER = {
    "n_tasks": 10,
    "n_models": 30,
    "n_labels": 1104,
}


def run(ctx: ExperimentContext) -> ExperimentReport:
    rows = []
    for task in ALL_TASKS:
        models = ctx.zoo.models_for_task(task)
        n_labels = len(ctx.space.vocabulary.labels_for(task))
        times = ", ".join(f"{m.time * 1000:.0f}ms" for m in models)
        rows.append((task, n_labels, len(models), times))
    rows.append(("TOTAL", len(ctx.space), len(ctx.zoo), f"{ctx.zoo.total_time:.2f}s"))
    table = format_table(
        ("task", "labels", "models", "time costs"),
        rows,
        title="Table I: visual analysis tasks and deployed models",
    )
    measured = {
        "n_tasks": float(len(ALL_TASKS)),
        "n_models": float(len(ctx.zoo)),
        "n_labels": float(len(ctx.space)),
    }
    if ctx.scale.is_full_world:
        expected = {t: FULL_TASK_SIZES[t] for t in ALL_TASKS}
        assert all(
            len(ctx.space.vocabulary.labels_for(t)) == n for t, n in expected.items()
        )
    return ExperimentReport(
        experiment="table01",
        title="Model zoo summary",
        text=table,
        measured=measured,
        paper={k: float(v) for k, v in PAPER.items()},
    )
