"""Table III: scheduling overhead of the DRL agent (§VI-H).

The paper measures 3-6 ms per selection and ~100 MB CPU memory for the
agent, versus 50-400 ms / 0.5-8 GB GPU for the vision models — scheduling
overhead is negligible.  We time actual Q-network forward passes and size
the network's parameter arrays.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.tables import format_table
from repro.experiments.common import ExperimentContext, ExperimentReport

PAPER = {
    "selection_ms_low": 3.0,
    "selection_ms_high": 6.0,
    "agent_memory_mb": 100.0,
    "model_ms_low": 50.0,
    "model_ms_high": 400.0,
}


def run(
    ctx: ExperimentContext,
    dataset: str = "mscoco2017",
    n_trials: int = 200,
) -> ExperimentReport:
    agent = ctx.agent(dataset, "dueling_dqn")
    rng = np.random.default_rng(0)
    observations = (rng.random((n_trials, len(ctx.space))) < 0.02).astype(np.float64)

    # Warm up, then time one selection (a Q forward pass + argmax) at a time.
    agent.q_values(observations[0])
    start = time.perf_counter()
    for i in range(n_trials):
        q = agent.q_values(observations[i])
        int(np.argmax(q))
    elapsed_ms = (time.perf_counter() - start) / n_trials * 1000

    param_bytes = sum(p.nbytes for p in agent.online.params())
    # Online + target nets plus Adam's two moment buffers.
    agent_mb = param_bytes * 4 / 1e6

    model_times = ctx.zoo.times * 1000
    rows = [
        (
            "DRL agent selection",
            f"{PAPER['selection_ms_low']:.0f}-{PAPER['selection_ms_high']:.0f}ms",
            f"{elapsed_ms:.2f}ms",
        ),
        ("DRL agent memory", f"{PAPER['agent_memory_mb']:.0f}MB", f"{agent_mb:.1f}MB"),
        (
            "vision model execution",
            f"{PAPER['model_ms_low']:.0f}-{PAPER['model_ms_high']:.0f}ms",
            f"{model_times.min():.0f}-{model_times.max():.0f}ms",
        ),
        (
            "vision model memory",
            "500-8000MB",
            f"{ctx.zoo.mems.min():.0f}-{ctx.zoo.mems.max():.0f}MB",
        ),
    ]
    table = format_table(
        ("quantity", "paper", "measured"),
        rows,
        title="Table III: computing cost of DRL agent vs labeling models",
    )
    measured = {
        "selection_ms": elapsed_ms,
        "agent_memory_mb": agent_mb,
        "model_ms_low": float(model_times.min()),
        "model_ms_high": float(model_times.max()),
    }
    summary = (
        "selection overhead is orders of magnitude below model execution "
        "time — the framework's overhead is negligible, as in the paper"
    )
    return ExperimentReport(
        experiment="table03",
        title="Scheduling overhead",
        text=table + "\n" + summary,
        measured=measured,
        paper=dict(PAPER),
    )
