"""Model-relationship graph (the paper's §VIII future work).

    "A critical innovative component of our framework is the propose and
    construction of the model-relationship graph.  Firstly, we would like
    to design a fast method to construct this efficiently and effectively."

This package constructs that graph from recorded zoo executions: nodes are
models, and a directed edge ``i -> j`` carries the empirical lift that
model ``i``'s valuable output gives to the probability that model ``j`` is
also valuable.  The graph powers a transparent scheduling policy
(:class:`~repro.graph.policy.GraphPolicy`) that sits between the
handcrafted rules of Table II and the learned DRL agent — it is, in
effect, the *automatically learned* version of Table II.
"""

from repro.graph.relationship import ModelRelationshipGraph, build_relationship_graph
from repro.graph.policy import GraphPolicy

__all__ = ["ModelRelationshipGraph", "build_relationship_graph", "GraphPolicy"]
