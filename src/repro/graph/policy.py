"""Scheduling with the model-relationship graph.

:class:`GraphPolicy` is an ordering policy that ranks unexecuted models by
their posterior usefulness given which executed models were (not) useful —
the automatically-constructed counterpart of the Table II rule policy, and
an interpretable middle ground between rules and the DRL agent.

It also plugs into Algorithm 1/2 as a :class:`QValuePredictor`
(:class:`GraphPredictor`), predicting ``P(useful) * expected_value`` per
model.
"""

from __future__ import annotations

import numpy as np

from repro.core.state import LabelingState
from repro.graph.relationship import ModelRelationshipGraph
from repro.scheduling.base import OrderingPolicy
from repro.scheduling.qgreedy import QValuePredictor
from repro.zoo.oracle import GroundTruth


class _GraphEvidence:
    """Tracks which executed models were useful on the current item."""

    def __init__(self) -> None:
        self.useful: list[int] = []
        self.useless: list[int] = []

    def observe(self, state: LabelingState, model_index: int, gained: float) -> None:
        if gained > 0:
            self.useful.append(model_index)
        else:
            self.useless.append(model_index)


class GraphPolicy(OrderingPolicy):
    """Greedy on posterior usefulness from the relationship graph."""

    name = "graph"

    def __init__(self, graph: ModelRelationshipGraph):
        self.graph = graph
        self._evidence = _GraphEvidence()
        self._last_value = 0.0

    def reset(self, truth: GroundTruth, item_id: str) -> None:
        self._evidence = _GraphEvidence()
        self._last_value = 0.0

    def next_model(self, state: LabelingState) -> int:
        posterior = self.graph.expected_usefulness(
            self._evidence.useful, self._evidence.useless
        )
        remaining = state.remaining
        return int(remaining[np.argmax(posterior[remaining])])

    def observe(self, state: LabelingState, model_index: int) -> None:
        gained = state.value - self._last_value
        self._evidence.observe(state, model_index, gained)
        self._last_value = state.value


class GraphPredictor(QValuePredictor):
    """Graph-based value predictions for the budgeted schedulers.

    Predicted value of model ``m`` = posterior usefulness x the model's
    average valuable-output value over the training corpus.  No neural
    network involved — a fully interpretable Algorithm 1/2 driver.
    """

    def __init__(
        self,
        graph: ModelRelationshipGraph,
        truth: GroundTruth,
        train_item_ids=None,
    ):
        self.graph = graph
        ids = list(train_item_ids if train_item_ids is not None else truth.item_ids)
        n = len(truth.zoo)
        sums = np.zeros(n)
        counts = np.zeros(n)
        for item_id in ids:
            solo = truth.solo_values(item_id)
            useful = solo > 0
            sums[useful] += solo[useful]
            counts[useful] += 1
        with np.errstate(invalid="ignore"):
            self.mean_useful_value = np.where(counts > 0, sums / counts, 0.0)

    def predict(self, state: LabelingState) -> np.ndarray:
        # Evidence comes only from *executed* models, whose outputs are
        # revealed (replayed from the record, as everywhere else): a model
        # counts as useful when its valuable labels are in the state.
        useful: list[int] = []
        useless: list[int] = []
        for j in np.nonzero(state.executed)[0]:
            ids, _ = state.truth.valuable(state.item_id, int(j))
            if len(ids) and (state.vector[ids] > 0).all():
                useful.append(int(j))
            else:
                useless.append(int(j))
        posterior = self.graph.expected_usefulness(useful, useless)
        return posterior * self.mean_useful_value
