"""Construction of the model-relationship graph from recorded executions.

For every ordered model pair ``(i, j)`` we estimate, over a training
corpus:

* ``P(j useful)`` — the base rate that model ``j`` emits valuable labels;
* ``P(j useful | i useful)`` — conditioned on model ``i`` having been
  useful on the same item;
* the **lift** ``P(j|i) / P(j)`` — how much evidence model ``i``'s success
  carries about model ``j``.

Edges with lift far from 1 are exactly the relationships the paper's
Table II hand-writes ("person => pose estimation") and its DRL agent
learns implicitly; here they are estimated in one cheap counting pass
(the "fast method to construct this" the paper calls for).

The graph is materialized as a :class:`networkx.DiGraph` for inspection
and export; scheduling uses the dense arrays directly.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.zoo.oracle import GroundTruth


@dataclass
class ModelRelationshipGraph:
    """Empirical usefulness statistics over a model zoo.

    Attributes
    ----------
    model_names:
        Zoo-ordered model names (node labels).
    base_rate:
        ``P(model useful)`` per model.
    cond_useful:
        ``cond_useful[i, j] = P(j useful | i useful)``.
    cond_useless:
        ``cond_useless[i, j] = P(j useful | i not useful)``.
    support:
        Number of items the statistics were estimated from.
    """

    model_names: tuple[str, ...]
    base_rate: np.ndarray
    cond_useful: np.ndarray
    cond_useless: np.ndarray
    support: int

    @property
    def n_models(self) -> int:
        return len(self.model_names)

    def lift(self, i: int, j: int) -> float:
        """Lift of j's usefulness given i was useful (1.0 = independent)."""
        base = self.base_rate[j]
        if base <= 0:
            return 1.0
        return float(self.cond_useful[i, j] / base)

    def to_networkx(self, min_lift_ratio: float = 1.5) -> nx.DiGraph:
        """Export edges whose lift deviates from 1 by ``min_lift_ratio``.

        An edge ``i -> j`` is kept when ``lift >= min_lift_ratio`` (promote)
        or ``lift <= 1/min_lift_ratio`` (demote), mirroring Table II's 2x /
        0.5x factors.
        """
        if min_lift_ratio < 1.0:
            raise ValueError("min_lift_ratio must be >= 1")
        graph = nx.DiGraph()
        for i, name in enumerate(self.model_names):
            graph.add_node(name, base_rate=float(self.base_rate[i]))
        for i in range(self.n_models):
            for j in range(self.n_models):
                if i == j:
                    continue
                lift = self.lift(i, j)
                if lift >= min_lift_ratio or (
                    lift > 0 and lift <= 1.0 / min_lift_ratio
                ):
                    graph.add_edge(
                        self.model_names[i],
                        self.model_names[j],
                        lift=float(lift),
                        conditional=float(self.cond_useful[i, j]),
                    )
        return graph

    def strongest_edges(self, k: int = 10) -> list[tuple[str, str, float]]:
        """Top-k (source, target, lift) promote edges — the learned Table II."""
        edges = []
        for i in range(self.n_models):
            for j in range(self.n_models):
                if i != j:
                    edges.append(
                        (self.model_names[i], self.model_names[j], self.lift(i, j))
                    )
        edges.sort(key=lambda e: -e[2])
        return edges[:k]

    def expected_usefulness(
        self, executed_useful: Iterable[int], executed_useless: Iterable[int]
    ) -> np.ndarray:
        """Posterior usefulness estimate per model given observed evidence.

        A naive-Bayes-flavoured pool: the geometric mean of the conditional
        rates contributed by each piece of evidence, falling back to the
        base rate with no evidence.  Cheap, order-independent, and good
        enough to rank models (see :class:`~repro.graph.policy.GraphPolicy`).
        """
        useful = list(executed_useful)
        useless = list(executed_useless)
        if not useful and not useless:
            return self.base_rate.copy()
        logs = np.zeros(self.n_models, dtype=np.float64)
        count = 0
        eps = 1e-6
        for i in useful:
            logs += np.log(np.clip(self.cond_useful[i], eps, 1.0))
            count += 1
        for i in useless:
            logs += np.log(np.clip(self.cond_useless[i], eps, 1.0))
            count += 1
        return np.exp(logs / count)


def build_relationship_graph(
    truth: GroundTruth, item_ids: Iterable[str] | None = None
) -> ModelRelationshipGraph:
    """One counting pass over recorded executions -> relationship graph.

    Runs in ``O(items * models^2)`` with plain array ops — the "fast
    construction" answer to the paper's future-work question.
    """
    ids = list(item_ids if item_ids is not None else truth.item_ids)
    if not ids:
        raise ValueError("need at least one item to estimate the graph")
    n = len(truth.zoo)
    useful_matrix = np.zeros((len(ids), n), dtype=bool)
    for row, item_id in enumerate(ids):
        useful_matrix[row] = truth.record(item_id).useful_models

    counts = useful_matrix.sum(axis=0).astype(np.float64)
    base = counts / len(ids)

    # joint[i, j] = #items where both i and j were useful
    joint = (useful_matrix.T.astype(np.float64)) @ useful_matrix.astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        cond_useful = np.where(counts[:, None] > 0, joint / counts[:, None], base)
    anti_counts = len(ids) - counts
    anti_joint = (~useful_matrix).T.astype(np.float64) @ useful_matrix.astype(
        np.float64
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        cond_useless = np.where(
            anti_counts[:, None] > 0, anti_joint / anti_counts[:, None], base
        )

    return ModelRelationshipGraph(
        model_names=truth.zoo.names,
        base_rate=base,
        cond_useful=cond_useful,
        cond_useless=cond_useless,
        support=len(ids),
    )
