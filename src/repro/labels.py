"""Global label space: a stable bijection between label names and ids.

The DRL agent's observation (the *labeling state*, Section IV) is an
``n``-dimensional binary vector where ``n = |L(M)|`` is the number of labels
supported by the whole zoo (1104 at full scale).  :class:`LabelSpace` owns
that indexing: every label gets a dense global id, and every task owns a
contiguous id range so task-level slices are cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.vocab import ALL_TASKS, Vocabulary, build_vocabulary


@dataclass(frozen=True)
class LabelInfo:
    """Metadata for one label in the global space."""

    global_id: int
    task: str
    local_id: int
    name: str


class LabelSpace:
    """Dense global indexing of every label supported by the model zoo.

    Parameters
    ----------
    vocabulary:
        The per-task vocabulary to index.  Tasks are laid out in the fixed
        :data:`repro.vocab.ALL_TASKS` order so ids are reproducible across
        processes.
    """

    def __init__(self, vocabulary: Vocabulary):
        self._vocabulary = vocabulary
        self._labels: list[LabelInfo] = []
        self._by_name: dict[str, LabelInfo] = {}
        self._task_ranges: dict[str, range] = {}
        next_id = 0
        for task in ALL_TASKS:
            names = vocabulary.labels_for(task)
            start = next_id
            for local_id, name in enumerate(names):
                info = LabelInfo(
                    global_id=next_id, task=task, local_id=local_id, name=name
                )
                self._labels.append(info)
                if name in self._by_name:
                    raise ValueError(f"duplicate label name across tasks: {name}")
                self._by_name[name] = info
                next_id += 1
            self._task_ranges[task] = range(start, next_id)

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def vocabulary(self) -> Vocabulary:
        return self._vocabulary

    # -- lookups -----------------------------------------------------------

    def info(self, global_id: int) -> LabelInfo:
        """Metadata for a global label id."""
        return self._labels[global_id]

    def name_of(self, global_id: int) -> str:
        return self._labels[global_id].name

    def id_of(self, name: str) -> int:
        """Global id of a label name; raises ``KeyError`` if unknown."""
        return self._by_name[name].global_id

    def task_of(self, global_id: int) -> str:
        return self._labels[global_id].task

    def task_range(self, task: str) -> range:
        """Contiguous global-id range owned by ``task``."""
        return self._task_ranges[task]

    def task_ids(self, task: str) -> np.ndarray:
        """Global ids owned by ``task`` as an int array."""
        r = self._task_ranges[task]
        return np.arange(r.start, r.stop, dtype=np.int64)

    def ids_of(self, names) -> np.ndarray:
        """Global ids for an iterable of label names."""
        return np.asarray(
            [self._by_name[n].global_id for n in names], dtype=np.int64
        )

    # -- vector helpers ----------------------------------------------------

    def empty_state(self) -> np.ndarray:
        """A fresh all-zeros labeling state vector (float32)."""
        return np.zeros(len(self._labels), dtype=np.float32)

    def names_of_state(self, state: np.ndarray) -> list[str]:
        """Names of the labels set in a binary state vector."""
        (idx,) = np.nonzero(state)
        return [self._labels[int(i)].name for i in idx]


def build_label_space(scale: str = "full") -> LabelSpace:
    """Convenience constructor: vocabulary + label space at ``scale``."""
    return LabelSpace(build_vocabulary(scale))
