"""End-to-end observability: metrics registry, request traces, exporters.

This package is the serving stack's single observability surface —
everything later operational tooling (gateway quotas, cluster backend
health, SLO dashboards) reads comes through here:

* :mod:`repro.obs.registry` — :class:`MetricsRegistry`, the unified home
  of named counters/gauges/histograms plus pull-time collectors that
  absorb pre-existing surfaces (service telemetry, backend chunk stats).
* :mod:`repro.obs.trace` — per-request :class:`RequestTrace` spans
  (``admitted → queued → batched → scheduled → completed/...``) in a
  bounded :class:`TraceBuffer` ring.
* :mod:`repro.obs.instrument` — process-global dispatch-tick hooks the
  schedulers and engine call; :func:`install` / :func:`uninstall` toggle
  them, and the bare path costs one branch when off.
* :mod:`repro.obs.server` — :class:`MetricsServer`, the stdlib HTTP
  thread behind ``serve --metrics-port`` (``/metrics``,
  ``/metrics.json``, ``/traces``, ``/healthz``).
* :mod:`repro.obs.bridge` — :func:`bind_service`, exporting a
  :class:`~repro.serving.service.LabelingService` snapshot as metric
  families at scrape time.

The whole package is stdlib-only, so the scheduling and engine layers
can import their hooks without dragging the serving tier (or numpy)
into their import graphs.  ``benchmarks/bench_obs_overhead.py`` gates
the fully-instrumented dispatch path at <3% overhead versus bare.
"""

from repro.obs.bridge import bind_service, service_families
from repro.obs.instrument import (
    TickInstrumentation,
    batch_observer,
    engine_observer,
    install,
    installed,
    uninstall,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.server import MetricsServer
from repro.obs.trace import (
    SPAN_STAGES,
    TERMINAL_STAGES,
    RequestTrace,
    TraceBuffer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "MetricsServer",
    "RequestTrace",
    "SPAN_STAGES",
    "TERMINAL_STAGES",
    "TickInstrumentation",
    "TraceBuffer",
    "batch_observer",
    "bind_service",
    "engine_observer",
    "install",
    "installed",
    "service_families",
    "uninstall",
]
