"""Scrape-time adapters: existing telemetry surfaces -> metric families.

The serving tier already keeps rich accumulators — the
:class:`~repro.serving.telemetry.ServiceTelemetry` snapshot, the result
cache's :meth:`~repro.serving.result_cache.ResultCache.stats`, the
process backend's ``chunk_stats`` and per-pid dispatch counters.  Rather
than double-count into registry metrics on the hot path, this module
converts those snapshots into :class:`~repro.obs.registry.MetricFamily`
records **when the registry is scraped**: :func:`bind_service` registers
one pull-time collector per service, and the scattered surfaces become
one uniform ``/metrics`` namespace at zero steady-state cost.

Exported families (the full catalog lives in README "Observability"):

* ``repro_requests_total{outcome=...}``, ``repro_batches_total{reason=...}``
* ``repro_queue_depth``, ``repro_in_flight``, ``repro_uptime_seconds``
* ``repro_regime_items_total{regime}``, ``repro_worker_items_total{worker}``
* ``repro_queue_wait_seconds`` / ``repro_service_time_seconds`` summaries
* ``repro_slo_*{regime}`` — completions, expiries, failures, deadline-miss
  ratio, time-to-first-result, end-to-end latency summary
* ``repro_tenant_queue_wait_seconds{tenant}`` /
  ``repro_tenant_slo_*{tenant}`` — the same views sliced per tenant, for
  requests whose spec carried a :attr:`~repro.spec.LabelingSpec.tenant`
  (the gateway's fairness and isolation numbers)
* ``repro_cache_*`` and ``repro_backend_*`` when the service has a result
  cache / a chunk-counting backend
* ``repro_journal_*`` / ``repro_recovery_*`` when the service carries a
  write-ahead journal — records, fsyncs, pending backlog, compaction,
  and replay outcomes of each ``recover()``

This module imports only :mod:`repro.obs.registry`; the service imports
*it* lazily (only when constructed with a registry), so the obs package
stays out of the scheduling/engine import graph.
"""

from __future__ import annotations

from repro.obs.registry import MetricFamily, MetricsRegistry

__all__ = ["bind_service", "service_families"]


def _summary(name: str, help: str, stats, labels: dict | None = None):
    """Three families (quantiles, sum, count) from one LatencyStats."""
    base = dict(labels or {})
    quantiles = tuple(
        ({**base, "quantile": q}, value)
        for q, value in (
            ("0.5", stats.p50),
            ("0.95", stats.p95),
            ("0.99", stats.p99),
        )
    )
    return [
        MetricFamily(name, "summary", help, quantiles),
        MetricFamily(
            f"{name}_sum",
            "counter",
            f"{help} (sum)",
            ((base, stats.mean * stats.count),),
        ),
        MetricFamily(
            f"{name}_count", "counter", f"{help} (count)", ((base, stats.count),)
        ),
    ]


def _merge(families: list[MetricFamily]) -> list[MetricFamily]:
    """Coalesce same-name families (per-regime summaries) into one."""
    merged: dict[str, MetricFamily] = {}
    for family in families:
        existing = merged.get(family.name)
        if existing is None:
            merged[family.name] = family
        else:
            merged[family.name] = MetricFamily(
                family.name,
                family.kind,
                family.help,
                existing.samples + family.samples,
            )
    return list(merged.values())


def service_families(service) -> list[MetricFamily]:
    """One service's full metric surface, computed from live snapshots."""
    snap = service.snapshot()
    families: list[MetricFamily] = [
        MetricFamily(
            "repro_requests_total",
            "counter",
            "Requests by outcome counter",
            tuple(
                ({"outcome": name}, count) for name, count in snap.counters.items()
            ),
        ),
        MetricFamily(
            "repro_batches_total",
            "counter",
            "Micro-batches dispatched by flush reason",
            tuple(
                ({"reason": reason}, count)
                for reason, count in snap.flushes.items()
            ),
        ),
        MetricFamily(
            "repro_batched_items_total",
            "counter",
            "Items dispatched across all micro-batches",
            (({}, snap.batched_items),),
        ),
        MetricFamily(
            "repro_regime_items_total",
            "counter",
            "Items dispatched per scheduling regime",
            tuple(
                ({"regime": regime}, count)
                for regime, count in snap.regimes.items()
            ),
        ),
        MetricFamily(
            "repro_worker_items_total",
            "counter",
            "Items dispatched per scheduling worker (thread or pid)",
            tuple(
                ({"worker": worker}, count)
                for worker, count in snap.workers.items()
            ),
        ),
        MetricFamily(
            "repro_queue_depth",
            "gauge",
            "Requests waiting in the admission queue",
            (({}, snap.queue_depth),),
        ),
        MetricFamily(
            "repro_in_flight",
            "gauge",
            "Requests inside worker batches right now",
            (({}, snap.in_flight),),
        ),
        MetricFamily(
            "repro_uptime_seconds",
            "gauge",
            "Seconds since telemetry started or was reset",
            (({}, snap.elapsed),),
        ),
    ]
    families += _summary(
        "repro_queue_wait_seconds", "Queue wait per request", snap.queue_wait
    )
    families += _summary(
        "repro_service_time_seconds", "Batch service time", snap.service_time
    )
    for regime, slo in snap.slo.items():
        labels = {"regime": regime}
        families += [
            MetricFamily(
                "repro_slo_completed_total",
                "counter",
                "Requests completed per regime",
                ((labels, slo.completed),),
            ),
            MetricFamily(
                "repro_slo_expired_total",
                "counter",
                "Requests expired (admission deadline missed) per regime",
                ((labels, slo.expired),),
            ),
            MetricFamily(
                "repro_slo_failed_total",
                "counter",
                "Requests failed per regime",
                ((labels, slo.failed),),
            ),
            MetricFamily(
                "repro_slo_deadline_miss_ratio",
                "gauge",
                "expired / (completed + expired) per regime",
                ((labels, slo.deadline_miss_rate),),
            ),
        ]
        if slo.time_to_first_result is not None:
            families.append(
                MetricFamily(
                    "repro_slo_time_to_first_result_seconds",
                    "gauge",
                    "Submit-to-first-completion latency per regime",
                    ((labels, slo.time_to_first_result),),
                )
            )
        families += _summary(
            "repro_slo_e2e_seconds",
            "Submit-to-completion latency per regime",
            slo.e2e,
            labels,
        )
    for tenant, stats in snap.tenant_queue_wait.items():
        families += _summary(
            "repro_tenant_queue_wait_seconds",
            "Queue wait per request per tenant",
            stats,
            {"tenant": tenant},
        )
    for tenant, slo in snap.tenant_slo.items():
        labels = {"tenant": tenant}
        families += [
            MetricFamily(
                "repro_tenant_slo_completed_total",
                "counter",
                "Requests completed per tenant",
                ((labels, slo.completed),),
            ),
            MetricFamily(
                "repro_tenant_slo_expired_total",
                "counter",
                "Requests expired (admission deadline missed) per tenant",
                ((labels, slo.expired),),
            ),
            MetricFamily(
                "repro_tenant_slo_failed_total",
                "counter",
                "Requests failed per tenant",
                ((labels, slo.failed),),
            ),
            MetricFamily(
                "repro_tenant_slo_deadline_miss_ratio",
                "gauge",
                "expired / (completed + expired) per tenant",
                ((labels, slo.deadline_miss_rate),),
            ),
        ]
        families += _summary(
            "repro_tenant_slo_e2e_seconds",
            "Submit-to-completion latency per tenant",
            slo.e2e,
            labels,
        )
    if service.cache is not None:
        stats = service.cache.stats()
        families += [
            MetricFamily(
                "repro_cache_events_total",
                "counter",
                "Result-cache traffic by event",
                (
                    ({"event": "hit"}, stats.hits),
                    ({"event": "miss"}, stats.misses),
                    ({"event": "coalesced"}, stats.coalesced),
                    ({"event": "eviction"}, stats.evictions),
                ),
            ),
            MetricFamily(
                "repro_cache_size",
                "gauge",
                "Completed results currently cached",
                (({}, stats.size),),
            ),
            MetricFamily(
                "repro_cache_inflight",
                "gauge",
                "Claimed-but-unsettled cache keys (single-flight)",
                (({}, stats.inflight),),
            ),
        ]
    chunk_stats = getattr(type(service.engine.backend), "chunk_stats", None)
    if chunk_stats is not None:
        stats = service.engine.backend.chunk_stats
        families += [
            MetricFamily(
                "repro_backend_chunks_total",
                "counter",
                "Chunks dispatched to scheduling workers",
                (({}, stats["chunks"]),),
            ),
            MetricFamily(
                "repro_backend_chunk_items_total",
                "counter",
                "Items scheduled through worker chunks",
                (({}, stats["items"]),),
            ),
            MetricFamily(
                "repro_backend_chunk_seconds_total",
                "counter",
                "Worker-reported wall seconds across chunks",
                (({}, stats["seconds"]),),
            ),
            MetricFamily(
                "repro_backend_ewma_item_seconds",
                "gauge",
                "EWMA per-item scheduling seconds driving chunk sizing",
                (({}, stats["ewma_item_s"] or 0.0),),
            ),
            MetricFamily(
                "repro_backend_last_chunk_size",
                "gauge",
                "Chunk size the most recent job sharded with",
                (({}, stats["last_chunk_size"] or 0),),
            ),
            MetricFamily(
                "repro_backend_transport_total",
                "counter",
                "Chunk payloads by transport path (shm fast path vs pickle)",
                tuple(
                    ({"path": path}, count)
                    for path, count in stats["transport"].items()
                ),
            ),
        ]
    journal = getattr(service, "journal", None)
    if journal is not None:
        jstats = journal.stats()
        families += [
            MetricFamily(
                "repro_journal_records_total",
                "counter",
                "Write-ahead journal records by kind",
                (
                    ({"kind": "admit"}, jstats.admitted),
                    ({"kind": "terminal"}, sum(jstats.terminals.values())),
                    ({"kind": "custom"}, jstats.custom),
                ),
            ),
            MetricFamily(
                "repro_journal_bytes_written_total",
                "counter",
                "Bytes appended to the write-ahead journal",
                (({}, jstats.bytes_written),),
            ),
            MetricFamily(
                "repro_journal_fsyncs_total",
                "counter",
                "fsync calls issued by the journal",
                (({}, jstats.fsyncs),),
            ),
            MetricFamily(
                "repro_journal_pending",
                "gauge",
                "Admitted-but-unsettled journal entries (replayed on recover)",
                (({}, jstats.pending),),
            ),
            MetricFamily(
                "repro_journal_segments",
                "gauge",
                "Live journal segment files on disk",
                (({}, jstats.segments),),
            ),
            MetricFamily(
                "repro_journal_checkpoints_total",
                "counter",
                "Watermark checkpoints written",
                (({}, jstats.checkpoints),),
            ),
            MetricFamily(
                "repro_journal_segments_compacted_total",
                "counter",
                "Fully-settled segments deleted by compaction",
                (({}, jstats.compacted),),
            ),
            MetricFamily(
                "repro_journal_torn_tails_total",
                "counter",
                "Torn segment tails truncated during replay",
                (({}, jstats.torn_tails),),
            ),
        ]
    recovery_stats = getattr(service, "recovery_stats", None)
    if recovery_stats is not None:
        rec = recovery_stats()
        families += [
            MetricFamily(
                "repro_recovery_runs_total",
                "counter",
                "recover() invocations on this service",
                (({}, rec["runs"]),),
            ),
            MetricFamily(
                "repro_recovery_requests_total",
                "counter",
                "Journal entries replayed through recovery, by outcome",
                (
                    ({"outcome": "recovered"}, rec["recovered"]),
                    ({"outcome": "failed"}, rec["failed"]),
                ),
            ),
            MetricFamily(
                "repro_recovery_last_replayed",
                "gauge",
                "Entries replayed by the most recent recover()",
                (({}, rec["last_replayed"]),),
            ),
            MetricFamily(
                "repro_recovery_last_duration_seconds",
                "gauge",
                "Wall seconds the most recent recover() took",
                (({}, rec["last_duration"]),),
            ),
        ]
    cluster_stats = getattr(type(service.engine.backend), "cluster_stats", None)
    if cluster_stats is not None:
        stats = service.engine.backend.cluster_stats
        workers = stats["workers"]
        families += [
            MetricFamily(
                "repro_cluster_worker_alive",
                "gauge",
                "Cluster worker connection liveness (1 = connected)",
                tuple(
                    ({"worker": address}, 1 if info["alive"] else 0)
                    for address, info in workers.items()
                ),
            ),
            MetricFamily(
                "repro_cluster_snapshot_ships_total",
                "counter",
                "World snapshots shipped per cluster worker",
                tuple(
                    ({"worker": address}, info["snapshot_ships"])
                    for address, info in workers.items()
                ),
            ),
            MetricFamily(
                "repro_cluster_redispatched_total",
                "counter",
                "Chunks re-dispatched away from a dead cluster worker",
                tuple(
                    ({"worker": address}, info["redispatched"])
                    for address, info in workers.items()
                ),
            ),
            MetricFamily(
                "repro_cluster_refreshes_total",
                "counter",
                "Fleet-wide predictor weight hot-swaps",
                (({}, stats["refreshes"]),),
            ),
        ]
    return _merge(families)


def bind_service(registry: MetricsRegistry, service) -> None:
    """Export ``service`` through ``registry`` as a pull-time collector."""
    registry.register_collector(lambda: service_families(service))
