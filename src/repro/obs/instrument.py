"""Dispatch-tick instrumentation: the hooks the hot path actually calls.

The vectorized ``schedule_batch`` dispatch tick is the system's hot loop
— one stacked Q-forward plus a masked argmax per round — and the engine's
``_run_batch`` wraps every backend dispatch.  Both ask this module for an
observer; when nothing is installed the answer is ``None`` and the hot
path pays exactly one module-global read and one branch, with **zero**
timing calls — that near-free bare path is what lets the overhead
benchmark compare instrumented against uninstrumented dispatch honestly.

:func:`install` binds a :class:`TickInstrumentation` to a
:class:`~repro.obs.registry.MetricsRegistry`; from then on every
schedule tick records, per regime:

* ``repro_sched_tick_seconds``        — per-round tick duration (summary)
* ``repro_sched_rounds_total``        — rounds, i.e. stacked Q-forwards
* ``repro_sched_models_executed_total`` — model executions selected
* ``repro_sched_batches_total`` / ``repro_sched_batch_items_total``

and every engine dispatch records, per backend and regime:

* ``repro_engine_batches_total`` / ``repro_engine_items_total``
* ``repro_engine_batch_seconds``      — whole-dispatch duration (summary)

A :class:`BatchTickObserver` accumulates locally (plain attribute adds on
an object owned by one thread) and flushes into the registry **once** per
batch in :meth:`~BatchTickObserver.done`, so per-round cost inside the
lock-step loop is two ``perf_counter`` calls and a couple of adds.

Installation is process-global on purpose: schedulers are constructed
ad hoc deep inside backends, so threading a registry handle through every
call chain would touch a dozen signatures for the same effect.  Workers
of the process backend run in *other* processes and are therefore not
covered by these hooks — their timings arrive via the backend's
``chunk_stats``, exported by the serving bridge.
"""

from __future__ import annotations

import threading

from repro.obs.registry import MetricsRegistry

__all__ = [
    "BatchTickObserver",
    "TickInstrumentation",
    "batch_observer",
    "engine_observer",
    "install",
    "installed",
    "uninstall",
]

_LOCK = threading.Lock()
_ACTIVE: "TickInstrumentation | None" = None


class TickInstrumentation:
    """The registry-bound sink for scheduler-tick and engine-batch events."""

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self._tick_seconds = registry.histogram(
            "repro_sched_tick_seconds",
            "Duration of one vectorized dispatch-tick round",
            labelnames=("regime",),
        )
        self._rounds = registry.counter(
            "repro_sched_rounds_total",
            "Dispatch-tick rounds run (one stacked Q-forward each)",
            labelnames=("regime",),
        )
        self._models = registry.counter(
            "repro_sched_models_executed_total",
            "Model executions selected by dispatch ticks",
            labelnames=("regime",),
        )
        self._batches = registry.counter(
            "repro_sched_batches_total",
            "Vectorized schedule_batch calls",
            labelnames=("regime",),
        )
        self._batch_items = registry.counter(
            "repro_sched_batch_items_total",
            "Items entering schedule_batch calls",
            labelnames=("regime",),
        )
        self._engine_batches = registry.counter(
            "repro_engine_batches_total",
            "Engine batch dispatches",
            labelnames=("backend", "regime"),
        )
        self._engine_items = registry.counter(
            "repro_engine_items_total",
            "Items dispatched through the engine",
            labelnames=("backend", "regime"),
        )
        self._engine_seconds = registry.histogram(
            "repro_engine_batch_seconds",
            "Wall seconds per engine batch dispatch (record+schedule)",
            labelnames=("backend", "regime"),
        )

    def observe_batch(
        self, regime: str, items: int, rounds: int, executed: int, ticks
    ) -> None:
        """Fold one finished schedule_batch into the registry."""
        self._batches.labels(regime=regime).inc()
        self._batch_items.labels(regime=regime).inc(items)
        self._rounds.labels(regime=regime).inc(rounds)
        self._models.labels(regime=regime).inc(executed)
        hist = self._tick_seconds.labels(regime=regime)
        for seconds in ticks:
            hist.observe(seconds)

    def observe_engine(
        self, backend: str, regime: str, items: int, seconds: float
    ) -> None:
        self._engine_batches.labels(backend=backend, regime=regime).inc()
        self._engine_items.labels(backend=backend, regime=regime).inc(items)
        self._engine_seconds.labels(backend=backend, regime=regime).observe(seconds)


class BatchTickObserver:
    """Per-call accumulator handed to one schedule_batch invocation.

    Owned by the calling thread — plain attribute math, no locks — and
    flushed into the shared registry exactly once, in :meth:`done`.
    """

    __slots__ = ("_sink", "regime", "items", "rounds", "executed", "ticks")

    def __init__(self, sink: TickInstrumentation, regime: str, items: int):
        self._sink = sink
        self.regime = regime
        self.items = items
        self.rounds = 0
        self.executed = 0
        self.ticks: list[float] = []

    def tick(self, seconds: float, executed: int) -> None:
        """Record one lock-step round: its duration and selections made."""
        self.rounds += 1
        self.executed += executed
        self.ticks.append(seconds)

    def done(self) -> None:
        self._sink.observe_batch(
            self.regime, self.items, self.rounds, self.executed, self.ticks
        )


def install(registry: MetricsRegistry) -> TickInstrumentation:
    """Route dispatch-tick telemetry into ``registry`` (process-global).

    Idempotent for the same registry; installing over a different one
    replaces it (last writer wins — a test or bench tearing down should
    call :func:`uninstall`).
    """
    global _ACTIVE
    with _LOCK:
        if _ACTIVE is None or _ACTIVE.registry is not registry:
            _ACTIVE = TickInstrumentation(registry)
        return _ACTIVE


def uninstall() -> None:
    """Return dispatch paths to the zero-cost uninstrumented state."""
    global _ACTIVE
    with _LOCK:
        _ACTIVE = None


def installed() -> TickInstrumentation | None:
    """The active instrumentation, or ``None`` (the bare-path signal)."""
    return _ACTIVE


def batch_observer(regime: str, items: int) -> BatchTickObserver | None:
    """What a schedule_batch call asks for at entry: its observer or None."""
    active = _ACTIVE
    if active is None:
        return None
    return BatchTickObserver(active, regime, items)


def engine_observer() -> TickInstrumentation | None:
    """The engine's per-dispatch hook (None when uninstrumented)."""
    return _ACTIVE
