"""The unified metrics registry: named counters, gauges, and histograms.

Before this module, every subsystem grew its own telemetry surface —
:class:`~repro.serving.telemetry.ServiceTelemetry` counters and latency
reservoirs, the process backend's ``chunk_stats`` dict, per-worker
dispatch maps — each with its own snapshot shape and no common export.
:class:`MetricsRegistry` is the one place they all publish into, and the
one place exporters read from:

* **Owned metrics** — :meth:`~MetricsRegistry.counter`,
  :meth:`~MetricsRegistry.gauge`, and :meth:`~MetricsRegistry.histogram`
  create (or return the existing) named metric family.  Families carry
  optional label names; ``family.labels(regime="deadline")`` returns the
  child series for one label combination, cheap enough to call from a
  dispatch tick (callers on hot paths should still cache the child).
* **Pull-time collectors** — :meth:`~MetricsRegistry.register_collector`
  accepts a callable returning :class:`MetricFamily` records, evaluated
  only when the registry is scraped.  Surfaces that already accumulate
  their own state (the service telemetry snapshot, a backend's
  ``chunk_stats``) publish through a collector and pay **zero** hot-path
  cost for being exported.
* **Exporters** — :meth:`~MetricsRegistry.render_prometheus` emits the
  Prometheus text exposition format; :meth:`~MetricsRegistry.snapshot`
  emits the same data as a JSON-able dict.  Histograms export as
  summaries: ``{quantile="0.5"}`` samples plus ``_sum``/``_count``.

This module is deliberately **stdlib-only** (no numpy, no repro imports):
the scheduling layer imports it from inside ``schedule_batch``, and the
engine backends sit below it, so it must not pull the serving tier (or
anything heavy) into their import graphs.
"""

from __future__ import annotations

import json
import random
import threading
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "SUMMARY_QUANTILES",
]

#: Quantiles every histogram exports (as Prometheus summary samples).
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


@dataclass(frozen=True)
class MetricFamily:
    """One exported metric family: a name, a kind, and its samples.

    ``samples`` pairs a label dict with a value.  Collectors return these
    directly; owned metrics produce them at collect time.  ``kind`` is a
    Prometheus type string (``counter`` / ``gauge`` / ``summary``).
    """

    name: str
    kind: str
    help: str
    samples: tuple = field(default_factory=tuple)


_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def render_sample(name: str, labels: dict, value: float) -> str:
    """One exposition line: ``name{k="v",...} value``."""
    if labels:
        inner = ",".join(
            f'{k}="{_escape_label(v)}"' for k, v in sorted(labels.items())
        )
        return f"{name}{{{inner}}} {value:g}"
    return f"{name} {value:g}"


class _Metric:
    """Base of owned metric families: label bookkeeping + child registry."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...] = ()):
        self.name = _check_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            _check_name(label)
        self._lock = threading.Lock()
        #: label-value tuple -> child series.
        self._children: dict[tuple, object] = {}

    def _make_child(self):
        raise NotImplementedError

    def labels(self, **labelvalues):
        """The child series for one label combination (created on demand)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {list(self.labelnames)}, "
                f"got {sorted(labelvalues)}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make_child()
            return child

    def _default_child(self):
        """The unlabeled series of a label-less family."""
        if self.labelnames:
            raise ValueError(
                f"{self.name} is labeled ({list(self.labelnames)}); "
                "use .labels(...)"
            )
        return self.labels()

    def _items(self) -> list[tuple[dict, object]]:
        with self._lock:
            return [
                (dict(zip(self.labelnames, key)), child)
                for key, child in self._children.items()
            ]

    def collect(self) -> list[MetricFamily]:
        raise NotImplementedError


class _Value:
    """One numeric series, mutated under its own small lock."""

    __slots__ = ("_lock", "_value")

    def __init__(self, value: float = 0.0):
        self._lock = threading.Lock()
        self._value = value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _CounterValue(_Value):
    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += n


class _GaugeValue(_Value):
    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1.0) -> None:
        with self._lock:
            self._value -= n


class Counter(_Metric):
    """Monotonically increasing count (name should end in ``_total``)."""

    kind = "counter"

    def _make_child(self) -> _CounterValue:
        return _CounterValue()

    def inc(self, n: float = 1.0) -> None:
        self._default_child().inc(n)

    @property
    def value(self) -> float:
        return self._default_child().value

    def collect(self) -> list[MetricFamily]:
        samples = tuple(
            (labels, child.value) for labels, child in self._items()
        )
        return [MetricFamily(self.name, self.kind, self.help, samples)]


class Gauge(_Metric):
    """A value that can go up and down (depths, sizes, ratios)."""

    kind = "gauge"

    def _make_child(self) -> _GaugeValue:
        return _GaugeValue()

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, n: float = 1.0) -> None:
        self._default_child().inc(n)

    def dec(self, n: float = 1.0) -> None:
        self._default_child().dec(n)

    @property
    def value(self) -> float:
        return self._default_child().value

    def collect(self) -> list[MetricFamily]:
        samples = tuple(
            (labels, child.value) for labels, child in self._items()
        )
        return [MetricFamily(self.name, self.kind, self.help, samples)]


class _HistogramValue:
    """Bounded reservoir of observations plus exact count and sum.

    The same classic reservoir-sampling scheme as the serving tier's
    ``LatencyHistogram`` (first ``capacity`` observations kept verbatim,
    then uniform replacement), reimplemented here without numpy so the
    registry stays stdlib-only.  Quantiles are computed by sorting the
    reservoir at collect time — collection is rare, observation is hot.
    """

    __slots__ = ("_lock", "capacity", "count", "total", "_samples", "_rng")

    def __init__(self, capacity: int, seed: int = 0):
        self._lock = threading.Lock()
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self._samples: list[float] = []
        self._rng = random.Random(seed)

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if len(self._samples) < self.capacity:
                self._samples.append(value)
                return
            slot = self._rng.randrange(self.count)
            if slot < self.capacity:
                self._samples[slot] = value

    def quantiles(self, qs=SUMMARY_QUANTILES) -> dict[float, float]:
        with self._lock:
            data = sorted(self._samples)
        if not data:
            return {q: 0.0 for q in qs}
        last = len(data) - 1
        out = {}
        for q in qs:
            # Linear interpolation between closest ranks (numpy's default).
            pos = q * last
            lo = int(pos)
            hi = min(lo + 1, last)
            frac = pos - lo
            out[q] = data[lo] * (1.0 - frac) + data[hi] * frac
        return out


class Histogram(_Metric):
    """Reservoir-backed distribution exported as a quantile summary."""

    kind = "summary"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...] = (),
        capacity: int = 4096,
        seed: int = 0,
    ):
        super().__init__(name, help, labelnames)
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.seed = seed

    def _make_child(self) -> _HistogramValue:
        return _HistogramValue(self.capacity, self.seed)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    def collect(self) -> list[MetricFamily]:
        quantile_samples = []
        sums = []
        counts = []
        for labels, child in self._items():
            for q, value in child.quantiles().items():
                quantile_samples.append(({**labels, "quantile": str(q)}, value))
            sums.append((labels, child.total))
            counts.append((labels, child.count))
        return [
            MetricFamily(self.name, self.kind, self.help, tuple(quantile_samples)),
            MetricFamily(
                f"{self.name}_sum", "counter", f"{self.help} (sum)", tuple(sums)
            ),
            MetricFamily(
                f"{self.name}_count",
                "counter",
                f"{self.help} (count)",
                tuple(counts),
            ),
        ]


class MetricsRegistry:
    """Process-wide (or per-service) home of every exported metric.

    Thread-safe.  Creation methods are get-or-create: asking twice for
    the same name returns the same family, while asking with a different
    metric kind or label set raises — two subsystems cannot silently
    publish incompatible series under one name.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}
        self._collectors: list = []

    # -- creation ------------------------------------------------------------

    def _get_or_create(self, cls, name, help, labelnames, **kwargs) -> _Metric:
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}{existing.labelnames}, "
                        f"cannot re-register as {cls.__name__}{labelnames}"
                    )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        capacity: int = 4096,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, capacity=capacity
        )

    def register_collector(self, collector) -> None:
        """Add a pull-time source: a callable returning MetricFamily records.

        Evaluated on every :meth:`collect` — surfaces that already keep
        their own accumulators export through one of these and pay
        nothing on their hot paths.  A collector that raises is skipped
        for that scrape (one broken surface must not take down the
        endpoint).
        """
        with self._lock:
            self._collectors.append(collector)

    # -- collection / export -------------------------------------------------

    def collect(self) -> list[MetricFamily]:
        """Every family, owned metrics first, then collectors, name-sorted."""
        with self._lock:
            metrics = list(self._metrics.values())
            collectors = list(self._collectors)
        families: list[MetricFamily] = []
        for metric in metrics:
            families.extend(metric.collect())
        for collector in collectors:
            try:
                families.extend(collector())
            except Exception:  # noqa: BLE001 — a scrape must never die
                continue
        return sorted(families, key=lambda f: f.name)

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for family in self.collect():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labels, value in family.samples:
                lines.append(render_sample(family.name, labels, value))
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """The same data as a JSON-able dict keyed by family name."""
        out: dict = {}
        for family in self.collect():
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "samples": [
                    {"labels": labels, "value": value}
                    for labels, value in family.samples
                ],
            }
        return out

    def render_json(self) -> str:
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)
