"""The ``/metrics`` endpoint: a stdlib HTTP thread over the registry.

:class:`MetricsServer` serves a :class:`~repro.obs.registry.MetricsRegistry`
(and optionally a :class:`~repro.obs.trace.TraceBuffer`) from a
:class:`~http.server.ThreadingHTTPServer` running in a daemon thread:

* ``GET /metrics``       — Prometheus text exposition
* ``GET /metrics.json``  — the same families as a JSON snapshot
* ``GET /traces?n=K``    — the last K finished request traces (JSON)
* ``GET /healthz``       — liveness probe

Scrapes read shared accumulators under their own short locks; nothing on
the serving or dispatch hot path ever blocks on an HTTP request.  Binding
``port=0`` picks an ephemeral port, exposed as :attr:`MetricsServer.port`
after :meth:`start` — benchmarks and tests bind that way to avoid
collisions.  The default bind host is loopback: this endpoint has no
auth, so exposing it wider is an explicit opt-in.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import TraceBuffer

__all__ = ["MetricsServer"]

logger = logging.getLogger("repro.obs.server")


class _Handler(BaseHTTPRequestHandler):
    # Set per-server via the factory in MetricsServer.__init__.
    registry: MetricsRegistry
    tracer: TraceBuffer | None

    def _reply(self, status: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        try:
            if route == "/metrics":
                self._reply(
                    200,
                    self.registry.render_prometheus(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif route == "/metrics.json":
                self._reply(200, self.registry.render_json(), "application/json")
            elif route == "/traces":
                if self.tracer is None:
                    self._reply(
                        404,
                        json.dumps({"error": "tracing is not enabled"}),
                        "application/json",
                    )
                    return
                query = parse_qs(parsed.query)
                n = None
                if "n" in query:
                    n = max(1, int(query["n"][0]))
                self._reply(200, self.tracer.to_json(n), "application/json")
            elif route in ("/healthz", "/"):
                self._reply(200, "ok\n", "text/plain; charset=utf-8")
            else:
                self._reply(404, "not found\n", "text/plain; charset=utf-8")
        except Exception:  # noqa: BLE001 — a scrape must never kill the thread
            logger.exception("metrics request failed: %s", self.path)
            try:
                self._reply(500, "internal error\n", "text/plain; charset=utf-8")
            except OSError:
                pass

    def log_message(self, format: str, *args) -> None:
        # Route http.server's per-request stderr chatter into logging.
        logger.debug("%s - %s", self.address_string(), format % args)


class MetricsServer:
    """Background HTTP server exposing one registry (and optional tracer).

    Parameters
    ----------
    registry:
        The metrics registry every scrape collects from.
    tracer:
        Optional trace buffer behind ``/traces`` (404 without one).
    host / port:
        Bind address.  ``port=0`` (default) picks an ephemeral port —
        read :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        tracer: TraceBuffer | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.registry = registry
        self.tracer = tracer
        self.host = host
        self._requested_port = port
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (the requested one until :meth:`start`)."""
        if self._server is not None:
            return self._server.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsServer":
        """Bind and serve from a daemon thread (idempotent)."""
        if self._server is not None:
            return self
        handler = type(
            "_BoundHandler",
            (_Handler,),
            {"registry": self.registry, "tracer": self.tracer},
        )
        self._server = ThreadingHTTPServer(
            (self.host, self._requested_port), handler
        )
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        logger.info("metrics endpoint serving at %s/metrics", self.url)
        return self

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join()
        logger.info("metrics endpoint on %s closed", self.url)
        self._server = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
