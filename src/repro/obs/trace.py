"""Per-request trace spans in a bounded, lock-cheap ring buffer.

A request's life through the serving tier is a sequence of staged events:

    admitted -> queued -> batched(flush_reason) -> scheduled
             -> completed | expired | failed | rejected | cancelled

with two short-circuit terminals for cache traffic (``cache_hit`` when a
completed result answers the submission outright, ``coalesced`` when it
attaches to an in-flight duplicate).  :class:`TraceBuffer` records one
:class:`RequestTrace` per request — event stages, monotonic offsets from
admission, and small detail dicts (flush reason, worker name, models
executed) — and keeps the most recent ``capacity`` finished traces in a
ring.  The buffer is what the ``/traces`` endpoint and ``repro.cli
trace`` tail, and what ``serve --trace-export`` dumps as JSON.

Cost model: recording an event is one ``monotonic()`` call and one list
append on the trace itself (each trace has a single writer at any given
stage); finishing is one append to a ``deque(maxlen=...)``.  No global
lock is held while events are recorded, so tracing stays cheap enough to
leave on in production — the overhead benchmark holds the whole
observability layer under its gate with tracing enabled.

Stdlib-only, like the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

import itertools
import json
import time
from collections import deque

__all__ = ["RequestTrace", "TraceBuffer", "SPAN_STAGES", "TERMINAL_STAGES"]

#: Stages a request passes through while live, in order.
LIVE_STAGES = ("admitted", "queued", "batched", "scheduled")

#: Stages that end a trace (exactly one per request).
TERMINAL_STAGES = (
    "completed",
    "expired",
    "failed",
    "rejected",
    "cancelled",
    "cache_hit",
    "coalesced",
)

#: Every legal stage name — the trace span schema.
SPAN_STAGES = LIVE_STAGES + TERMINAL_STAGES


class RequestTrace:
    """One request's span: ordered ``(stage, offset_s, detail)`` events.

    ``offset_s`` is seconds since the trace started (monotonic clock);
    ``started_at`` is a wall-clock unix timestamp for human display.
    """

    __slots__ = (
        "trace_id",
        "item_id",
        "regime",
        "started_at",
        "_t0",
        "_clock",
        "events",
        "status",
    )

    def __init__(self, trace_id: int, item_id: str, regime: str, clock):
        self.trace_id = trace_id
        self.item_id = item_id
        self.regime = regime
        self.started_at = time.time()
        self._clock = clock
        self._t0 = clock()
        self.events: list[tuple[str, float, dict]] = []
        #: The terminal stage once finished, else None (still live).
        self.status: str | None = None

    def add(self, stage: str, **detail) -> None:
        """Record one event at the current clock offset."""
        self.events.append((stage, self._clock() - self._t0, detail))

    @property
    def duration(self) -> float:
        """Seconds from start to the last recorded event (0 when empty)."""
        return self.events[-1][1] if self.events else 0.0

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "item_id": self.item_id,
            "regime": self.regime,
            "started_at": self.started_at,
            "status": self.status,
            "duration_s": self.duration,
            "events": [
                {"stage": stage, "t": offset, **({"detail": detail} if detail else {})}
                for stage, offset, detail in self.events
            ],
        }

    def format(self) -> str:
        """One human line: id, item, regime, status, and the timeline."""
        timeline = "  ".join(
            f"{stage}"
            + (f"({detail['reason']})" if "reason" in detail else "")
            + f"+{offset * 1000:.1f}ms"
            for stage, offset, detail in self.events
        )
        return (
            f"#{self.trace_id} {self.item_id} regime={self.regime} "
            f"status={self.status or 'live'} "
            f"{self.duration * 1000:.1f}ms  {timeline}"
        )


class TraceBuffer:
    """Bounded ring of finished request traces.

    ``start`` hands out a live :class:`RequestTrace`; ``finish`` stamps
    its terminal stage and appends it to the ring, where the oldest
    finished trace is dropped once ``capacity`` is exceeded
    (``deque(maxlen=...)`` — the append itself evicts, no sweep).  Live
    traces are never stored here; a request abandoned without ``finish``
    simply never appears.
    """

    def __init__(self, capacity: int = 512, clock=time.monotonic):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._clock = clock
        self._ids = itertools.count(1)
        self._ring: deque[RequestTrace] = deque(maxlen=capacity)
        self._started = 0
        self._finished = 0

    def start(self, item_id: str, regime: str) -> RequestTrace:
        """A new live trace; the caller records events and must finish it."""
        self._started += 1
        return RequestTrace(next(self._ids), item_id, regime, self._clock)

    def finish(self, trace: RequestTrace, stage: str, **detail) -> None:
        """Stamp the terminal stage and retire the trace into the ring."""
        if stage not in TERMINAL_STAGES:
            raise ValueError(
                f"unknown terminal stage {stage!r}; "
                f"allowed: {sorted(TERMINAL_STAGES)}"
            )
        trace.add(stage, **detail)
        trace.status = stage
        self._finished += 1
        self._ring.append(trace)

    # -- reading -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def started(self) -> int:
        return self._started

    @property
    def finished(self) -> int:
        return self._finished

    @property
    def dropped(self) -> int:
        """Finished traces the ring has already evicted."""
        return self._finished - len(self._ring)

    def tail(self, n: int | None = None) -> list[dict]:
        """The most recent ``n`` finished traces (all, when ``n`` is None),
        oldest first, as JSON-able dicts."""
        traces = list(self._ring)
        if n is not None:
            traces = traces[-n:]
        return [trace.to_dict() for trace in traces]

    def to_json(self, n: int | None = None) -> str:
        return json.dumps(
            {
                "capacity": self.capacity,
                "started": self._started,
                "finished": self._finished,
                "dropped": self.dropped,
                "traces": self.tail(n),
            },
            indent=2,
        )
