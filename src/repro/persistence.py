"""Persistence: save/load ground-truth records and trained agents.

The paper's protocol executes the zoo once and replays recorded outputs for
every policy evaluation.  At paper scale that recording is worth keeping
across processes; this module serializes a :class:`GroundTruth` (outputs,
confidences, item latents are *not* stored — only what replay needs) plus
agents to ``.npz`` archives.

File layout (one npz):

* header arrays (``__items``, ``__models``, thresholds, seeds);
* per item/model: label-id and confidence arrays (ragged, stored flat with
  offsets).
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.config import WorldConfig
from repro.core.output import LabelOutput, ModelOutput
from repro.data.datasets import DataItem
from repro.data.semantics import SceneContent
from repro.durability.checkpoint import atomic_write_bytes
from repro.zoo.model import ModelZoo
from repro.zoo.oracle import GroundTruth

_FORMAT_VERSION = 1


def save_ground_truth(truth: GroundTruth, path: str | Path) -> None:
    """Serialize recorded outputs (all emissions, any confidence)."""
    item_ids = list(truth.item_ids)
    n_models = len(truth.zoo)
    label_ids: list[np.ndarray] = []
    confs: list[np.ndarray] = []
    offsets = np.zeros((len(item_ids), n_models, 2), dtype=np.int64)
    cursor = 0
    for row, item_id in enumerate(item_ids):
        rec = truth.record(item_id)
        for j, output in enumerate(rec.outputs):
            ids = np.asarray([l.label_id for l in output.labels], dtype=np.int64)
            cf = np.asarray([l.confidence for l in output.labels], dtype=np.float64)
            label_ids.append(ids)
            confs.append(cf)
            offsets[row, j] = (cursor, cursor + len(ids))
            cursor += len(ids)
    flat_ids = (
        np.concatenate(label_ids) if label_ids else np.zeros(0, dtype=np.int64)
    )
    flat_confs = np.concatenate(confs) if confs else np.zeros(0)
    buffer = io.BytesIO()
    np.savez_compressed(
        buffer,
        version=np.asarray(_FORMAT_VERSION),
        item_ids=np.asarray(item_ids),
        model_names=np.asarray(truth.zoo.names),
        threshold=np.asarray(truth.threshold),
        offsets=offsets,
        flat_label_ids=flat_ids,
        flat_confidences=flat_confs,
    )
    # Match np.savez's filename convention, then land the archive
    # atomically — a crash mid-save leaves the previous archive (or
    # nothing), never a torn .npz another process would fail to load.
    final = Path(path)
    if final.suffix != ".npz":
        final = final.with_name(final.name + ".npz")
    atomic_write_bytes(final, buffer.getvalue())


def load_ground_truth(
    zoo: ModelZoo, path: str | Path, config: WorldConfig | None = None
) -> GroundTruth:
    """Rebuild a :class:`GroundTruth` from a saved archive.

    The zoo must match the one the archive was recorded with (verified by
    model names); items are reconstructed with placeholder latent content —
    replay only ever reads recorded outputs.
    """
    with np.load(path, allow_pickle=False) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported ground-truth format v{version}")
        saved_models = [str(m) for m in data["model_names"]]
        if saved_models != list(zoo.names):
            raise ValueError(
                "zoo mismatch: archive was recorded with different models"
            )
        item_ids = [str(i) for i in data["item_ids"]]
        offsets = data["offsets"]
        flat_ids = data["flat_label_ids"]
        flat_confs = data["flat_confidences"]

    truth = GroundTruth(zoo, [], config)
    placeholder = SceneContent(scene=0, scene_strength=0.0)
    space = zoo.space
    for row, item_id in enumerate(item_ids):
        outputs = []
        for j, model in enumerate(zoo):
            start, stop = offsets[row, j]
            labels = tuple(
                LabelOutput(
                    label_id=int(gid),
                    name=space.name_of(int(gid)),
                    confidence=float(conf),
                )
                for gid, conf in zip(flat_ids[start:stop], flat_confs[start:stop])
            )
            outputs.append(
                ModelOutput(model=model.name, item_id=item_id, labels=labels)
            )
        _inject_record(truth, item_id, outputs, placeholder)
    return truth


def _inject_record(
    truth: GroundTruth,
    item_id: str,
    outputs: list[ModelOutput],
    placeholder: SceneContent,
) -> None:
    """Insert a replayed record, recomputing the derived value arrays."""
    from repro.zoo.oracle import ItemRecord

    n_labels = len(truth.zoo.space)
    ids_list, confs_list = [], []
    solo = np.zeros(len(truth.zoo))
    best = np.zeros(n_labels)
    for j, output in enumerate(outputs):
        ids, confs = output.valuable_arrays(truth.threshold)
        ids_list.append(ids)
        confs_list.append(confs)
        solo[j] = float(confs.sum())
        if len(ids):
            np.maximum.at(best, ids, confs)
    dataset, _, index = item_id.partition("/")
    item = DataItem(
        item_id=item_id,
        dataset=dataset,
        index=int(index) if index.isdigit() else -1,
        content=placeholder,
    )
    truth._records[item_id] = ItemRecord(
        item=item,
        outputs=tuple(outputs),
        valuable_ids=tuple(ids_list),
        valuable_confs=tuple(confs_list),
        solo_values=solo,
        best_confidence=best,
        total_value=float(best.sum()),
    )
