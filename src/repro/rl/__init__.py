"""Deep reinforcement learning stack, written from scratch on numpy.

The paper trains a deep Q-value network (1104-dim observation -> dense
256 ReLU -> 31 actions incl. END) with four schemes: DQN, DoubleDQN,
DuelingDQN and DeepSARSA (§IV-B).  This package provides:

* :mod:`repro.rl.nn` — a minimal dense-network autodiff library (He init,
  ReLU, Adam, Huber loss) sufficient for Q-learning at that scale;
* :mod:`repro.rl.replay` — a uniform ring-buffer replay memory;
* :mod:`repro.rl.env` — the labeling MDP over recorded ground truth;
* :mod:`repro.rl.agents` — the four agent variants behind one interface;
* :mod:`repro.rl.training` — the training loop and serialization.
"""

from repro.rl.agents import (
    AGENT_REGISTRY,
    DeepSARSAAgent,
    DoubleDQNAgent,
    DQNAgent,
    DuelingDQNAgent,
    QAgent,
    make_agent,
)
from repro.rl.env import LabelingEnv
from repro.rl.replay import ReplayBuffer, Transition
from repro.rl.schedule import EpsilonSchedule
from repro.rl.training import TrainingResult, train_agent

__all__ = [
    "AGENT_REGISTRY",
    "DeepSARSAAgent",
    "DoubleDQNAgent",
    "DQNAgent",
    "DuelingDQNAgent",
    "QAgent",
    "make_agent",
    "LabelingEnv",
    "ReplayBuffer",
    "Transition",
    "EpsilonSchedule",
    "TrainingResult",
    "train_agent",
]
