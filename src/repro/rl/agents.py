"""The four Q-value agents the paper trains (§IV-B, §VI-B).

All share the same Q-network architecture and differ only in the bootstrap
target:

* **DQN** — ``r + gamma * max_a Q_target(s', a)``
* **DoubleDQN** — online net picks a*, target net evaluates it.
* **DuelingDQN** — DQN target on a dueling V/A network (the paper's best).
* **DeepSARSA** — on-policy: ``r + gamma * Q_target(s', a')`` where a' is
  the action the behaviour policy actually took next.

Invalid actions (already-executed models) are masked to ``-inf`` both when
acting and when computing bootstrap maxima, which is required for the
labeling MDP's shrinking action space.
"""

from __future__ import annotations

import numpy as np

from repro.rl.nn.loss import huber_loss
from repro.rl.nn.net import DuelingQNetwork, MLPQNetwork, QNetwork
from repro.rl.nn.opt import Adam
from repro.rl.replay import Batch

_NEG_INF = -1e18


def masked_argmax(q: np.ndarray, valid: np.ndarray) -> int:
    """Argmax over valid actions only."""
    if not valid.any():
        raise ValueError("no valid actions")
    masked = np.where(valid, q, _NEG_INF)
    return int(np.argmax(masked))


class QAgent:
    """Base class: epsilon-greedy acting + TD learning on a Q-network."""

    #: Registry name, set by subclasses.
    algo = "base"
    #: Whether the agent is on-policy (needs a' in the replay batch).
    on_policy = False

    def __init__(
        self,
        obs_dim: int,
        n_actions: int,
        hidden_size: int = 256,
        learning_rate: float = 1e-3,
        gamma: float = 0.95,
        seed: int = 0,
    ):
        if not 0.0 <= gamma < 1.0:
            raise ValueError("gamma must be in [0, 1)")
        self.obs_dim = obs_dim
        self.n_actions = n_actions
        #: Kept so the agent can be rebuilt from (algo, dims, state_dict) in
        #: another process — the multi-process backend's snapshot path.
        self.hidden_size = hidden_size
        self.gamma = gamma
        self._rng = np.random.default_rng(seed)
        net_rng = np.random.default_rng(seed + 1)
        self.online = self._build_network(obs_dim, n_actions, hidden_size, net_rng)
        self.target = self._build_network(obs_dim, n_actions, hidden_size, net_rng)
        self.target.copy_from(self.online)
        self.optimizer = Adam(lr=learning_rate)
        self.train_steps = 0

    # -- subclass hooks ------------------------------------------------------

    def _build_network(
        self,
        obs_dim: int,
        n_actions: int,
        hidden_size: int,
        rng: np.random.Generator,
    ) -> QNetwork:
        return MLPQNetwork(obs_dim, n_actions, hidden_size, rng)

    def _bootstrap_values(self, batch: Batch) -> np.ndarray:
        """Value of the next state per the agent's target rule."""
        q_next_target = self.target.forward(batch.next_obs, train=False)
        masked = np.where(batch.next_valids, q_next_target, _NEG_INF)
        best = masked.max(axis=1)
        # A next state with no valid action is terminal by construction.
        best = np.where(batch.next_valids.any(axis=1), best, 0.0)
        return best

    # -- acting ---------------------------------------------------------------

    def q_values(self, obs: np.ndarray) -> np.ndarray:
        """Online-network Q values for one observation."""
        return self.online.q_values(obs.astype(np.float64))

    def q_values_batch(self, obs: np.ndarray) -> np.ndarray:
        """Online-network Q values for a stacked (B, obs_dim) batch.

        One forward pass over the whole batch — the vectorized engine
        backends use this to amortize network cost across in-flight items.
        """
        if obs.ndim != 2:
            raise ValueError(f"expected (B, obs_dim) batch, got shape {obs.shape}")
        return self.online.forward(obs.astype(np.float64), train=False)

    def act(self, obs: np.ndarray, valid: np.ndarray, epsilon: float = 0.0) -> int:
        """Epsilon-greedy action among valid actions."""
        if epsilon > 0.0 and self._rng.random() < epsilon:
            choices = np.nonzero(valid)[0]
            return int(choices[self._rng.integers(len(choices))])
        return masked_argmax(self.q_values(obs), valid)

    # -- learning ----------------------------------------------------------------

    def update(self, batch: Batch) -> float:
        """One TD step on a minibatch; returns the Huber loss."""
        bootstrap = self._bootstrap_values(batch)
        targets_for_actions = batch.rewards + self.gamma * np.where(
            batch.dones, 0.0, bootstrap
        )
        q = self.online.forward(batch.obs, train=True)
        rows = np.arange(len(batch))
        pred = q[rows, batch.actions]
        loss, grad_pred = huber_loss(pred, targets_for_actions)
        grad_q = np.zeros_like(q)
        grad_q[rows, batch.actions] = grad_pred
        self.online.zero_grad()
        self.online.backward(grad_q)
        self.optimizer.step(self.online.params(), self.online.grads())
        self.train_steps += 1
        return loss

    def sync_target(self) -> None:
        self.target.copy_from(self.online)

    # -- serialization --------------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        return self.online.state_dict()

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self.online.load_state_dict(state)
        self.target.copy_from(self.online)

    def save(self, path) -> None:
        """Save weights to an .npz file."""
        np.savez(path, algo=np.asarray(self.algo), **self.state_dict())

    def load(self, path) -> None:
        with np.load(path, allow_pickle=False) as data:
            state = {k: data[k] for k in data.files if k.startswith("p")}
        self.load_state_dict(state)


class DQNAgent(QAgent):
    """Original deep Q-network (Mnih et al.)."""

    algo = "dqn"


class DoubleDQNAgent(QAgent):
    """Double DQN (van Hasselt et al.): decorrelates selection/evaluation."""

    algo = "double_dqn"

    def _bootstrap_values(self, batch: Batch) -> np.ndarray:
        q_next_online = self.online.forward(batch.next_obs, train=False)
        masked_online = np.where(batch.next_valids, q_next_online, _NEG_INF)
        best_actions = masked_online.argmax(axis=1)
        q_next_target = self.target.forward(batch.next_obs, train=False)
        rows = np.arange(len(batch))
        values = q_next_target[rows, best_actions]
        return np.where(batch.next_valids.any(axis=1), values, 0.0)


class DuelingDQNAgent(QAgent):
    """Dueling network architecture (Wang et al.) with the DQN target."""

    algo = "dueling_dqn"

    def _build_network(
        self,
        obs_dim: int,
        n_actions: int,
        hidden_size: int,
        rng: np.random.Generator,
    ) -> QNetwork:
        return DuelingQNetwork(obs_dim, n_actions, hidden_size, rng)


class DeepSARSAAgent(QAgent):
    """Deep SARSA: on-policy bootstrap from the action actually taken."""

    algo = "deep_sarsa"
    on_policy = True

    def _bootstrap_values(self, batch: Batch) -> np.ndarray:
        q_next = self.target.forward(batch.next_obs, train=False)
        rows = np.arange(len(batch))
        actions = batch.next_actions
        # Transitions without a recorded next action (episode end) get 0;
        # they are masked by `dones` anyway.
        safe = np.where(actions >= 0, actions, 0)
        values = q_next[rows, safe]
        return np.where(actions >= 0, values, 0.0)


class DoubleDuelingDQNAgent(DoubleDQNAgent):
    """Double-DQN target rule on a dueling network.

    Not evaluated in the paper, but §IV-B notes the framework works with
    "any Q-value network-based DRL approach"; this combination is the
    natural next rung and is exercised by the extension tests.
    """

    algo = "double_dueling_dqn"

    def _build_network(
        self,
        obs_dim: int,
        n_actions: int,
        hidden_size: int,
        rng: np.random.Generator,
    ) -> QNetwork:
        return DuelingQNetwork(obs_dim, n_actions, hidden_size, rng)


#: Name -> agent class, for config-driven construction.
AGENT_REGISTRY: dict[str, type[QAgent]] = {
    cls.algo: cls
    for cls in (
        DQNAgent,
        DoubleDQNAgent,
        DuelingDQNAgent,
        DeepSARSAAgent,
        DoubleDuelingDQNAgent,
    )
}


def make_agent(algo: str, obs_dim: int, n_actions: int, **kwargs) -> QAgent:
    """Construct an agent by registry name ("dqn", "double_dqn", ...)."""
    try:
        cls = AGENT_REGISTRY[algo]
    except KeyError:
        raise ValueError(
            f"unknown agent algo {algo!r}; choose from {sorted(AGENT_REGISTRY)}"
        ) from None
    return cls(obs_dim, n_actions, **kwargs)
