"""The labeling MDP (Section IV), played over recorded ground truth.

* **Observation** — the binary labeling state (one bit per supported
  label; 1104 dims at full scale).
* **Actions** — one per model, plus an END action used during training
  (§IV-B).  Executing an already-executed model is invalid; callers use
  :meth:`LabelingEnv.valid_action_mask`.
* **Reward** — Eq. (3) via :func:`repro.core.reward.reward_for_output`:
  log-smoothed value of *new* valuable labels, ``-1`` punishment for
  nothing-new, ``0`` for END.
* **Episode** — one data item; ends at END, or when every model has been
  executed.

The environment replays recorded outputs from :class:`GroundTruth`, exactly
like the paper's simulation protocol, so stepping is cheap and
deterministic.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.reward import END_REWARD, RewardConfig, reward_for_output
from repro.core.state import LabelingState
from repro.zoo.oracle import GroundTruth


class LabelingEnv:
    """Gym-style environment over a ground-truth cache."""

    def __init__(
        self,
        truth: GroundTruth,
        item_ids: Sequence[str] | None = None,
        reward_config: RewardConfig | None = None,
        use_end_action: bool = True,
        seed: int = 0,
    ):
        self.truth = truth
        self.item_ids = tuple(item_ids if item_ids is not None else truth.item_ids)
        if not self.item_ids:
            raise ValueError("environment needs at least one item")
        missing = [i for i in self.item_ids if i not in truth]
        if missing:
            raise ValueError(f"items not in ground truth: {missing[:3]}...")
        self.reward_config = reward_config or RewardConfig()
        self.use_end_action = use_end_action
        self.n_models = len(truth.zoo)
        #: END action index (only valid when ``use_end_action``).
        self.end_action = self.n_models
        self.n_actions = self.n_models + (1 if use_end_action else 0)
        self.obs_dim = len(truth.zoo.space)
        self._rng = np.random.default_rng(seed)
        self._thetas = np.asarray(
            [self.reward_config.theta_of(m.name) for m in truth.zoo],
            dtype=np.float64,
        )
        self.state: LabelingState | None = None
        self._done = True

    # -- episode control ---------------------------------------------------

    def reset(self, item_id: str | None = None) -> np.ndarray:
        """Start an episode on ``item_id`` (or a random training item)."""
        if item_id is None:
            item_id = self.item_ids[int(self._rng.integers(len(self.item_ids)))]
        self.state = LabelingState(self.truth, item_id)
        self._done = False
        return self.observation()

    def observation(self) -> np.ndarray:
        """Copy of the current binary labeling state."""
        self._require_active()
        return self.state.vector.copy()

    def valid_action_mask(self) -> np.ndarray:
        """Boolean mask over actions: unexecuted models (+ END if enabled)."""
        self._require_active()
        mask = np.zeros(self.n_actions, dtype=bool)
        mask[: self.n_models] = ~self.state.executed
        if self.use_end_action:
            mask[self.end_action] = True
        return mask

    @property
    def done(self) -> bool:
        return self._done

    def step(self, action: int) -> tuple[np.ndarray, float, bool, dict]:
        """Execute a model (or END); returns (obs, reward, done, info)."""
        self._require_active()
        if self._done:
            raise RuntimeError("episode finished; call reset()")
        if not 0 <= action < self.n_actions:
            raise ValueError(f"action {action} out of range 0..{self.n_actions - 1}")

        if self.use_end_action and action == self.end_action:
            self._done = True
            return (
                self.observation(),
                END_REWARD,
                True,
                {"end": True, "recall": self.state.recall},
            )

        if self.state.executed[action]:
            raise ValueError(
                f"model {action} already executed; mask actions with "
                "valid_action_mask()"
            )
        _, new_confs = self.state.execute(action)
        reward = reward_for_output(
            new_confs,
            theta=float(self._thetas[action]),
            smoothing=self.reward_config.smoothing,
        )
        if self.state.all_executed:
            self._done = True
        return (
            self.observation(),
            reward,
            self._done,
            {
                "model": self.truth.zoo[action].name,
                "new_labels": len(new_confs),
                "recall": self.state.recall,
                "value": self.state.value,
            },
        )

    def _require_active(self) -> None:
        if self.state is None:
            raise RuntimeError("call reset() before interacting with the env")
