"""Minimal dense-network autodiff library (numpy only).

Implements exactly what a DQN at the paper's scale needs: dense layers with
He initialization, ReLU, a dueling value/advantage head, Adam, and Huber
loss.  Gradient correctness is verified against finite differences in the
test suite.
"""

from repro.rl.nn.layers import Dense, ReLU
from repro.rl.nn.loss import huber_loss, mse_loss
from repro.rl.nn.net import DuelingQNetwork, MLPQNetwork, QNetwork
from repro.rl.nn.opt import SGD, Adam

__all__ = [
    "Dense",
    "ReLU",
    "huber_loss",
    "mse_loss",
    "DuelingQNetwork",
    "MLPQNetwork",
    "QNetwork",
    "SGD",
    "Adam",
]
