"""Dense and activation layers with explicit forward/backward passes."""

from __future__ import annotations

import numpy as np


class Dense:
    """Fully connected layer ``y = x @ W + b`` with He initialization."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator):
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError("layer dimensions must be positive")
        scale = np.sqrt(2.0 / in_dim)
        self.W = rng.normal(0.0, scale, size=(in_dim, out_dim)).astype(np.float64)
        self.b = np.zeros(out_dim, dtype=np.float64)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self._x: np.ndarray | None = None

    @property
    def in_dim(self) -> int:
        return self.W.shape[0]

    @property
    def out_dim(self) -> int:
        return self.W.shape[1]

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        """Forward pass; caches the input for backward when ``train``."""
        if train:
            self._x = x
        return x @ self.W + self.b

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate parameter grads, return gradient w.r.t. the input."""
        if self._x is None:
            raise RuntimeError("backward called before a training forward pass")
        self.dW += self._x.T @ grad_out
        self.db += grad_out.sum(axis=0)
        return grad_out @ self.W.T

    def zero_grad(self) -> None:
        self.dW.fill(0.0)
        self.db.fill(0.0)

    def params(self) -> list[np.ndarray]:
        return [self.W, self.b]

    def grads(self) -> list[np.ndarray]:
        return [self.dW, self.db]

    def copy_from(self, other: "Dense") -> None:
        """Hard-copy parameters (target-network sync)."""
        np.copyto(self.W, other.W)
        np.copyto(self.b, other.b)


class ReLU:
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        out = np.maximum(x, 0.0)
        if train:
            self._mask = x > 0.0
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before a training forward pass")
        return grad_out * self._mask

    def zero_grad(self) -> None:  # no parameters
        return None

    def params(self) -> list[np.ndarray]:
        return []

    def grads(self) -> list[np.ndarray]:
        return []
