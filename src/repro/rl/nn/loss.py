"""Loss functions returning (loss value, gradient w.r.t. predictions)."""

from __future__ import annotations

import numpy as np


def mse_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error over all elements."""
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    diff = pred - target
    n = pred.size
    return float(np.mean(diff**2)), (2.0 / n) * diff


def huber_loss(
    pred: np.ndarray, target: np.ndarray, delta: float = 1.0
) -> tuple[float, np.ndarray]:
    """Huber loss (the DQN standard): quadratic near 0, linear beyond delta."""
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    if delta <= 0:
        raise ValueError("delta must be positive")
    diff = pred - target
    abs_diff = np.abs(diff)
    quadratic = abs_diff <= delta
    loss = np.where(
        quadratic, 0.5 * diff**2, delta * (abs_diff - 0.5 * delta)
    )
    grad = np.where(quadratic, diff, delta * np.sign(diff))
    n = pred.size
    return float(loss.mean()), grad / n
