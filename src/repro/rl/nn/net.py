"""Q-networks: a plain MLP head and a dueling value/advantage head.

Both networks map a labeling-state observation to one Q value per action
(the paper's architecture: one hidden dense layer, 256 ReLU units at full
scale).  The dueling variant (Wang et al., used by the paper's best agent)
splits the head into a scalar state value V and per-action advantages A and
combines them as ``Q = V + A - mean(A)``.
"""

from __future__ import annotations

import numpy as np

from repro.rl.nn.layers import Dense, ReLU


class QNetwork:
    """Interface shared by the MLP and dueling networks."""

    obs_dim: int
    n_actions: int

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_q: np.ndarray) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        raise NotImplementedError

    def params(self) -> list[np.ndarray]:
        raise NotImplementedError

    def grads(self) -> list[np.ndarray]:
        raise NotImplementedError

    def copy_from(self, other: "QNetwork") -> None:
        """Hard parameter copy (used for target-network syncs)."""
        for mine, theirs in zip(self.params(), other.params()):
            np.copyto(mine, theirs)

    # -- convenience ---------------------------------------------------------

    def q_values(self, obs: np.ndarray) -> np.ndarray:
        """Inference on a single observation; returns shape (n_actions,)."""
        out = self.forward(obs[None, :], train=False)
        return out[0]

    def state_dict(self) -> dict[str, np.ndarray]:
        return {f"p{i}": p.copy() for i, p in enumerate(self.params())}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = self.params()
        if len(state) != len(params):
            raise ValueError(
                f"state has {len(state)} arrays, network has {len(params)}"
            )
        for i, p in enumerate(params):
            src = state[f"p{i}"]
            if src.shape != p.shape:
                raise ValueError(f"shape mismatch at p{i}: {src.shape} vs {p.shape}")
            np.copyto(p, src)


class MLPQNetwork(QNetwork):
    """obs -> Dense(hidden) -> ReLU -> Dense(n_actions)."""

    def __init__(
        self,
        obs_dim: int,
        n_actions: int,
        hidden_size: int,
        rng: np.random.Generator,
    ):
        self.obs_dim = obs_dim
        self.n_actions = n_actions
        self.hidden_size = hidden_size
        self.fc1 = Dense(obs_dim, hidden_size, rng)
        self.act1 = ReLU()
        self.fc2 = Dense(hidden_size, n_actions, rng)
        self._layers = (self.fc1, self.act1, self.fc2)

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        h = self.act1.forward(self.fc1.forward(x, train), train)
        return self.fc2.forward(h, train)

    def backward(self, grad_q: np.ndarray) -> None:
        grad = self.fc2.backward(grad_q)
        grad = self.act1.backward(grad)
        self.fc1.backward(grad)

    def zero_grad(self) -> None:
        for layer in self._layers:
            layer.zero_grad()

    def params(self) -> list[np.ndarray]:
        return [p for layer in self._layers for p in layer.params()]

    def grads(self) -> list[np.ndarray]:
        return [g for layer in self._layers for g in layer.grads()]

    def clone(self) -> "MLPQNetwork":
        twin = MLPQNetwork(
            self.obs_dim, self.n_actions, self.hidden_size, np.random.default_rng(0)
        )
        twin.copy_from(self)
        return twin


class DuelingQNetwork(QNetwork):
    """Dueling head: shared trunk, then V (scalar) and A (per-action).

    ``Q = V + A - mean(A)``; the mean-subtraction makes the decomposition
    identifiable.  Backward distributes ``dQ`` accordingly:
    ``dV_row = sum_a dQ[a]``, ``dA = dQ - mean_a(dQ)``.
    """

    def __init__(
        self,
        obs_dim: int,
        n_actions: int,
        hidden_size: int,
        rng: np.random.Generator,
    ):
        self.obs_dim = obs_dim
        self.n_actions = n_actions
        self.hidden_size = hidden_size
        self.fc1 = Dense(obs_dim, hidden_size, rng)
        self.act1 = ReLU()
        self.value_head = Dense(hidden_size, 1, rng)
        self.adv_head = Dense(hidden_size, n_actions, rng)
        self._layers = (self.fc1, self.act1, self.value_head, self.adv_head)

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        h = self.act1.forward(self.fc1.forward(x, train), train)
        value = self.value_head.forward(h, train)  # (B, 1)
        adv = self.adv_head.forward(h, train)  # (B, A)
        return value + adv - adv.mean(axis=1, keepdims=True)

    def backward(self, grad_q: np.ndarray) -> None:
        grad_value = grad_q.sum(axis=1, keepdims=True)  # (B, 1)
        grad_adv = grad_q - grad_q.mean(axis=1, keepdims=True)  # (B, A)
        grad_h = self.value_head.backward(grad_value)
        grad_h = grad_h + self.adv_head.backward(grad_adv)
        grad = self.act1.backward(grad_h)
        self.fc1.backward(grad)

    def zero_grad(self) -> None:
        for layer in self._layers:
            layer.zero_grad()

    def params(self) -> list[np.ndarray]:
        return [p for layer in self._layers for p in layer.params()]

    def grads(self) -> list[np.ndarray]:
        return [g for layer in self._layers for g in layer.grads()]

    def clone(self) -> "DuelingQNetwork":
        twin = DuelingQNetwork(
            self.obs_dim, self.n_actions, self.hidden_size, np.random.default_rng(0)
        )
        twin.copy_from(self)
        return twin
