"""Optimizers operating on (params, grads) lists of numpy arrays."""

from __future__ import annotations

import numpy as np


class SGD:
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, lr: float = 1e-2, momentum: float = 0.0):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self._velocity: list[np.ndarray] | None = None

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in params]
        for p, g, v in zip(params, grads, self._velocity):
            v *= self.momentum
            v -= self.lr * g
            p += v


class Adam:
    """Adam (Kingma & Ba) — the default for the Q-network."""

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        grad_clip: float | None = 5.0,
    ):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.grad_clip = grad_clip
        self._m: list[np.ndarray] | None = None
        self._v: list[np.ndarray] | None = None
        self._t = 0

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if self._m is None:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(params, grads, self._m, self._v):
            if self.grad_clip is not None:
                g = np.clip(g, -self.grad_clip, self.grad_clip)
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g**2
            p -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
