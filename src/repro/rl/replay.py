"""Uniform experience replay on preallocated numpy ring buffers.

Stores ``(s, a, r, s', done, next_valid_mask, a')`` — the next-action slot
is only used by the on-policy DeepSARSA agent; off-policy agents ignore it.
The next-valid-action mask matters because the labeling MDP forbids
re-executing models: target maxima must range over valid actions only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Transition:
    """One environment step (convenience container for pushes)."""

    obs: np.ndarray
    action: int
    reward: float
    next_obs: np.ndarray
    done: bool
    next_valid: np.ndarray
    next_action: int = -1


@dataclass
class Batch:
    """A sampled minibatch, columnar."""

    obs: np.ndarray
    actions: np.ndarray
    rewards: np.ndarray
    next_obs: np.ndarray
    dones: np.ndarray
    next_valids: np.ndarray
    next_actions: np.ndarray

    def __len__(self) -> int:
        return len(self.actions)


class ReplayBuffer:
    """Fixed-capacity ring buffer with uniform sampling."""

    def __init__(self, capacity: int, obs_dim: int, n_actions: int, seed: int = 0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._obs = np.zeros((capacity, obs_dim), dtype=np.float32)
        self._actions = np.zeros(capacity, dtype=np.int64)
        self._rewards = np.zeros(capacity, dtype=np.float64)
        self._next_obs = np.zeros((capacity, obs_dim), dtype=np.float32)
        self._dones = np.zeros(capacity, dtype=bool)
        self._next_valids = np.zeros((capacity, n_actions), dtype=bool)
        self._next_actions = np.full(capacity, -1, dtype=np.int64)
        self._size = 0
        self._cursor = 0
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return self._size

    @property
    def is_full(self) -> bool:
        return self._size == self.capacity

    def push(self, t: Transition) -> None:
        i = self._cursor
        self._obs[i] = t.obs
        self._actions[i] = t.action
        self._rewards[i] = t.reward
        self._next_obs[i] = t.next_obs
        self._dones[i] = t.done
        self._next_valids[i] = t.next_valid
        self._next_actions[i] = t.next_action
        self._cursor = (self._cursor + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def set_last_next_action(self, action: int) -> None:
        """Patch a' of the most recent push (SARSA learns it one step late)."""
        if self._size == 0:
            raise RuntimeError("buffer is empty")
        self._next_actions[(self._cursor - 1) % self.capacity] = action

    def sample(self, batch_size: int) -> Batch:
        if self._size == 0:
            raise RuntimeError("cannot sample from an empty buffer")
        idx = self._rng.integers(0, self._size, size=min(batch_size, self._size))
        return Batch(
            obs=self._obs[idx].astype(np.float64),
            actions=self._actions[idx],
            rewards=self._rewards[idx],
            next_obs=self._next_obs[idx].astype(np.float64),
            dones=self._dones[idx],
            next_valids=self._next_valids[idx],
            next_actions=self._next_actions[idx],
        )
