"""Epsilon-greedy exploration schedule (linear decay)."""

from __future__ import annotations


class EpsilonSchedule:
    """Linearly decays epsilon from ``start`` to ``end`` over ``decay_steps``."""

    def __init__(self, start: float, end: float, decay_steps: int):
        if not 0.0 <= end <= start <= 1.0:
            raise ValueError("need 0 <= end <= start <= 1")
        if decay_steps < 1:
            raise ValueError("decay_steps must be >= 1")
        self.start = start
        self.end = end
        self.decay_steps = decay_steps

    def value(self, step: int) -> float:
        """Epsilon at a (0-based) global step."""
        if step >= self.decay_steps:
            return self.end
        frac = step / self.decay_steps
        return self.start + (self.end - self.start) * frac
