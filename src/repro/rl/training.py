"""Agent training loop (Section IV-B) and serialization helpers.

Training follows the paper: episodes over the training split, epsilon-greedy
behaviour with linear decay, experience replay, periodic target-network
syncs, and the END action available so the agent can stop once nothing
valuable remains (which is what makes convergence tractable, §IV-B).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.config import TrainConfig
from repro.core.reward import RewardConfig
from repro.rl.agents import QAgent, make_agent
from repro.rl.env import LabelingEnv
from repro.rl.replay import ReplayBuffer, Transition
from repro.rl.schedule import EpsilonSchedule
from repro.zoo.oracle import GroundTruth


@dataclass
class TrainingResult:
    """A trained agent plus its learning curve."""

    agent: QAgent
    episode_returns: list[float] = field(default_factory=list)
    episode_lengths: list[int] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)
    total_steps: int = 0

    def smoothed_returns(self, window: int = 20) -> np.ndarray:
        """Moving average of episode returns (for convergence checks)."""
        returns = np.asarray(self.episode_returns, dtype=np.float64)
        if len(returns) < window:
            return returns
        kernel = np.ones(window) / window
        return np.convolve(returns, kernel, mode="valid")


def train_agent(
    algo: str,
    truth: GroundTruth,
    train_item_ids: Sequence[str],
    config: TrainConfig | None = None,
    reward_config: RewardConfig | None = None,
) -> TrainingResult:
    """Train one agent on the recorded outputs of the training items.

    Parameters
    ----------
    algo:
        One of ``"dqn"``, ``"double_dqn"``, ``"dueling_dqn"``,
        ``"deep_sarsa"``.
    truth:
        Ground-truth cache covering (at least) the training items.
    train_item_ids:
        The items episodes are sampled from.
    config:
        Training hyper-parameters; defaults to :class:`TrainConfig`.
    reward_config:
        Theta priorities / smoothing for Eq. (3).
    """
    config = config or TrainConfig()
    env = LabelingEnv(
        truth,
        item_ids=train_item_ids,
        reward_config=reward_config,
        use_end_action=config.use_end_action,
        seed=config.seed,
    )
    agent = make_agent(
        algo,
        obs_dim=env.obs_dim,
        n_actions=env.n_actions,
        hidden_size=config.hidden_size,
        learning_rate=config.learning_rate,
        gamma=config.gamma,
        seed=config.seed,
    )
    buffer = ReplayBuffer(
        capacity=config.replay_capacity,
        obs_dim=env.obs_dim,
        n_actions=env.n_actions,
        seed=config.seed + 1,
    )
    # Expected total steps: a loose upper bound for the epsilon schedule.
    expected_steps = max(1, config.episodes * (env.n_models // 2 + 2))
    schedule = EpsilonSchedule(
        config.epsilon_start,
        config.epsilon_end,
        max(1, int(expected_steps * config.epsilon_decay_fraction)),
    )

    result = TrainingResult(agent=agent)
    rng = np.random.default_rng(config.seed + 2)
    global_step = 0

    for _ in range(config.episodes):
        item_id = train_item_ids[int(rng.integers(len(train_item_ids)))]
        obs = env.reset(item_id)
        episode_return = 0.0
        episode_len = 0
        pending_sarsa = False
        while not env.done:
            valid = env.valid_action_mask()
            epsilon = schedule.value(global_step)
            action = agent.act(obs, valid, epsilon)
            next_obs, reward, done, _ = env.step(action)
            if pending_sarsa:
                # The previous transition's a' is the action just taken.
                buffer.set_last_next_action(action)
            next_valid = (
                env.valid_action_mask() if not done else np.zeros_like(valid)
            )
            buffer.push(
                Transition(
                    obs=obs,
                    action=action,
                    reward=reward,
                    next_obs=next_obs,
                    done=done,
                    next_valid=next_valid,
                )
            )
            pending_sarsa = agent.on_policy and not done
            obs = next_obs
            episode_return += reward
            episode_len += 1
            global_step += 1

            if (
                len(buffer) >= config.warmup_steps
                and global_step % config.update_every == 0
            ):
                loss = agent.update(buffer.sample(config.batch_size))
                result.losses.append(loss)
            if global_step % config.target_sync_every == 0:
                agent.sync_target()

        result.episode_returns.append(episode_return)
        result.episode_lengths.append(episode_len)

    result.total_steps = global_step
    return result
