"""Scheduling policies and algorithms (Section V + baselines of Section VI).

Two families:

* **Ordering policies** — produce a full adaptive execution order; the
  analysis layer then reads cost-to-recall off the trace (Figs. 4-6, 8, 9).
* **Budgeted schedulers** — Algorithm 1 (deadline) and Algorithm 2
  (deadline+memory), plus their random and relaxed-optimal (optimal*)
  counterparts (Figs. 10-12).
"""

from repro.scheduling.base import (
    OrderingPolicy,
    ScheduledExecution,
    ScheduleTrace,
    run_ordering_policy,
)
from repro.scheduling.deadline import (
    CostQGreedyScheduler,
    QGreedyDeadlineScheduler,
    RandomDeadlineScheduler,
    RelaxedOptimalDeadline,
)
from repro.scheduling.deadline_memory import (
    MemoryDeadlineScheduler,
    RandomMemoryDeadlineScheduler,
    RelaxedOptimalMemoryDeadline,
)
from repro.scheduling.explore_exploit import ExploreExploitPolicy
from repro.scheduling.optimal import OptimalPolicy
from repro.scheduling.qgreedy import QGreedyPolicy, QValuePredictor
from repro.scheduling.random_policy import RandomPolicy
from repro.scheduling.rules import HANDCRAFTED_RULES, Rule, RuleBasedPolicy

__all__ = [
    "OrderingPolicy",
    "ScheduledExecution",
    "ScheduleTrace",
    "run_ordering_policy",
    "CostQGreedyScheduler",
    "QGreedyDeadlineScheduler",
    "RandomDeadlineScheduler",
    "RelaxedOptimalDeadline",
    "MemoryDeadlineScheduler",
    "RandomMemoryDeadlineScheduler",
    "RelaxedOptimalMemoryDeadline",
    "ExploreExploitPolicy",
    "OptimalPolicy",
    "QGreedyPolicy",
    "QValuePredictor",
    "RandomPolicy",
    "HANDCRAFTED_RULES",
    "Rule",
    "RuleBasedPolicy",
]
