"""Trace containers and the ordering-policy runner.

An *ordering policy* adaptively picks the next model to execute given the
current labeling state (it may read previously revealed outputs, never the
latent content).  Running one to completion yields a :class:`ScheduleTrace`
from which the analysis layer reads every Fig. 4/5-style metric: models
and time needed to reach any recall threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.state import LabelingState
from repro.zoo.oracle import GroundTruth

#: Absolute tolerance for float comparisons on accumulated times/values.
#: Finish times and cumulative values are sums of float costs, so exact
#: boundary hits (a deadline equal to a finish time, a recall threshold met
#: exactly at an execution) must not be lost to representation error.
TOLERANCE = 1e-9


@dataclass(frozen=True)
class ScheduledExecution:
    """One model execution inside a trace."""

    model_index: int
    model_name: str
    start_time: float
    finish_time: float
    #: Marginal value realized by this execution (Eq. 1 accounting).
    marginal_value: float
    #: Number of new valuable labels contributed.
    new_labels: int

    @property
    def duration(self) -> float:
        return self.finish_time - self.start_time


@dataclass
class ScheduleTrace:
    """The full execution history of one policy on one item."""

    item_id: str
    total_value: float
    executions: list[ScheduledExecution] = field(default_factory=list)

    @property
    def n_executed(self) -> int:
        return len(self.executions)

    @property
    def value_obtained(self) -> float:
        return sum(e.marginal_value for e in self.executions)

    @property
    def makespan(self) -> float:
        """Completion time of the last execution."""
        return max((e.finish_time for e in self.executions), default=0.0)

    @property
    def serial_time(self) -> float:
        """Total model-seconds consumed (equals makespan when serial)."""
        return sum(e.duration for e in self.executions)

    @property
    def recall(self) -> float:
        if self.total_value <= 0:
            return 1.0
        return self.value_obtained / self.total_value

    def value_by(self, deadline: float) -> float:
        """Value of executions that *finish* by ``deadline``."""
        return sum(
            e.marginal_value
            for e in self.executions
            if e.finish_time <= deadline + TOLERANCE
        )

    def recall_by(self, deadline: float) -> float:
        if self.total_value <= 0:
            return 1.0
        return self.value_by(deadline) / self.total_value

    def cumulative(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(counts, finish times, cumulative values) along the trace."""
        counts = np.arange(1, len(self.executions) + 1, dtype=np.float64)
        times = np.asarray([e.finish_time for e in self.executions])
        values = np.cumsum([e.marginal_value for e in self.executions])
        return counts, times, values

    def cost_to_recall(self, threshold: float) -> tuple[float, float]:
        """(n models, time) needed to reach a recall threshold.

        Mirrors the paper's stop condition: the policy executes models in
        its order until the recalled value reaches ``threshold`` of the
        item's total value (the stop check uses ground truth, §VI-B).  If
        the threshold is unreachable (never happens for full traces) the
        full trace cost is returned.
        """
        target = threshold * self.total_value - TOLERANCE
        running = 0.0
        for k, execution in enumerate(self.executions, start=1):
            running += execution.marginal_value
            if running >= target:
                return float(k), execution.finish_time
        return float(len(self.executions)), self.makespan


def execute_serially(
    state: LabelingState,
    trace: ScheduleTrace,
    truth: GroundTruth,
    model_index: int,
    clock: float,
) -> float:
    """Execute one model at ``clock`` with serial timing; returns new clock.

    Shared by the ordering-policy runner, Algorithm 1, and the engine
    backends so all serial execution paths record byte-identical traces.
    """
    before = state.value
    _, new_confs = state.execute(model_index)
    model = truth.zoo[model_index]
    finish = clock + model.time
    trace.executions.append(
        ScheduledExecution(
            model_index=model_index,
            model_name=model.name,
            start_time=clock,
            finish_time=finish,
            marginal_value=state.value - before,
            new_labels=len(new_confs),
        )
    )
    return finish


class OrderingPolicy:
    """Interface: pick the next model to execute given the labeling state."""

    #: Display name used in tables and figures.
    name = "ordering"

    def reset(self, truth: GroundTruth, item_id: str) -> None:
        """Called once per item before the first `next_model`."""

    def next_model(self, state: LabelingState) -> int:
        """Index of the next (unexecuted) model to run."""
        raise NotImplementedError

    def observe(self, state: LabelingState, model_index: int) -> None:
        """Called after each execution with the updated state."""


def run_ordering_policy(
    policy: OrderingPolicy,
    truth: GroundTruth,
    item_id: str,
    max_models: int | None = None,
) -> ScheduleTrace:
    """Execute a policy's full adaptive order on one item (serial timing)."""
    state = LabelingState(truth, item_id)
    policy.reset(truth, item_id)
    trace = ScheduleTrace(item_id=item_id, total_value=truth.total_value(item_id))
    limit = max_models if max_models is not None else len(truth.zoo)
    clock = 0.0
    for _ in range(limit):
        if state.all_executed:
            break
        index = policy.next_model(state)
        if state.executed[index]:
            raise RuntimeError(
                f"policy {policy.name} selected already-executed model {index}"
            )
        clock = execute_serially(state, trace, truth, index, clock)
        policy.observe(state, index)
    return trace
