"""Scheduling under a deadline constraint (Algorithm 1, §V-A).

Single-processor, serial execution, per-item time budget ``Btime``.  The
cost-Q greedy scheduler re-predicts Q values after every execution and
picks the affordable model maximizing ``Q(m | state) / m.time`` — the
cost-profit greedy rule with the DRL prediction standing in for the unknown
profit.

This module also provides the baselines of Fig. 10: the cost-oblivious
Q-greedy, the random-under-deadline policy, and the relaxed optimal*
upper bound of §V-C (fractional last model).
"""

from __future__ import annotations

from collections.abc import Sequence
from time import perf_counter

import numpy as np

from repro.core.evaluation import marginal_gain
from repro.core.state import LabelingState
from repro.obs.instrument import batch_observer
from repro.scheduling.base import (
    TOLERANCE,
    ScheduleTrace,
    execute_serially,
)
from repro.scheduling.qgreedy import QValuePredictor
from repro.zoo.oracle import GroundTruth


class CostQGreedyScheduler:
    """Algorithm 1: cost-Q greedy scheduling under a deadline.

    :meth:`schedule` is the serial reference (one item, one prediction
    per step); :meth:`schedule_batch` is the vectorized dispatch tick the
    engine backends use — one stacked prediction and one masked-argmax
    selection per round across every in-flight item, trace-identical per
    item.
    """

    name = "cost_q_greedy"

    def __init__(self, predictor: QValuePredictor):
        self.predictor = predictor

    def schedule(
        self, truth: GroundTruth, item_id: str, time_budget: float
    ) -> ScheduleTrace:
        """Run the predict-filter-select loop until the budget is spent."""
        if time_budget < 0:
            raise ValueError("time_budget must be non-negative")
        state = LabelingState(truth, item_id)
        trace = ScheduleTrace(item_id=item_id, total_value=truth.total_value(item_id))
        times = truth.zoo.times
        clock = 0.0
        budget = time_budget
        while budget > 0 and not state.all_executed:
            remaining = state.remaining
            affordable = remaining[times[remaining] <= budget + TOLERANCE]
            if len(affordable) == 0:
                break
            q = self.predictor.predict(state)
            ratios = q[affordable] / times[affordable]
            best = int(affordable[np.argmax(ratios)])
            clock = execute_serially(state, trace, truth, best, clock)
            budget -= float(times[best])
        return trace

    def schedule_batch(
        self,
        truth: GroundTruth,
        item_ids: Sequence[str],
        time_budget: float,
    ) -> list[ScheduleTrace]:
        """Algorithm 1 over many items in vectorized lock-step rounds.

        Each round issues **one** ``predict_batch`` call for every
        in-flight item and selects per item by masking the
        ``(B, n_models)`` ratio matrix ``Q / time`` with the combined
        remaining+affordability boolean mask and taking a row-wise
        argmax.  Ratios are the same elementwise divisions the serial
        loop computes on its affordable subset and ``argmax`` keeps
        first-index tie-breaking, so per-item traces replay
        :meth:`schedule` exactly (stacked-forward ULP caveat aside, see
        :class:`~repro.engine.backends.BatchedBackend`).  An item leaves
        the batch when its serial stop condition fires: budget spent, no
        affordable model left, or all models executed.
        """
        if time_budget < 0:
            raise ValueError("time_budget must be non-negative")
        times = truth.zoo.times
        states = [LabelingState(truth, item_id) for item_id in item_ids]
        traces = [
            ScheduleTrace(item_id=item_id, total_value=truth.total_value(item_id))
            for item_id in item_ids
        ]
        clocks = [0.0] * len(states)
        budgets = np.full(len(states), float(time_budget))
        active = [
            i
            for i, s in enumerate(states)
            if budgets[i] > 0 and not s.all_executed
        ]
        # None unless obs instrumentation is installed; the bare path pays
        # one branch per round and no timing calls.
        observer = batch_observer("deadline", len(item_ids))
        while active:
            if observer is not None:
                tick_started = perf_counter()
            q_batch = self.predictor.predict_batch([states[i] for i in active])
            executed = np.stack([states[i].executed for i in active])
            affordable = times[None, :] <= budgets[active, None] + TOLERANCE
            mask = ~executed & affordable
            with np.errstate(divide="ignore", invalid="ignore"):
                ratios = np.where(mask, q_batch / times[None, :], -np.inf)
            picks = np.argmax(ratios, axis=1)
            selectable = mask.any(axis=1)
            still_active = []
            for row, i in enumerate(active):
                if not selectable[row]:
                    continue
                best = int(picks[row])
                clocks[i] = execute_serially(
                    states[i], traces[i], truth, best, clocks[i]
                )
                budgets[i] -= float(times[best])
                if budgets[i] > 0 and not states[i].all_executed:
                    still_active.append(i)
            active = still_active
            if observer is not None:
                observer.tick(
                    perf_counter() - tick_started, int(selectable.sum())
                )
        if observer is not None:
            observer.done()
        return traces


class QGreedyDeadlineScheduler:
    """Fig. 10's "Q Greedy": max-Q selection until the deadline.

    Cost-oblivious — it may start a model that cannot finish within the
    budget, in which case the execution is wasted (its value does not count
    by the deadline), exactly the failure mode Algorithm 1 avoids.
    """

    name = "q_greedy_deadline"

    def __init__(self, predictor: QValuePredictor):
        self.predictor = predictor

    def schedule(
        self, truth: GroundTruth, item_id: str, time_budget: float
    ) -> ScheduleTrace:
        state = LabelingState(truth, item_id)
        trace = ScheduleTrace(item_id=item_id, total_value=truth.total_value(item_id))
        clock = 0.0
        while clock < time_budget and not state.all_executed:
            remaining = state.remaining
            q = self.predictor.predict(state)
            best = int(remaining[np.argmax(q[remaining])])
            clock = execute_serially(state, trace, truth, best, clock)
        return trace


class RandomDeadlineScheduler:
    """The paper's Fig. 10 random baseline: "randomly selects model until
    the deadline".

    Deliberately cost-oblivious: it keeps drawing random models while the
    clock is before the deadline, so its last pick typically overshoots and
    contributes nothing by the deadline — exactly the waste Algorithm 1's
    affordability filter avoids.  Evaluate with ``trace.recall_by(budget)``.
    """

    name = "random_deadline"

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)

    def schedule(
        self, truth: GroundTruth, item_id: str, time_budget: float
    ) -> ScheduleTrace:
        state = LabelingState(truth, item_id)
        trace = ScheduleTrace(item_id=item_id, total_value=truth.total_value(item_id))
        clock = 0.0
        while clock < time_budget and not state.all_executed:
            remaining = state.remaining
            best = int(remaining[self._rng.integers(len(remaining))])
            clock = execute_serially(state, trace, truth, best, clock)
        return trace


class RelaxedOptimalDeadline:
    """The optimal* upper bound of §V-C for the deadline constraint.

    Greedy on the true marginal gain per unit time; when the remaining
    budget cannot fit the selected model, the model still contributes the
    corresponding *proportion* of its marginal value (relaxation), after
    which scheduling stops.  The returned value upper-bounds every exact
    policy's value, so `ours / optimal*` lower-bounds the true ratio.
    """

    name = "optimal_star_deadline"

    def value(self, truth: GroundTruth, item_id: str, time_budget: float) -> float:
        state = LabelingState(truth, item_id)
        times = truth.zoo.times
        budget = time_budget
        value = 0.0
        while budget > 0 and not state.all_executed:
            remaining = state.remaining
            gains = np.asarray(
                [
                    marginal_gain(truth, item_id, state.confidences, int(j))
                    for j in remaining
                ]
            )
            ratios = gains / times[remaining]
            pick = int(np.argmax(ratios))
            best = int(remaining[pick])
            gain = float(gains[pick])
            if gain <= 0:
                break
            cost = float(times[best])
            if cost <= budget + 1e-9:
                state.execute(best)
                value += gain
                budget -= cost
            else:
                value += gain * (budget / cost)
                budget = 0.0
        return value

    def recall(self, truth: GroundTruth, item_id: str, time_budget: float) -> float:
        total = truth.total_value(item_id)
        if total <= 0:
            return 1.0
        return self.value(truth, item_id, time_budget) / total
