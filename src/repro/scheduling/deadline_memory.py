"""Scheduling under deadline + memory constraints (Algorithm 2, §V-B).

Multi-processor, shared-memory setting: several models may run in parallel
as long as their summed memory stays within ``Bmem``; the whole schedule
must finish within ``Btime``.  The heuristic per the paper:

1. among affordable models, pick the pivot maximizing
   ``Q / (time * mem)`` — the best value per unit resource *area*;
2. set the pivot's finish time as a temporary deadline and greedily pack
   models maximizing ``Q / mem`` that fit the remaining memory (and the
   temporary deadline);
3. when any running model finishes, release its memory, update the labeling
   state with its output, and re-enter the loop with fresh Q predictions.

Execution is simulated event-drive: outputs are revealed at a model's
*finish* time, and only executions finishing within the deadline count
towards the value (recall) metrics.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.core.evaluation import marginal_gain
from repro.core.state import LabelingState
from repro.obs.instrument import batch_observer
from repro.scheduling.base import ScheduledExecution, ScheduleTrace
from repro.scheduling.qgreedy import QValuePredictor
from repro.zoo.oracle import GroundTruth


@dataclass(order=True)
class _Running:
    finish_time: float
    model_index: int
    #: Exact start instant (kept explicitly: recomputing it as
    #: ``finish - time`` loses float precision and breaks the invariant
    #: that a model starting the instant another finishes reuses its memory).
    start_time: float = 0.0


class _ParallelSim:
    """Shared bookkeeping for the parallel schedulers below."""

    def __init__(self, truth: GroundTruth, item_id: str, memory_budget: float):
        self.truth = truth
        self.state = LabelingState(truth, item_id)
        self.trace = ScheduleTrace(
            item_id=item_id, total_value=truth.total_value(item_id)
        )
        self.clock = 0.0
        self.free_mem = memory_budget
        self.heap: list[_Running] = []
        self.started: set[int] = set()

    @property
    def startable_mask(self) -> np.ndarray:
        """Boolean mask of models neither finished nor currently running."""
        pending = ~self.state.executed
        for running in self.heap:
            pending[running.model_index] = False
        for started in self.started:
            pending[started] = False
        return pending

    @property
    def startable(self) -> np.ndarray:
        """Models neither finished nor currently running (indices)."""
        return np.nonzero(self.startable_mask)[0]

    def start(self, index: int) -> None:
        model = self.truth.zoo[index]
        if model.mem > self.free_mem + 1e-9:
            raise RuntimeError(f"model {model.name} does not fit in memory")
        self.free_mem -= model.mem
        self.started.add(index)
        heapq.heappush(
            self.heap,
            _Running(self.clock + model.time, index, start_time=self.clock),
        )

    def finish_next(self) -> None:
        """Advance the clock to the next completion and record it."""
        running = heapq.heappop(self.heap)
        index = running.model_index
        model = self.truth.zoo[index]
        before = self.state.value
        _, new_confs = self.state.execute(index)
        self.free_mem += model.mem
        start_time = running.start_time
        self.clock = running.finish_time
        self.started.discard(index)
        self.trace.executions.append(
            ScheduledExecution(
                model_index=index,
                model_name=model.name,
                start_time=start_time,
                finish_time=running.finish_time,
                marginal_value=self.state.value - before,
                new_labels=len(new_confs),
            )
        )


class MemoryDeadlineScheduler:
    """Algorithm 2: the two-dimension cost-Q heuristic.

    :meth:`schedule` is the serial reference; :meth:`schedule_batch`
    vectorizes the greedy core across items — one stacked prediction per
    simulation round and a masked-argmax pivot selection over the
    ``(B, n_models)`` score matrix — while the per-item memory-packing
    fill loop stays sequential (each fill changes that item's free
    memory).  Traces are identical per item.
    """

    name = "memory_deadline"

    def __init__(self, predictor: QValuePredictor):
        self.predictor = predictor

    def _fill(
        self,
        sim: _ParallelSim,
        q: np.ndarray,
        times: np.ndarray,
        mems: np.ndarray,
        fill_deadlines: tuple[float, float],
    ) -> int:
        """The memory-packing fill passes shared by both schedule paths.

        Fill remaining memory: best value per unit memory among models
        finishing within the temporary (pivot) deadline (Algorithm 2
        line 7), then — refinement over the pseudocode — a second pass
        bounded by the global deadline, so leftover memory is not idled
        when only longer-than-pivot models remain.  Returns how many
        models the passes started.
        """
        started = 0
        for fill_deadline in fill_deadlines:
            while True:
                candidates = sim.startable
                fill = candidates[
                    (mems[candidates] <= sim.free_mem + 1e-9)
                    & (sim.clock + times[candidates] <= fill_deadline + 1e-9)
                ]
                if len(fill) == 0:
                    break
                chosen = int(fill[np.argmax(q[fill] / mems[fill])])
                sim.start(chosen)
                started += 1
        return started

    def schedule(
        self,
        truth: GroundTruth,
        item_id: str,
        time_budget: float,
        memory_budget: float,
    ) -> ScheduleTrace:
        if time_budget < 0 or memory_budget < 0:
            raise ValueError("budgets must be non-negative")
        sim = _ParallelSim(truth, item_id, memory_budget)
        times = truth.zoo.times
        mems = truth.zoo.mems

        while sim.clock < time_budget:
            candidates = sim.startable
            if len(candidates) == 0 and not sim.heap:
                break
            q = self.predictor.predict(sim.state)

            # Pivot: best value per unit (time x memory) area among models
            # that fit free memory (Algorithm 2 line 3) and can still finish
            # before the deadline.  The deadline part is our addition in the
            # spirit of Algorithm 1's line 3 — without it the last pivot
            # wave is pure waste; the random baseline deliberately keeps the
            # paper's waste (see RandomMemoryDeadlineScheduler).
            fits = candidates[
                (mems[candidates] <= sim.free_mem + 1e-9)
                & (sim.clock + times[candidates] <= time_budget + 1e-9)
            ]
            if len(fits) > 0:
                areas = times[fits] * mems[fits]
                pivot = int(fits[np.argmax(q[fits] / areas)])
                sim.start(pivot)
                temp_deadline = sim.clock + float(times[pivot])
                self._fill(sim, q, times, mems, (temp_deadline, time_budget))
            if not sim.heap:
                break
            # Wait for one completion; its output updates the state.
            sim.finish_next()

        # Drain everything still running; recall_by(deadline) discounts
        # executions that finish past the deadline.
        while sim.heap:
            sim.finish_next()
        return sim.trace

    def schedule_batch(
        self,
        truth: GroundTruth,
        item_ids: Sequence[str],
        time_budget: float,
        memory_budget: float,
    ) -> list[ScheduleTrace]:
        """Algorithm 2 over many items in vectorized lock-step rounds.

        Round ``k`` of the batch is iteration ``k`` of each item's serial
        simulation loop (each iteration starts a pivot wave and retires
        one completion), so the stacked states predicted each round are
        exactly the states the serial loop would have predicted on —
        **one** ``predict_batch`` call per round instead of one
        ``predict`` per item per round.  Pivot selection is a masked
        argmax over the ``(B, n_models)`` matrix ``Q / (time × mem)``
        with the combined startable/memory-fit/deadline-fit boolean
        mask; the fill passes then replay serially per item (each start
        consumes that item's free memory).  An item leaves the batch when
        its serial loop would exit; its still-running models drain
        exactly as in :meth:`schedule`.
        """
        if time_budget < 0 or memory_budget < 0:
            raise ValueError("budgets must be non-negative")
        times = truth.zoo.times
        mems = truth.zoo.mems
        areas = times * mems
        sims = [_ParallelSim(truth, item_id, memory_budget) for item_id in item_ids]

        def continues(sim: _ParallelSim) -> bool:
            """The serial loop's entry condition (top-of-loop checks)."""
            if not sim.clock < time_budget:
                return False
            return bool(sim.startable_mask.any()) or bool(sim.heap)

        active = [i for i, sim in enumerate(sims) if continues(sim)]
        # None unless obs instrumentation is installed; the bare path pays
        # one branch per round and no timing calls.
        observer = batch_observer("deadline_memory", len(item_ids))
        while active:
            if observer is not None:
                tick_started = perf_counter()
            q_batch = self.predictor.predict_batch(
                [sims[i].state for i in active]
            )
            startable = np.stack([sims[i].startable_mask for i in active])
            free = np.asarray([sims[i].free_mem for i in active])
            clocks = np.asarray([sims[i].clock for i in active])
            # Pivot: best value per unit (time x memory) area among models
            # that fit free memory and can still finish before the deadline
            # — the same filter as the serial loop, as (B, n_models) masks.
            fits = (
                startable
                & (mems[None, :] <= free[:, None] + 1e-9)
                & (clocks[:, None] + times[None, :] <= time_budget + 1e-9)
            )
            with np.errstate(divide="ignore", invalid="ignore"):
                scores = np.where(fits, q_batch / areas[None, :], -np.inf)
            pivots = np.argmax(scores, axis=1)
            has_pivot = fits.any(axis=1)
            started = 0
            still_active = []
            for row, i in enumerate(active):
                sim = sims[i]
                if has_pivot[row]:
                    pivot = int(pivots[row])
                    sim.start(pivot)
                    temp_deadline = sim.clock + float(times[pivot])
                    started += 1 + self._fill(
                        sim,
                        q_batch[row],
                        times,
                        mems,
                        (temp_deadline, time_budget),
                    )
                if not sim.heap:
                    continue
                sim.finish_next()
                if continues(sim):
                    still_active.append(i)
            active = still_active
            if observer is not None:
                observer.tick(perf_counter() - tick_started, started)
        if observer is not None:
            observer.done()

        for sim in sims:
            while sim.heap:
                sim.finish_next()
        return [sim.trace for sim in sims]


class RandomMemoryDeadlineScheduler:
    """Fig. 11 baseline: "randomly selects model that could be packed into
    GPU to execute until the deadline".

    Packing checks memory only (like the paper's random baseline) — the
    last wave of models typically straddles the deadline and contributes
    nothing by it.  Evaluate with ``trace.recall_by(budget)``.
    """

    name = "random_memory_deadline"

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)

    def schedule(
        self,
        truth: GroundTruth,
        item_id: str,
        time_budget: float,
        memory_budget: float,
    ) -> ScheduleTrace:
        sim = _ParallelSim(truth, item_id, memory_budget)
        mems = truth.zoo.mems
        while sim.clock < time_budget:
            while True:
                candidates = sim.startable
                fits = candidates[mems[candidates] <= sim.free_mem + 1e-9]
                if len(fits) == 0:
                    break
                sim.start(int(fits[self._rng.integers(len(fits))]))
            if not sim.heap:
                break
            sim.finish_next()
        while sim.heap:
            sim.finish_next()
        return sim.trace


class RelaxedOptimalMemoryDeadline:
    """Optimal* upper bound for the two-dimension constraint (§V-C).

    Greedy on true marginal gain per unit (time x memory) area with the
    relaxation that the last selected model may contribute a proportional
    fraction of its value.  The relaxation also drops the packing
    feasibility question (any fractional area fits), so this value is an
    upper bound on every feasible parallel schedule's value.
    """

    name = "optimal_star_memory"

    def value(
        self,
        truth: GroundTruth,
        item_id: str,
        time_budget: float,
        memory_budget: float,
    ) -> float:
        state = LabelingState(truth, item_id)
        times = truth.zoo.times
        mems = truth.zoo.mems
        # Total resource area available (relaxed packing).
        area_budget = time_budget * memory_budget
        value = 0.0
        while area_budget > 0 and not state.all_executed:
            remaining = state.remaining
            gains = np.asarray(
                [
                    marginal_gain(truth, item_id, state.confidences, int(j))
                    for j in remaining
                ]
            )
            areas = times[remaining] * mems[remaining]
            pick = int(np.argmax(gains / areas))
            gain = float(gains[pick])
            if gain <= 0:
                break
            area = float(areas[pick])
            if area <= area_budget + 1e-9:
                state.execute(int(remaining[pick]))
                value += gain
                area_budget -= area
            else:
                value += gain * (area_budget / area)
                area_budget = 0.0
        return value

    def recall(
        self,
        truth: GroundTruth,
        item_id: str,
        time_budget: float,
        memory_budget: float,
    ) -> float:
        total = truth.total_value(item_id)
        if total <= 0:
            return 1.0
        return self.value(truth, item_id, time_budget, memory_budget) / total
