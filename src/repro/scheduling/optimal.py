"""Oracle policies that read ground truth (upper-bound baselines).

* :class:`OptimalPolicy` — the paper's "optimal policy": execute models in
  descending order of their true output value (§VI-B).  It knows each
  model's value but still pays for every execution it makes.
* :class:`GreedyMarginalPolicy` — a stronger oracle ordering by true
  *marginal* gain per unit time; used by the optimal* constructions of
  §V-C (see :mod:`repro.scheduling.deadline`).
* :class:`ParetoPlanner` — the offline *exact* per-budget optimum: the
  best model subset fitting a time budget under the max-confidence union
  value of Eq. (1), found by branch and bound.  Unlike the relaxed
  optimal* bound it is attainable, so the RL scheduler's gap to it is a
  true regret; sweeping budgets traces the exact cost/recall Pareto
  frontier (``bench_pareto_planner.py`` reports the gap per budget).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.evaluation import marginal_gain
from repro.core.state import LabelingState
from repro.scheduling.base import TOLERANCE, OrderingPolicy
from repro.zoo.oracle import GroundTruth


class OptimalPolicy(OrderingPolicy):
    """Descending true-solo-value order (the paper's optimal baseline)."""

    name = "optimal"

    def __init__(self) -> None:
        self._order: list[int] = []
        self._cursor = 0

    def reset(self, truth: GroundTruth, item_id: str) -> None:
        solo = truth.solo_values(item_id)
        self._order = list(np.argsort(-solo, kind="stable"))
        self._cursor = 0

    def next_model(self, state: LabelingState) -> int:
        while self._cursor < len(self._order):
            index = int(self._order[self._cursor])
            self._cursor += 1
            if not state.executed[index]:
                return index
        raise RuntimeError("optimal order exhausted")  # pragma: no cover


class GreedyMarginalPolicy(OrderingPolicy):
    """Oracle greedy on true marginal gain divided by a cost exponent.

    With ``cost="time"`` this is the relaxed-optimal selection rule of
    §V-C for the deadline constraint; with ``cost="time_mem"`` the
    deadline-memory variant.
    """

    name = "greedy_marginal"

    def __init__(self, cost: str = "unit"):
        if cost not in ("unit", "time", "time_mem"):
            raise ValueError(f"unknown cost divisor: {cost!r}")
        self._cost = cost
        self._truth: GroundTruth | None = None
        self._item_id = ""

    def reset(self, truth: GroundTruth, item_id: str) -> None:
        self._truth = truth
        self._item_id = item_id

    def next_model(self, state: LabelingState) -> int:
        truth = self._truth
        remaining = state.remaining
        best_index = -1
        best_score = -np.inf
        for index in remaining:
            gain = marginal_gain(
                truth, self._item_id, state.confidences, int(index)
            )
            model = truth.zoo[int(index)]
            if self._cost == "time":
                score = gain / model.time
            elif self._cost == "time_mem":
                score = gain / (model.time * model.mem)
            else:
                score = gain
            if score > best_score:
                best_score = score
                best_index = int(index)
        return best_index


@dataclass(frozen=True)
class PlanResult:
    """One exact plan: the optimal subset for one item at one budget."""

    item_id: str
    time_budget: float
    #: Optimal achievable value within the budget (max-confidence union).
    value: float
    #: Zoo indices of the optimal subset, in the search's density order.
    model_indices: tuple[int, ...]
    #: Total model time the subset consumes.
    time_used: float
    #: Branch-and-bound nodes expanded to prove optimality.
    nodes: int

    def recall(self, total_value: float) -> float:
        if total_value <= 0:
            return 1.0
        return self.value / total_value


class ParetoPlanner:
    """Exact offline optimum under a time budget, by branch and bound.

    Chooses the model subset ``S`` maximizing the union value
    ``f(S) = sum_l max_{m in S} conf_m(l)`` subject to
    ``sum_{m in S} time(m) <= budget`` — the integral problem whose
    *fractional* relaxation is §V-C's optimal*.  Models are explored in
    descending solo-value-per-second order; at every node the admissible
    bound is the fractional knapsack over the remaining models' current
    marginal gains, which upper-bounds any completion because ``f`` is
    submodular (a later gain never exceeds the current one).  Exact for
    the paper-scale zoo (30 models) in milliseconds per item; the
    planner is offline tooling — it reads ground truth and is never a
    scheduling policy.
    """

    name = "pareto_planner"

    def plan(
        self, truth: GroundTruth, item_id: str, time_budget: float
    ) -> PlanResult:
        """The provably optimal subset for one item at one budget."""
        if time_budget < 0:
            raise ValueError("time_budget must be non-negative")
        zoo = truth.zoo
        n_labels = len(zoo.space)
        times_all = zoo.times
        solo = truth.solo_values(item_id)
        # Candidates: affordable models that emit at least one valuable
        # label.  Density order makes the greedy incumbent near-optimal
        # immediately, which is what makes the bound prune hard.
        candidates = np.nonzero(
            (solo > 0.0) & (times_all <= time_budget + TOLERANCE)
        )[0]
        order = candidates[np.argsort(-(solo[candidates] / times_all[candidates]))]
        matrix = np.zeros((len(order), n_labels), dtype=np.float64)
        for row, index in enumerate(order):
            ids, confs = truth.valuable(item_id, int(index))
            if len(ids):
                np.maximum.at(matrix[row], ids, confs)
        times = times_all[order]

        best_value = 0.0
        best_chosen: tuple[int, ...] = ()
        nodes = 0

        def upper_bound(k: int, conf: np.ndarray, budget: float) -> float:
            """Fractional knapsack over remaining current marginal gains."""
            gains = np.maximum(matrix[k:] - conf, 0.0).sum(axis=1)
            if not len(gains):
                return 0.0
            density_order = np.argsort(-(gains / times[k:]))
            total = 0.0
            left = budget
            for j in density_order:
                gain = float(gains[j])
                if gain <= 0.0 or left <= 0.0:
                    break
                cost = float(times[k + j])
                if cost <= left:
                    total += gain
                    left -= cost
                else:
                    total += gain * (left / cost)
                    break
            return total

        def dfs(
            k: int, conf: np.ndarray, value: float, budget: float, chosen: list[int]
        ) -> None:
            nonlocal best_value, best_chosen, nodes
            nodes += 1
            if value > best_value + 1e-12:
                best_value = value
                best_chosen = tuple(chosen)
            if k == len(order) or budget <= TOLERANCE:
                return
            if value + upper_bound(k, conf, budget) <= best_value + 1e-12:
                return
            if times[k] <= budget + TOLERANCE:
                merged = np.maximum(conf, matrix[k])
                chosen.append(k)
                dfs(
                    k + 1,
                    merged,
                    value + float((merged - conf).sum()),
                    budget - float(times[k]),
                    chosen,
                )
                chosen.pop()
            dfs(k + 1, conf, value, budget, chosen)

        dfs(0, np.zeros(n_labels), 0.0, float(time_budget), [])
        return PlanResult(
            item_id=item_id,
            time_budget=float(time_budget),
            value=best_value,
            model_indices=tuple(int(order[k]) for k in best_chosen),
            time_used=float(times_all[[int(order[k]) for k in best_chosen]].sum()),
            nodes=nodes,
        )

    def frontier(
        self,
        truth: GroundTruth,
        item_id: str,
        budgets: "np.ndarray | list[float] | tuple[float, ...]",
    ) -> list[PlanResult]:
        """The exact cost/recall Pareto frontier: one plan per budget."""
        return [self.plan(truth, item_id, float(b)) for b in budgets]
