"""Oracle policies that read ground truth (upper-bound baselines).

* :class:`OptimalPolicy` — the paper's "optimal policy": execute models in
  descending order of their true output value (§VI-B).  It knows each
  model's value but still pays for every execution it makes.
* :class:`GreedyMarginalPolicy` — a stronger oracle ordering by true
  *marginal* gain per unit time; used by the optimal* constructions of
  §V-C (see :mod:`repro.scheduling.deadline`).
"""

from __future__ import annotations

import numpy as np

from repro.core.evaluation import marginal_gain
from repro.core.state import LabelingState
from repro.scheduling.base import OrderingPolicy
from repro.zoo.oracle import GroundTruth


class OptimalPolicy(OrderingPolicy):
    """Descending true-solo-value order (the paper's optimal baseline)."""

    name = "optimal"

    def __init__(self) -> None:
        self._order: list[int] = []
        self._cursor = 0

    def reset(self, truth: GroundTruth, item_id: str) -> None:
        solo = truth.solo_values(item_id)
        self._order = list(np.argsort(-solo, kind="stable"))
        self._cursor = 0

    def next_model(self, state: LabelingState) -> int:
        while self._cursor < len(self._order):
            index = int(self._order[self._cursor])
            self._cursor += 1
            if not state.executed[index]:
                return index
        raise RuntimeError("optimal order exhausted")  # pragma: no cover


class GreedyMarginalPolicy(OrderingPolicy):
    """Oracle greedy on true marginal gain divided by a cost exponent.

    With ``cost="time"`` this is the relaxed-optimal selection rule of
    §V-C for the deadline constraint; with ``cost="time_mem"`` the
    deadline-memory variant.
    """

    name = "greedy_marginal"

    def __init__(self, cost: str = "unit"):
        if cost not in ("unit", "time", "time_mem"):
            raise ValueError(f"unknown cost divisor: {cost!r}")
        self._cost = cost
        self._truth: GroundTruth | None = None
        self._item_id = ""

    def reset(self, truth: GroundTruth, item_id: str) -> None:
        self._truth = truth
        self._item_id = item_id

    def next_model(self, state: LabelingState) -> int:
        truth = self._truth
        remaining = state.remaining
        best_index = -1
        best_score = -np.inf
        for index in remaining:
            gain = marginal_gain(
                truth, self._item_id, state.confidences, int(index)
            )
            model = truth.zoo[int(index)]
            if self._cost == "time":
                score = gain / model.time
            elif self._cost == "time_mem":
                score = gain / (model.time * model.mem)
            else:
                score = gain
            if score > best_score:
                best_score = score
                best_index = int(index)
        return best_index
