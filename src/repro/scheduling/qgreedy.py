"""Q-value greedy policy and the predictor abstraction.

The *Q-value greedy policy* (§VI-B) executes, at every step, the remaining
model with the maximal predicted Q value given the current labeling state.
It is cost-oblivious; Algorithm 1 adds cost-awareness on top of the same
predictions.

:class:`QValuePredictor` is the thin interface the scheduling layer sees:
"given the labeling state, predict a value per model".  The default
implementation wraps a trained Q agent (dropping its END head); tests also
use an oracle predictor to isolate scheduler behaviour from agent quality.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Sequence
from time import perf_counter

import numpy as np

from repro.core.state import LabelingState
from repro.obs.instrument import batch_observer
from repro.rl.agents import QAgent
from repro.scheduling.base import (
    OrderingPolicy,
    ScheduleTrace,
    execute_serially,
)
from repro.zoo.oracle import GroundTruth


class QValuePredictor:
    """Predicts per-model values from the labeling state."""

    def predict(self, state: LabelingState) -> np.ndarray:
        """Return one value per zoo model (higher = more promising)."""
        raise NotImplementedError

    def predict_batch(self, states: Sequence[LabelingState]) -> np.ndarray:
        """Values for many states at once, shape ``(len(states), n_models)``.

        Default implementation loops over :meth:`predict`; predictors with a
        vectorizable substrate (the Q network) override it with one stacked
        forward pass.
        """
        return np.stack([self.predict(state) for state in states])


class AgentPredictor(QValuePredictor):
    """Wraps a trained Q agent; model actions only (END is training-only)."""

    def __init__(self, agent: QAgent, n_models: int):
        if agent.n_actions < n_models:
            raise ValueError(
                f"agent has {agent.n_actions} actions but zoo has {n_models} models"
            )
        self.agent = agent
        self.n_models = n_models

    def predict(self, state: LabelingState) -> np.ndarray:
        q = self.agent.q_values(state.vector.astype(np.float64))
        return q[: self.n_models]

    def predict_batch(self, states: Sequence[LabelingState]) -> np.ndarray:
        obs = np.stack([state.vector for state in states]).astype(np.float64)
        q = self.agent.q_values_batch(obs)
        return q[:, : self.n_models]


class OraclePredictor(QValuePredictor):
    """Cheating predictor returning true marginal gains (tests/upper bounds).

    Gains are computed against a cached per-item dense matrix ``V`` of
    shape ``(n_models, n_labels)`` holding each model's valuable
    confidences (zero elsewhere): the gain of model ``j`` given the
    current best-confidence vector ``c`` is ``max(V[j] - c, 0).sum()`` —
    exactly :func:`~repro.core.evaluation.marginal_gain`, but one numpy
    expression over all models instead of a Python loop per model, and
    the same expression batches over many states in
    :meth:`predict_batch`.  The matrix cache is a bounded LRU (eviction
    by least-recent *access*, not insertion) so oracle runs over long
    streams stay in bounded memory while hot items survive; a per-item
    build guard ensures two threads missing the same item build its
    matrix exactly once.  Scheduling is otherwise read-only; this cache
    is the one write path, which is what keeps a shared oracle safe on
    the thread backend.
    """

    #: Per-item dense matrices kept before evicting the least recently used.
    CACHE_ITEMS = 512

    def __init__(self, truth: GroundTruth, item_id: str | None = None):
        self.truth = truth
        self.item_id = item_id
        self._gain_matrices: OrderedDict[str, np.ndarray] = OrderedDict()
        self._cache_lock = threading.Lock()
        #: item_id -> lock held while that item's matrix is being built,
        #: so concurrent misses on one item serialize instead of both
        #: paying for (and racing to insert) the same dense matrix.
        self._building: dict[str, threading.Lock] = {}

    def _lookup(self, item_id: str) -> np.ndarray | None:
        """Cache hit under the lock, refreshing LRU recency."""
        matrix = self._gain_matrices.get(item_id)
        if matrix is not None:
            self._gain_matrices.move_to_end(item_id)
        return matrix

    def _gain_matrix(self, item_id: str) -> np.ndarray:
        with self._cache_lock:
            matrix = self._lookup(item_id)
            if matrix is not None:
                return matrix
            guard = self._building.setdefault(item_id, threading.Lock())
        with guard:
            with self._cache_lock:
                # Double-check: the builder that held the guard before us
                # (or a racer that finished between our two lock takes)
                # already inserted the matrix.
                matrix = self._lookup(item_id)
                if matrix is not None:
                    return matrix
            zoo = self.truth.zoo
            matrix = np.zeros((len(zoo), len(zoo.space)), dtype=np.float64)
            for index in range(len(zoo)):
                ids, confs = self.truth.valuable(item_id, index)
                if len(ids):
                    np.maximum.at(matrix[index], ids, confs)
            with self._cache_lock:
                while len(self._gain_matrices) >= self.CACHE_ITEMS:
                    self._gain_matrices.popitem(last=False)
                self._gain_matrices[item_id] = matrix
                self._building.pop(item_id, None)
        return matrix

    def predict(self, state: LabelingState) -> np.ndarray:
        item_id = self.item_id or state.item_id
        matrix = self._gain_matrix(item_id)
        # Entries where V is zero contribute max(0 - c, 0) = 0, so no
        # valuable-label mask is needed (confidences are non-negative).
        return np.maximum(matrix - state.confidences, 0.0).sum(axis=1)

    def predict_batch(self, states: Sequence[LabelingState]) -> np.ndarray:
        stacked = np.stack(
            [self._gain_matrix(self.item_id or s.item_id) for s in states]
        )
        confs = np.stack([s.confidences for s in states])
        return np.maximum(stacked - confs[:, None, :], 0.0).sum(axis=2)


class QGreedyPolicy(OrderingPolicy):
    """Greedy on predicted Q values, ignoring costs (§VI-B)."""

    name = "q_greedy"

    def __init__(self, predictor: QValuePredictor):
        self.predictor = predictor

    def next_model(self, state: LabelingState) -> int:
        q = self.predictor.predict(state)
        remaining = state.remaining
        if len(remaining) == 0:
            raise RuntimeError("no models remain")  # pragma: no cover
        return int(remaining[np.argmax(q[remaining])])

    def schedule_batch(
        self,
        truth: GroundTruth,
        item_ids: Sequence[str],
        max_models: int | None = None,
    ) -> list[ScheduleTrace]:
        """Vectorized lock-step rollout of many items: one dispatch tick
        issues **one** :meth:`~QValuePredictor.predict_batch` call across
        all in-flight items and selects per item with a masked argmax
        over the ``(B, n_models)`` score matrix.

        Round ``k`` of the batch corresponds to step ``k`` of each serial
        run, and masking executed models to ``-inf`` before a row-wise
        ``argmax`` replays :meth:`next_model`'s selection exactly —
        including first-index tie-breaking — so traces are identical to
        :func:`~repro.scheduling.base.run_ordering_policy` per item
        (modulo the stacked-forward ULP caveat documented on
        :class:`~repro.engine.backends.BatchedBackend`).
        """
        states = [LabelingState(truth, item_id) for item_id in item_ids]
        traces = [
            ScheduleTrace(item_id=item_id, total_value=truth.total_value(item_id))
            for item_id in item_ids
        ]
        clocks = [0.0] * len(states)
        limit = max_models if max_models is not None else len(truth.zoo)
        active = [i for i, s in enumerate(states) if not s.all_executed]
        rounds = 0
        # None unless obs instrumentation is installed; the bare path pays
        # one branch per round and no timing calls.
        observer = batch_observer("qgreedy", len(item_ids))
        while active and rounds < limit:
            if observer is not None:
                tick_started = perf_counter()
            selected = len(active)
            q_batch = self.predictor.predict_batch([states[i] for i in active])
            executed = np.stack([states[i].executed for i in active])
            picks = np.argmax(np.where(executed, -np.inf, q_batch), axis=1)
            still_active = []
            for row, i in enumerate(active):
                index = int(picks[row])
                clocks[i] = execute_serially(
                    states[i], traces[i], truth, index, clocks[i]
                )
                if not states[i].all_executed:
                    still_active.append(i)
            active = still_active
            rounds += 1
            if observer is not None:
                observer.tick(perf_counter() - tick_started, selected)
        if observer is not None:
            observer.done()
        return traces
