"""Q-value greedy policy and the predictor abstraction.

The *Q-value greedy policy* (§VI-B) executes, at every step, the remaining
model with the maximal predicted Q value given the current labeling state.
It is cost-oblivious; Algorithm 1 adds cost-awareness on top of the same
predictions.

:class:`QValuePredictor` is the thin interface the scheduling layer sees:
"given the labeling state, predict a value per model".  The default
implementation wraps a trained Q agent (dropping its END head); tests also
use an oracle predictor to isolate scheduler behaviour from agent quality.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.state import LabelingState
from repro.rl.agents import QAgent
from repro.scheduling.base import OrderingPolicy
from repro.zoo.oracle import GroundTruth


class QValuePredictor:
    """Predicts per-model values from the labeling state."""

    def predict(self, state: LabelingState) -> np.ndarray:
        """Return one value per zoo model (higher = more promising)."""
        raise NotImplementedError

    def predict_batch(self, states: Sequence[LabelingState]) -> np.ndarray:
        """Values for many states at once, shape ``(len(states), n_models)``.

        Default implementation loops over :meth:`predict`; predictors with a
        vectorizable substrate (the Q network) override it with one stacked
        forward pass.
        """
        return np.stack([self.predict(state) for state in states])


class AgentPredictor(QValuePredictor):
    """Wraps a trained Q agent; model actions only (END is training-only)."""

    def __init__(self, agent: QAgent, n_models: int):
        if agent.n_actions < n_models:
            raise ValueError(
                f"agent has {agent.n_actions} actions but zoo has {n_models} models"
            )
        self.agent = agent
        self.n_models = n_models

    def predict(self, state: LabelingState) -> np.ndarray:
        q = self.agent.q_values(state.vector.astype(np.float64))
        return q[: self.n_models]

    def predict_batch(self, states: Sequence[LabelingState]) -> np.ndarray:
        obs = np.stack([state.vector for state in states]).astype(np.float64)
        q = self.agent.q_values_batch(obs)
        return q[:, : self.n_models]


class OraclePredictor(QValuePredictor):
    """Cheating predictor returning true marginal gains (tests/upper bounds)."""

    def __init__(self, truth: GroundTruth, item_id: str | None = None):
        self.truth = truth
        self.item_id = item_id

    def predict(self, state: LabelingState) -> np.ndarray:
        from repro.core.evaluation import marginal_gain

        item_id = self.item_id or state.item_id
        gains = np.zeros(len(self.truth.zoo))
        for index in range(len(self.truth.zoo)):
            gains[index] = marginal_gain(
                self.truth, item_id, state.confidences, index
            )
        return gains


class QGreedyPolicy(OrderingPolicy):
    """Greedy on predicted Q values, ignoring costs (§VI-B)."""

    name = "q_greedy"

    def __init__(self, predictor: QValuePredictor):
        self.predictor = predictor

    def next_model(self, state: LabelingState) -> int:
        q = self.predictor.predict(state)
        remaining = state.remaining
        if len(remaining) == 0:
            raise RuntimeError("no models remain")  # pragma: no cover
        return int(remaining[np.argmax(q[remaining])])
