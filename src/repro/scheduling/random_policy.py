"""Random policy: executes models in a uniformly random order (§II, §VI-B)."""

from __future__ import annotations

import numpy as np

from repro.core.state import LabelingState
from repro.scheduling.base import OrderingPolicy
from repro.zoo.oracle import GroundTruth


class RandomPolicy(OrderingPolicy):
    """Uniformly random model order, fixed per item at reset time."""

    name = "random"

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)
        self._order: list[int] = []
        self._cursor = 0

    def reset(self, truth: GroundTruth, item_id: str) -> None:
        self._order = list(self._rng.permutation(len(truth.zoo)))
        self._cursor = 0

    def next_model(self, state: LabelingState) -> int:
        while self._cursor < len(self._order):
            index = self._order[self._cursor]
            self._cursor += 1
            if not state.executed[index]:
                return index
        raise RuntimeError("random order exhausted")  # pragma: no cover
