"""Handcrafted rule-based scheduling (Table II, §III-B, §VI-C).

Each rule fires when an executed model outputs a matching label and
multiplies the execution probability of every model of a target task by a
fixed factor (2x to promote, 0.5x to demote).  The policy starts from
uniform model weights, applies fired rules after every execution, and
samples the next model proportionally to the resulting weights — the
paper's P(Task) mechanism.

The ten rules below are the paper's Table II, expressed against our
vocabulary: e.g. *Object Detection outputs "person" -> double the
probability of Pose Estimation models*.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.state import LabelingState
from repro.scheduling.base import OrderingPolicy
from repro.vocab import (
    TASK_ACTION,
    TASK_DOG,
    TASK_EMOTION,
    TASK_FACE,
    TASK_FACE_LANDMARK,
    TASK_GENDER,
    TASK_HAND_LANDMARK,
    TASK_OBJECT,
    TASK_POSE,
    TASK_PLACE,
)
from repro.zoo.oracle import GroundTruth


@dataclass(frozen=True)
class Rule:
    """One Table II rule.

    ``trigger(label_name, vocabulary)`` decides whether an output label
    fires the rule; when fired, all models of ``target_task`` get their
    weight multiplied by ``factor``.
    """

    source_task: str
    description: str
    trigger: Callable[[str, object], bool]
    target_task: str
    factor: float

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError("rule factor must be positive")


def _is_label(name: str) -> Callable[[str, object], bool]:
    return lambda label, vocab: label == name

def _is_any_pose_keypoint(label: str, vocab) -> bool:
    return label in vocab.task_labels[TASK_POSE]

def _is_wrist_keypoint(label: str, vocab) -> bool:
    return label in vocab.wrist_keypoints

def _is_indoor_place(label: str, vocab) -> bool:
    return label in vocab.indoor_places


#: The paper's ten handcrafted rules (Table II).
HANDCRAFTED_RULES: tuple[Rule, ...] = (
    Rule(TASK_OBJECT, "person => pose estimation x2",
         _is_label("person"), TASK_POSE, 2.0),
    Rule(TASK_OBJECT, "person => gender classification x2",
         _is_label("person"), TASK_GENDER, 2.0),
    Rule(TASK_OBJECT, "dog => dog classification x2",
         _is_label("dog"), TASK_DOG, 2.0),
    Rule(TASK_FACE, "face => face landmark x2",
         _is_label("face"), TASK_FACE_LANDMARK, 2.0),
    Rule(TASK_FACE, "face => emotion classification x2",
         _is_label("face"), TASK_EMOTION, 2.0),
    Rule(TASK_POSE, "body keypoints => action classification x2",
         _is_any_pose_keypoint, TASK_ACTION, 2.0),
    Rule(TASK_POSE, "wrist keypoints => hand landmark x2",
         _is_wrist_keypoint, TASK_HAND_LANDMARK, 2.0),
    # The paper demotes *animal*-object detection and *sport*-action
    # classification indoors; our model-level weights approximate the
    # animal-specialist with the dog classifier and use a soft demotion
    # on action models (only their sport sub-vocabulary is implicated).
    Rule(TASK_PLACE, "indoor place => animal (dog) classification x0.5",
         _is_indoor_place, TASK_DOG, 0.5),
    Rule(TASK_PLACE, "indoor place => sport/action classification x0.7",
         _is_indoor_place, TASK_ACTION, 0.7),
    Rule(TASK_OBJECT, "food objects => action classification x2",
         lambda label, vocab: label in vocab.food_objects, TASK_ACTION, 2.0),
)


class RuleBasedPolicy(OrderingPolicy):
    """Probability-weighted sampling updated by handcrafted rules."""

    name = "rules"

    def __init__(
        self,
        rules: Sequence[Rule] = HANDCRAFTED_RULES,
        seed: int = 0,
        valuable_threshold: float | None = None,
    ):
        self.rules = tuple(rules)
        self._rng = np.random.default_rng(seed)
        self._valuable_threshold = valuable_threshold
        self._weights: np.ndarray | None = None
        self._truth: GroundTruth | None = None
        self._item_id = ""
        self._fired: set[int] = set()

    def reset(self, truth: GroundTruth, item_id: str) -> None:
        self._truth = truth
        self._item_id = item_id
        self._weights = np.ones(len(truth.zoo), dtype=np.float64)
        self._fired = set()

    def next_model(self, state: LabelingState) -> int:
        remaining = state.remaining
        weights = self._weights[remaining]
        probs = weights / weights.sum()
        pick = self._rng.choice(len(remaining), p=probs)
        return int(remaining[pick])

    def observe(self, state: LabelingState, model_index: int) -> None:
        """Apply rules fired by the labels this execution revealed."""
        truth = self._truth
        threshold = (
            self._valuable_threshold
            if self._valuable_threshold is not None
            else truth.threshold
        )
        output = truth.output(self._item_id, model_index)
        vocab = truth.zoo.space.vocabulary
        source_task = truth.zoo[model_index].task
        for label in output.valuable(threshold):
            for rule_index, rule in enumerate(self.rules):
                if rule_index in self._fired:
                    continue  # each rule fires at most once per item
                if rule.source_task != source_task:
                    continue
                if rule.trigger(label.name, vocab):
                    self._fired.add(rule_index)
                    for j, model in enumerate(truth.zoo):
                        if model.task == rule.target_task:
                            self._weights[j] *= rule.factor
