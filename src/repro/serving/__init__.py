"""Async labeling service: micro-batching, priority admission, telemetry.

This subsystem is the layer between the batched
:class:`~repro.engine.engine.LabelingEngine` and the outside world: many
logical clients submit single items and get futures back, while a
dispatcher coalesces requests into the large batches the engine's stacked
Q-network forwards need — flushing on ``batch_size`` reached or
``max_wait`` elapsed, whichever first.  Admission is priority-ordered
with bounded-depth backpressure and deadline-based drops; everything is
observable through telemetry snapshots.

Every request carries a :class:`~repro.spec.LabelingSpec` (or inherits
the service default), and requests are queued into one FIFO bucket per
:attr:`LabelingSpec.batch_key` so each micro-batch is homogeneous — one
service hosts unconstrained, deadline, and deadline+memory traffic at
once.  Buckets are served by weighted round-robin (stride scheduling:
higher-priority buckets proportionally more often, every backlogged
bucket within bounded rounds), so no regime starves under cross-traffic.
An optional :class:`ResultCache` in front of the queue answers repeat
submissions of hot ``(item, batch_key)`` pairs without scheduling and
coalesces concurrent duplicates onto one in-flight future.

Quickstart::

    engine = LabelingEngine(zoo, predictor, config)
    with LabelingService(engine, batch_size=64, max_wait=0.01) as service:
        futures = [
            service.submit(item, LabelingSpec(deadline=0.5, priority=1))
            for item in items
        ]
        results = [f.result() for f in futures]
    print(service.snapshot().format())
"""

from repro.serving.queue import (
    BulkAdmission,
    DeadlineExpired,
    LabelingRequest,
    QueueFull,
    RequestQueue,
    ServiceStopped,
    ServingError,
)
from repro.serving.hierarchy import HierarchicalRequestQueue
from repro.serving.result_cache import CacheStats, ResultCache
from repro.spec import LabelingSpec
from repro.serving.service import (
    DEFAULT_EXPIRY_INTERVAL,
    DEFAULT_MAX_DEPTH,
    DEFAULT_MAX_WAIT,
    DEFAULT_WORKERS,
    LabelingService,
)
from repro.serving.telemetry import (
    LatencyHistogram,
    LatencyStats,
    ServiceTelemetry,
    TelemetrySnapshot,
)

__all__ = [
    "BulkAdmission",
    "CacheStats",
    "DEFAULT_EXPIRY_INTERVAL",
    "DEFAULT_MAX_DEPTH",
    "DEFAULT_MAX_WAIT",
    "DEFAULT_WORKERS",
    "DeadlineExpired",
    "HierarchicalRequestQueue",
    "LabelingRequest",
    "LabelingService",
    "LabelingSpec",
    "LatencyHistogram",
    "LatencyStats",
    "QueueFull",
    "RequestQueue",
    "ResultCache",
    "ServiceStopped",
    "ServiceTelemetry",
    "ServingError",
    "TelemetrySnapshot",
]
