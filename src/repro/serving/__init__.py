"""Async labeling service: micro-batching, priority admission, telemetry.

This subsystem is the layer between the batched
:class:`~repro.engine.engine.LabelingEngine` and the outside world: many
logical clients submit single items and get futures back, while a
dispatcher coalesces requests into the large batches the engine's stacked
Q-network forwards need — flushing on ``batch_size`` reached or
``max_wait`` elapsed, whichever first.  Admission is priority-ordered
with bounded-depth backpressure and deadline-based drops; everything is
observable through telemetry snapshots.

Quickstart::

    engine = LabelingEngine(zoo, predictor, config)
    with LabelingService(engine, batch_size=64, max_wait=0.01) as service:
        futures = [service.submit(item, priority=1) for item in items]
        results = [f.result() for f in futures]
    print(service.snapshot().format())
"""

from repro.serving.queue import (
    DeadlineExpired,
    LabelingRequest,
    QueueFull,
    RequestQueue,
    ServiceStopped,
    ServingError,
)
from repro.serving.service import (
    DEFAULT_MAX_DEPTH,
    DEFAULT_MAX_WAIT,
    DEFAULT_WORKERS,
    LabelingService,
)
from repro.serving.telemetry import (
    LatencyHistogram,
    LatencyStats,
    ServiceTelemetry,
    TelemetrySnapshot,
)

__all__ = [
    "DEFAULT_MAX_DEPTH",
    "DEFAULT_MAX_WAIT",
    "DEFAULT_WORKERS",
    "DeadlineExpired",
    "LabelingRequest",
    "LabelingService",
    "LatencyHistogram",
    "LatencyStats",
    "QueueFull",
    "RequestQueue",
    "ServiceStopped",
    "ServiceTelemetry",
    "ServingError",
    "TelemetrySnapshot",
]
