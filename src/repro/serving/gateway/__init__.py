"""Multi-tenant HTTP gateway over the labeling service.

The serving stack, outside-in:

1. :mod:`~repro.serving.gateway.wire` — minimal asyncio HTTP/1.1
   (parse, fixed responses, chunked NDJSON), stdlib only.
2. :mod:`~repro.serving.gateway.auth` — tenants, API keys
   (constant-time lookup), and the config file format.
3. :mod:`~repro.serving.gateway.quota` — per-tenant token-bucket rate
   limits and in-flight caps, enforced before the service sees a byte.
4. :mod:`~repro.serving.gateway.app` — :class:`LabelingGateway`, the
   routed edge: label/batch/job/stream endpoints riding the service's
   non-blocking ``submit_*_nowait_async`` paths, with the observability
   routes mounted on the same port.

Fairness *between* admitted tenants is not the gateway's job — install
a :class:`~repro.serving.hierarchy.HierarchicalRequestQueue` on the
service (``queue_factory=...``) and the gateway's ``spec.tenant`` stamp
drives the outer stride.  Run one with ``python -m repro.cli gateway
--demo-tenants`` and load it with ``benchmarks/bench_gateway_load.py``.
"""

from repro.serving.gateway.app import LabelingGateway
from repro.serving.gateway.auth import Tenant, TenantDirectory
from repro.serving.gateway.quota import Denied, TenantQuota, TokenBucket

__all__ = [
    "Denied",
    "LabelingGateway",
    "Tenant",
    "TenantDirectory",
    "TenantQuota",
    "TokenBucket",
]
