"""The multi-tenant labeling gateway: asyncio HTTP front end.

:class:`LabelingGateway` puts a network edge on a
:class:`~repro.serving.service.LabelingService`: authenticated tenants
POST item references and get label sets back, while the service
underneath micro-batches across all of them.  Per the paper's serving
protocol the gateway labels *recorded* items — clients reference items
by id against the catalog the operator loaded — so request bodies stay
small and results are reproducible.

Endpoints (all JSON unless noted):

========  ======================  ==========================================
method    path                    purpose
========  ======================  ==========================================
POST      ``/v1/label``           label one item, reply when done
POST      ``/v1/label/batch``     label many; ``mode=sync`` waits,
                                  ``mode=job`` returns 202 + job id
GET       ``/v1/jobs/<id>``       poll a job (tenant-scoped)
POST      ``/v1/label/stream``    chunked NDJSON, one line per completion
GET       ``/v1/items``           the labelable catalog (item ids)
GET       ``/metrics``            Prometheus text (unauthenticated)
GET       ``/metrics.json``       same registry as JSON
GET       ``/traces``             recent request traces (``?n=K``)
GET       ``/healthz``            liveness probe
========  ======================  ==========================================

Admission is defense-in-depth, cheapest check first: API key (constant
time, 401), token-bucket rate + in-flight quota (429 with
``Retry-After``), then the service's own bounded queue via the
non-blocking ``submit_*_nowait_async`` path — so a full queue is an
*immediate* 429, never a blocked event loop.  Tenant fairness between
admitted requests is the hierarchical queue's job (install it with
``LabelingService(queue_factory=...)``); the gateway just stamps
``spec.tenant``, which also partitions the result cache per tenant.

The obs routes are mounted from the same registry/tracer the service
binds, so one port serves both traffic and scrape — like
:class:`~repro.obs.server.MetricsServer`, they are deliberately
unauthenticated (point them at your monitoring network, not the world).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import pickle
import threading
import time
import uuid
from collections import OrderedDict
from pathlib import Path
from typing import Iterable, Mapping

from repro.data.datasets import DataItem
from repro.durability.journal import Journal
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import TraceBuffer
from repro.serving.gateway.auth import Tenant, TenantDirectory
from repro.serving.gateway.quota import TenantQuota
from repro.serving.gateway.wire import (
    ChunkedWriter,
    HttpRequest,
    WireError,
    json_body,
    read_request,
    response_bytes,
)
from repro.serving.queue import DeadlineExpired, QueueFull, ServiceStopped
from repro.serving.service import LabelingService
from repro.spec import LabelingSpec

__all__ = ["LabelingGateway"]

logger = logging.getLogger(__name__)

#: Retry hint when the service queue itself rejects (backpressure): the
#: queue drains at micro-batch cadence, so suggest one batch wait.
BACKPRESSURE_RETRY_HINT = 0.05

_SPEC_FIELDS = ("deadline", "memory_budget", "max_models", "priority", "policy")
_LABEL_KEYS = frozenset(("item_id", "admission_deadline", *_SPEC_FIELDS))
_BATCH_KEYS = frozenset(("items", "mode", "admission_deadline", *_SPEC_FIELDS))

#: Gateway record kinds in the job journal (custom-kind range).
_KIND_JOB_CREATE = Journal.KIND_CUSTOM
_KIND_JOB_DONE = Journal.KIND_CUSTOM + 1
_KIND_JOB_DROP = Journal.KIND_CUSTOM + 2


class _Job:
    """One accepted async batch: futures plus poll bookkeeping."""

    __slots__ = (
        "job_id", "tenant", "item_ids", "futures", "cached", "created", "spec"
    )

    def __init__(self, job_id, tenant, item_ids, futures, cached, created, spec):
        self.job_id = job_id
        self.tenant = tenant
        self.item_ids = item_ids
        self.futures = futures
        self.cached = cached
        self.created = created
        self.spec = spec

    @property
    def done(self) -> int:
        return sum(1 for f in self.futures if f.done())


class _RestoredJob:
    """A job reloaded from the journal after a restart.

    Its futures died with the old process.  A job whose completion record
    made it to the journal serves its stored ``results`` verbatim; an
    unfinished one is polled by probing the service's result cache per
    item — ``service.recover()`` replays the lost work through that
    cache, so restored jobs finish as recovery completes.
    """

    __slots__ = ("job_id", "tenant", "item_ids", "spec", "results", "created")

    def __init__(self, job_id, tenant, item_ids, spec, results, created):
        self.job_id = job_id
        self.tenant = tenant
        self.item_ids = item_ids
        self.spec = spec
        self.results = results
        self.created = created


def _error_status(exc: BaseException) -> tuple[int, str]:
    """(http status, machine reason) for a labeling failure."""
    if isinstance(exc, QueueFull):
        return 429, "backpressure"
    if isinstance(exc, DeadlineExpired):
        return 408, "expired"
    if isinstance(exc, ServiceStopped):
        return 503, "stopped"
    return 500, "failed"


class LabelingGateway:
    """HTTP edge over one labeling service for many authenticated tenants.

    Parameters
    ----------
    service:
        The (started) :class:`LabelingService` to submit into.  Build it
        with ``queue_factory=lambda **kw:
        HierarchicalRequestQueue(tenant_weights=directory.weights(),
        **kw)`` for tenant-fair dispatch.
    directory:
        The :class:`TenantDirectory` of enrolled tenants.
    catalog:
        The items clients may reference — a mapping of ``item_id`` to
        :class:`DataItem` or any iterable of items.
    registry, tracer:
        Metric registry and trace buffer backing the mounted obs routes;
        default to the ones the service was built with (a fresh registry
        if the service has none, so ``/metrics`` always answers).
    host, port:
        Bind address; ``port=0`` (default) picks an ephemeral port,
        readable as :attr:`port` after start.
    max_jobs_per_tenant:
        Retained async jobs per tenant; creating one past the cap evicts
        the oldest *finished* job, or answers 429 if all are running.
    journal:
        Optional job journal (a
        :class:`~repro.durability.journal.Journal` or a directory path)
        — **separate** from the service's admission journal.  Job
        creations, completions, and evictions are appended as custom
        records, and a restarted gateway pointed at the same directory
        restores its job table: ``GET /v1/jobs/<id>`` keeps answering
        across restarts, with unfinished jobs completing as
        ``service.recover()`` replays their items.
    """

    def __init__(
        self,
        service: LabelingService,
        directory: TenantDirectory,
        catalog: Mapping[str, DataItem] | Iterable[DataItem],
        *,
        registry: MetricsRegistry | None = None,
        tracer: TraceBuffer | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_jobs_per_tenant: int = 64,
        journal: Journal | str | Path | None = None,
        clock=time.monotonic,
    ):
        self.service = service
        self.directory = directory
        if isinstance(catalog, Mapping):
            self.catalog: dict[str, DataItem] = dict(catalog)
        else:
            self.catalog = {item.item_id: item for item in catalog}
        if not self.catalog:
            raise ValueError("the gateway needs a non-empty item catalog")
        self.registry = registry or service.registry or MetricsRegistry()
        self.tracer = tracer if tracer is not None else service.tracer
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        self.max_jobs_per_tenant = max_jobs_per_tenant
        self._clock = clock
        self._quotas = {t.name: TenantQuota(t, clock) for t in directory}
        self._jobs: OrderedDict[str, _Job | _RestoredJob] = OrderedDict()
        self._job_counts: dict[str, int] = {}
        self._owns_journal = isinstance(journal, (str, Path))
        if self._owns_journal:
            journal = Journal(journal)
        self._journal: Journal | None = journal
        if self._journal is not None:
            self._restore_jobs()
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

        self._requests = self.registry.counter(
            "repro_gateway_requests_total",
            "Gateway requests by tenant, endpoint, and HTTP status",
            labelnames=("tenant", "endpoint", "status"),
        )
        self._admitted = self.registry.counter(
            "repro_gateway_admitted_total",
            "Items admitted into the service per tenant",
            labelnames=("tenant",),
        )
        self._rejected = self.registry.counter(
            "repro_gateway_rejected_total",
            "Requests refused before service admission, by reason",
            labelnames=("tenant", "reason"),
        )
        self._inflight_gauge = self.registry.gauge(
            "repro_gateway_inflight",
            "Admitted-but-unresolved items per tenant",
            labelnames=("tenant",),
        )
        self._e2e = self.registry.histogram(
            "repro_gateway_e2e_seconds",
            "Gateway-observed submit-to-reply latency per tenant",
            labelnames=("tenant",),
        )

    # -- lifecycle -----------------------------------------------------------

    async def start_async(self) -> "LabelingGateway":
        """Bind and start accepting on the running event loop."""
        if self._server is not None:
            raise RuntimeError("gateway already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("gateway listening on %s", self.url)
        return self

    async def stop_async(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._journal is not None:
            with contextlib.suppress(Exception):
                self._journal.flush()
                if self._owns_journal:
                    self._journal.close()

    async def serve_forever(self) -> None:
        """``start_async`` first; blocks until the server is closed."""
        assert self._server is not None, "call start_async() first"
        with contextlib.suppress(asyncio.CancelledError):
            await self._server.serve_forever()

    @property
    def url(self) -> str:
        assert self.port is not None, "gateway not started"
        return f"http://{self.host}:{self.port}"

    def start_background(self) -> "LabelingGateway":
        """Run the gateway on a dedicated event-loop thread.

        For tests, benchmarks, and embedding in synchronous programs;
        pair with :meth:`stop_background`.
        """
        if self._thread is not None:
            raise RuntimeError("gateway already running in background")
        self._loop = asyncio.new_event_loop()
        started = threading.Event()
        failure: list[BaseException] = []

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            try:
                self._loop.run_until_complete(self.start_async())
            except BaseException as exc:  # noqa: BLE001 — surfaced to caller
                failure.append(exc)
                started.set()
                return
            started.set()
            try:
                self._loop.run_forever()
            finally:
                self._loop.run_until_complete(self._loop.shutdown_asyncgens())
                self._loop.close()

        self._thread = threading.Thread(
            target=run, name="labeling-gateway", daemon=True
        )
        self._thread.start()
        started.wait()
        if failure:
            self._thread.join()
            self._thread = None
            raise failure[0]
        return self

    def stop_background(self, timeout: float = 5.0) -> None:
        if self._thread is None or self._loop is None:
            return

        async def shutdown() -> None:
            await self.stop_async()
            asyncio.get_running_loop().stop()

        asyncio.run_coroutine_threadsafe(shutdown(), self._loop)
        self._thread.join(timeout)
        self._thread = None
        self._loop = None

    def __enter__(self) -> "LabelingGateway":
        return self.start_background()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop_background()

    # -- connection / routing ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except WireError as exc:
                    writer.write(
                        response_bytes(
                            exc.status,
                            json_body({"error": exc.message}),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                keep_alive = await self._dispatch(request, writer)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            pass
        except Exception:  # noqa: BLE001 — one connection must not kill accept
            logger.exception("gateway connection handler failed")
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> bool:
        """Route one request; returns whether to keep the connection."""
        path, method = request.path, request.method
        tenant_label = "-"
        status = 500
        try:
            obs = self._obs_route(path, method, request)
            if obs is not None:
                status, body, content_type = obs
                writer.write(
                    response_bytes(status, body, content_type=content_type)
                )
                await writer.drain()
                return request.keep_alive

            tenant = self._authenticate(request)
            tenant_label = tenant.name

            if path == "/v1/label/stream" and method == "POST":
                status = await self._handle_stream(request, tenant, writer)
                return request.keep_alive and status == 200

            handler = None
            if path == "/v1/label" and method == "POST":
                handler = self._handle_label
            elif path == "/v1/label/batch" and method == "POST":
                handler = self._handle_batch
            elif path == "/v1/items" and method == "GET":
                handler = self._handle_items
            elif path.startswith("/v1/jobs/") and method == "GET":
                handler = self._handle_job
            elif path in ("/v1/label", "/v1/label/batch", "/v1/label/stream"):
                raise WireError(405, f"{path} expects POST")
            elif path.startswith("/v1/jobs/"):
                raise WireError(405, "jobs are polled with GET")
            if handler is None:
                raise WireError(404, f"no route for {method} {path}")

            status, payload, extra = await handler(request, tenant)
            writer.write(
                response_bytes(status, json_body(payload), extra_headers=extra)
            )
            await writer.drain()
            return request.keep_alive
        except WireError as exc:
            status = exc.status
            payload: dict = {"error": exc.message}
            extra = None
            if isinstance(exc, _QuotaExceeded):
                payload["reason"] = exc.reason
                payload["retry_after"] = round(exc.retry_after, 4)
                extra = {"Retry-After": _retry_after_header(exc.retry_after)}
            elif status == 401:
                extra = {"WWW-Authenticate": "Bearer"}
            writer.write(
                response_bytes(status, json_body(payload), extra_headers=extra)
            )
            await writer.drain()
            return request.keep_alive
        except (ConnectionResetError, BrokenPipeError):
            raise
        except Exception as exc:  # noqa: BLE001 — answer 500, keep serving
            logger.exception("handler failed for %s %s", method, path)
            status = 500
            with contextlib.suppress(Exception):
                writer.write(
                    response_bytes(
                        500, json_body({"error": f"internal error: {exc}"})
                    )
                )
                await writer.drain()
            return False
        finally:
            self._requests.labels(
                tenant=tenant_label,
                endpoint=self._endpoint_label(path),
                status=str(status),
            ).inc()

    @staticmethod
    def _endpoint_label(path: str) -> str:
        if path.startswith("/v1/jobs/"):
            return "/v1/jobs"
        return path

    def _obs_route(
        self, path: str, method: str, request: HttpRequest
    ) -> tuple[int, bytes | str, str] | None:
        """The mounted observability surface (no auth, like MetricsServer)."""
        if method != "GET" or path not in (
            "/",
            "/healthz",
            "/metrics",
            "/metrics.json",
            "/traces",
        ):
            return None
        if path in ("/", "/healthz"):
            return 200, "ok\n", "text/plain; charset=utf-8"
        if path == "/metrics":
            return (
                200,
                self.registry.render_prometheus(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        if path == "/metrics.json":
            return 200, self.registry.render_json(), "application/json"
        if self.tracer is None:
            return (
                404,
                json_body({"error": "tracing is not enabled"}),
                "application/json",
            )
        n = None
        if "n" in request.query:
            try:
                n = max(1, int(request.query["n"][0]))
            except ValueError as exc:
                raise WireError(400, "traces ?n= must be an integer") from exc
        return 200, self.tracer.to_json(n), "application/json"

    # -- auth / admission ----------------------------------------------------

    def _authenticate(self, request: HttpRequest) -> Tenant:
        presented = request.header("x-api-key")
        if presented is None:
            authorization = request.header("authorization", "")
            scheme, _, credential = authorization.partition(" ")
            if scheme.lower() == "bearer":
                presented = credential.strip()
        tenant = self.directory.authenticate(presented)
        if tenant is None:
            raise WireError(401, "missing or unrecognized API key")
        return tenant

    def _admit(self, tenant: Tenant, n: int) -> None:
        """Quota-admit ``n`` items or raise :class:`_QuotaExceeded` (429)."""
        denied = self._quotas[tenant.name].admit(n)
        if denied is not None:
            self._rejected.labels(tenant=tenant.name, reason=denied.reason).inc()
            raise _QuotaExceeded(denied.reason, denied.retry_after)
        self._inflight_gauge.labels(tenant=tenant.name).inc(n)

    def _release(self, tenant_name: str, n: int = 1) -> None:
        self._quotas[tenant_name].release(n)
        self._inflight_gauge.labels(tenant=tenant_name).dec(n)

    def _track(self, tenant: Tenant, future: asyncio.Future) -> asyncio.Future:
        """Release one quota slot when ``future`` resolves, however."""

        def on_done(f: asyncio.Future) -> None:
            self._release(tenant.name)
            # Retrieve so never-awaited job failures don't warn at GC.
            if not f.cancelled():
                f.exception()

        future.add_done_callback(on_done)
        return future

    # -- request parsing -----------------------------------------------------

    def _lookup_item(self, item_id) -> DataItem:
        if not isinstance(item_id, str) or not item_id:
            raise WireError(400, "item_id must be a non-empty string")
        item = self.catalog.get(item_id)
        if item is None:
            raise WireError(404, f"unknown item_id {item_id!r}")
        return item

    def _build_spec(self, body: dict, tenant: Tenant) -> LabelingSpec:
        try:
            return LabelingSpec.resolve(
                None,
                tenant=tenant.name,
                **{name: body.get(name) for name in _SPEC_FIELDS},
            )
        except (TypeError, ValueError) as exc:
            raise WireError(400, f"invalid labeling spec: {exc}") from exc

    @staticmethod
    def _check_keys(body: dict, allowed: frozenset) -> None:
        extra = set(body) - allowed
        if extra:
            raise WireError(
                400,
                f"unknown request fields {sorted(extra)} "
                f"(expected a subset of {sorted(allowed)})",
            )

    @staticmethod
    def _admission_deadline(body: dict) -> float | None:
        deadline = body.get("admission_deadline")
        if deadline is None:
            return None
        if not isinstance(deadline, (int, float)) or deadline <= 0:
            raise WireError(400, "admission_deadline must be a positive number")
        return float(deadline)

    def _was_cached(self, item_id: str, spec: LabelingSpec) -> bool:
        cache = self.service.cache
        return cache is not None and spec.cache_key(item_id) in cache

    @staticmethod
    def _encode_result(result, cached: bool) -> dict:
        return {
            "item_id": result.item_id,
            "status": "completed",
            "labels": [
                {"name": label.name, "confidence": round(label.confidence, 6)}
                for label in result.labels
            ],
            "models_executed": result.models_executed,
            "time_used": round(result.time_used, 6),
            "recall": None if result.recall is None else round(result.recall, 6),
            "cached": cached,
        }

    @staticmethod
    def _encode_failure(item_id: str, exc: BaseException) -> dict:
        _, reason = _error_status(exc)
        return {"item_id": item_id, "status": reason, "error": str(exc)}

    # -- handlers ------------------------------------------------------------

    async def _handle_label(self, request: HttpRequest, tenant: Tenant):
        body = request.json()
        self._check_keys(body, _LABEL_KEYS)
        item = self._lookup_item(body.get("item_id"))
        spec = self._build_spec(body, tenant)
        deadline = self._admission_deadline(body)
        started = self._clock()
        self._admit(tenant, 1)
        cached = self._was_cached(item.item_id, spec)
        try:
            future = self.service.submit(
                item, spec, deadline=deadline, wait="async"
            )
        except (QueueFull, DeadlineExpired, ServiceStopped) as exc:
            self._release(tenant.name)
            return self._submit_error(tenant, exc)
        self._admitted.labels(tenant=tenant.name).inc()
        self._track(tenant, future)
        try:
            result = await future
        except (QueueFull, DeadlineExpired, ServiceStopped) as exc:
            return self._submit_error(tenant, exc)
        self._e2e.labels(tenant=tenant.name).observe(self._clock() - started)
        return 200, self._encode_result(result, cached), None

    def _submit_error(self, tenant: Tenant, exc: BaseException):
        status, reason = _error_status(exc)
        self._rejected.labels(tenant=tenant.name, reason=reason).inc()
        extra = (
            {"Retry-After": _retry_after_header(BACKPRESSURE_RETRY_HINT)}
            if status == 429
            else None
        )
        return status, {"error": str(exc), "reason": reason}, extra

    def _submit_batch(
        self, items: list[DataItem], spec: LabelingSpec, deadline: float | None,
        tenant: Tenant,
    ) -> list[asyncio.Future]:
        """Bulk nowait submission with per-future quota release."""
        futures = self.service.submit_many(
            items, spec, deadline=deadline, wait="async"
        )
        for future in futures:
            self._track(tenant, future)
        # "Admitted" here means past the gateway's quota gate; per-item
        # service-level rejections (queue full, expired) still surface on
        # the futures and in repro_requests_total{outcome=...}.
        self._admitted.labels(tenant=tenant.name).inc(len(futures))
        return futures

    async def _handle_batch(self, request: HttpRequest, tenant: Tenant):
        body = request.json()
        self._check_keys(body, _BATCH_KEYS)
        raw_items = body.get("items")
        if not isinstance(raw_items, list) or not raw_items:
            raise WireError(400, "items must be a non-empty list of item ids")
        mode = body.get("mode", "sync")
        if mode not in ("sync", "job"):
            raise WireError(400, 'mode must be "sync" or "job"')
        items = [self._lookup_item(item_id) for item_id in raw_items]
        spec = self._build_spec(body, tenant)
        deadline = self._admission_deadline(body)
        started = self._clock()
        self._admit(tenant, len(items))
        cached = [self._was_cached(item.item_id, spec) for item in items]
        futures = self._submit_batch(items, spec, deadline, tenant)

        if mode == "job":
            job = self._create_job(tenant, items, futures, cached, spec)
            return (
                202,
                {"job_id": job.job_id, "total": len(items), "status": "running"},
                None,
            )

        outcomes = await asyncio.gather(*futures, return_exceptions=True)
        results = [
            self._encode_failure(item.item_id, outcome)
            if isinstance(outcome, BaseException)
            else self._encode_result(outcome, was_cached)
            for item, outcome, was_cached in zip(items, outcomes, cached)
        ]
        completed = sum(1 for r in results if r["status"] == "completed")
        self._e2e.labels(tenant=tenant.name).observe(self._clock() - started)
        return (
            200,
            {"total": len(results), "completed": completed, "results": results},
            None,
        )

    def _create_job(self, tenant, items, futures, cached, spec) -> _Job:
        count = self._job_counts.get(tenant.name, 0)
        if count >= self.max_jobs_per_tenant:
            evicted = None
            for job_id, job in self._jobs.items():
                done, total = self._job_progress(job)
                if job.tenant == tenant.name and done == total:
                    evicted = job_id
                    break
            if evicted is None:
                for future in futures:
                    future.cancel()
                self._rejected.labels(tenant=tenant.name, reason="jobs").inc()
                raise _QuotaExceeded("jobs", 1.0)
            self._drop_job(evicted)
            count -= 1
        job = _Job(
            job_id=uuid.uuid4().hex[:16],
            tenant=tenant.name,
            item_ids=[item.item_id for item in items],
            futures=futures,
            cached=cached,
            created=self._clock(),
            spec=spec,
        )
        self._jobs[job.job_id] = job
        self._job_counts[tenant.name] = count + 1
        if self._journal is not None:
            try:
                self._journal.append(
                    _KIND_JOB_CREATE,
                    pickle.dumps(
                        (job.job_id, job.tenant, job.item_ids, spec), 4
                    ),
                )
                self._journal.flush()
            except Exception:
                logger.exception("failed to journal job %s", job.job_id)
            # One callback per future; the last one to land writes the
            # job's completion record so results outlive the process.
            remaining = [len(futures)]

            def on_done(_f, job=job, remaining=remaining) -> None:
                remaining[0] -= 1
                if remaining[0] == 0:
                    self._journal_job_done(job)

            for future in futures:
                future.add_done_callback(on_done)
        return job

    # -- durable job store ---------------------------------------------------

    def _drop_job(self, job_id: str) -> None:
        """Evict one job, recording the drop so restore skips it."""
        del self._jobs[job_id]
        if self._journal is not None:
            try:
                self._journal.append(_KIND_JOB_DROP, job_id.encode("ascii"))
                self._journal.flush()
            except Exception:
                logger.exception("failed to journal drop of job %s", job_id)

    def _journal_job_done(self, job: _Job) -> None:
        """Append a finished job's encoded results to the journal."""
        rows = []
        for item_id, future, was_cached in zip(
            job.item_ids, job.futures, job.cached
        ):
            if future.cancelled():
                rows.append(
                    {"item_id": item_id, "status": "cancelled",
                     "error": "cancelled"}
                )
            elif future.exception() is not None:
                rows.append(self._encode_failure(item_id, future.exception()))
            else:
                rows.append(self._encode_result(future.result(), was_cached))
        self._journal_record_done(job.job_id, rows)

    def _journal_record_done(self, job_id: str, rows: list[dict]) -> None:
        try:
            self._journal.append(
                _KIND_JOB_DONE,
                json.dumps({"job_id": job_id, "results": rows}).encode("utf-8"),
            )
            self._journal.flush()
        except Exception:
            logger.exception("failed to journal completion of job %s", job_id)

    def _restore_jobs(self) -> None:
        """Rebuild the job table from the journal's custom records."""
        creates: dict[str, tuple] = {}
        finished: dict[str, list[dict]] = {}
        dropped: set[str] = set()
        for _seq, kind, payload in self._journal.replayed_custom():
            if kind == _KIND_JOB_CREATE:
                job_id, tenant, item_ids, spec = pickle.loads(payload)
                creates[job_id] = (tenant, item_ids, spec)
            elif kind == _KIND_JOB_DONE:
                record = json.loads(payload.decode("utf-8"))
                finished[record["job_id"]] = record["results"]
            elif kind == _KIND_JOB_DROP:
                dropped.add(payload.decode("ascii"))
        restored = 0
        for job_id, (tenant, item_ids, spec) in creates.items():
            if job_id in dropped:
                continue
            self._jobs[job_id] = _RestoredJob(
                job_id=job_id,
                tenant=tenant,
                item_ids=item_ids,
                spec=spec,
                results=finished.get(job_id),
                created=self._clock(),
            )
            self._job_counts[tenant] = self._job_counts.get(tenant, 0) + 1
            restored += 1
        if restored:
            logger.info(
                "restored %d job(s) from the gateway journal", restored
            )

    def _probe_cache(self, item_id: str, spec):
        """A restored item's result, if recovery has (re)produced it."""
        cache = self.service.cache
        if cache is None or spec is None:
            return None
        return cache.peek(spec.cache_key(item_id))

    def _restored_rows(self, job: _RestoredJob) -> tuple[list[dict], int]:
        """Poll rows for a restored job (stored results or cache probes)."""
        if job.results is not None:
            return list(job.results), len(job.results)
        rows = []
        done = 0
        for item_id in job.item_ids:
            result = self._probe_cache(item_id, job.spec)
            if result is None:
                rows.append({"item_id": item_id, "status": "pending"})
            else:
                done += 1
                rows.append(self._encode_result(result, True))
        if done == len(rows):
            # Recovery finished the whole job: persist the assembled
            # results so the *next* restart serves them without probing.
            job.results = rows
            self._journal_record_done(job.job_id, rows)
        return rows, done

    def _job_progress(self, job) -> tuple[int, int]:
        """(done, total) for live and restored jobs alike."""
        if isinstance(job, _RestoredJob):
            if job.results is not None:
                return len(job.item_ids), len(job.item_ids)
            done = sum(
                1
                for item_id in job.item_ids
                if self._probe_cache(item_id, job.spec) is not None
            )
            return done, len(job.item_ids)
        return job.done, len(job.futures)

    async def _handle_items(self, request: HttpRequest, tenant: Tenant):
        """The labelable catalog — lets load generators discover ids."""
        return 200, {"items": sorted(self.catalog)}, None

    async def _handle_job(self, request: HttpRequest, tenant: Tenant):
        job_id = request.path.rsplit("/", 1)[-1]
        job = self._jobs.get(job_id)
        if job is None or job.tenant != tenant.name:
            # Same answer for "no such job" and "not yours": ids are
            # unguessable, and existence must not leak across tenants.
            raise WireError(404, f"unknown job {job_id!r}")
        if isinstance(job, _RestoredJob):
            results, done = self._restored_rows(job)
            total = len(job.item_ids)
        else:
            results = []
            for item_id, future, was_cached in zip(
                job.item_ids, job.futures, job.cached
            ):
                if not future.done():
                    results.append({"item_id": item_id, "status": "pending"})
                elif future.exception() is not None:
                    results.append(
                        self._encode_failure(item_id, future.exception())
                    )
                else:
                    results.append(
                        self._encode_result(future.result(), was_cached)
                    )
            done = job.done
            total = len(job.futures)
        return (
            200,
            {
                "job_id": job.job_id,
                "status": "done" if done == total else "running",
                "done": done,
                "total": total,
                "results": results,
            },
            None,
        )

    async def _handle_stream(
        self, request: HttpRequest, tenant: Tenant, writer: asyncio.StreamWriter
    ) -> int:
        """Chunked NDJSON: one line per completed item, completion order."""
        body = request.json()
        self._check_keys(body, _BATCH_KEYS - {"mode"})
        raw_items = body.get("items")
        if not isinstance(raw_items, list) or not raw_items:
            raise WireError(400, "items must be a non-empty list of item ids")
        items = [self._lookup_item(item_id) for item_id in raw_items]
        spec = self._build_spec(body, tenant)
        deadline = self._admission_deadline(body)
        started = self._clock()
        self._admit(tenant, len(items))
        cached = [self._was_cached(item.item_id, spec) for item in items]
        futures = self._submit_batch(items, spec, deadline, tenant)

        async def settle(item: DataItem, future: asyncio.Future, was_cached):
            try:
                return self._encode_result(await future, was_cached)
            except Exception as exc:  # noqa: BLE001 — per-item status line
                return self._encode_failure(item.item_id, exc)

        # Once chunked headers are on the wire a fixed error response
        # would corrupt the stream, so failures past this point become a
        # terminal NDJSON line and a closed connection instead.
        stream = ChunkedWriter(writer)
        await stream.start()
        completed = 0
        try:
            for settled in asyncio.as_completed(
                [settle(*args) for args in zip(items, futures, cached)]
            ):
                line = await settled
                if line["status"] == "completed":
                    completed += 1
                await stream.send_json_line(line)
            self._e2e.labels(tenant=tenant.name).observe(
                self._clock() - started
            )
            await stream.send_json_line(
                {"status": "end", "total": len(items), "completed": completed}
            )
            await stream.finish()
        except (ConnectionResetError, BrokenPipeError):
            return 499
        except Exception as exc:  # noqa: BLE001 — stream already started
            logger.exception("stream handler failed mid-flight")
            with contextlib.suppress(Exception):
                await stream.send_json_line(
                    {"status": "error", "error": str(exc)}
                )
                await stream.finish()
            return 500
        return 200

    # -- introspection -------------------------------------------------------

    def tenant_inflight(self) -> dict[str, int]:
        """Live in-flight count per tenant (quota accounting view)."""
        return {name: quota.inflight for name, quota in self._quotas.items()}


class _QuotaExceeded(WireError):
    """429 with machine-readable reason and Retry-After (see _dispatch)."""

    def __init__(self, reason: str, retry_after: float):
        super().__init__(429, f"quota exceeded ({reason})")
        self.reason = reason
        self.retry_after = retry_after


def _retry_after_header(seconds: float) -> str:
    """HTTP Retry-After is integral seconds; never advertise zero."""
    return str(max(1, int(seconds + 0.999)))
