"""Tenant identity for the gateway: API keys, weights, quota limits.

A :class:`Tenant` is one paying (or free) caller of the labeling
gateway: a name, a bearer API key, an outer-stride fairness weight (fed
to :class:`~repro.serving.hierarchy.HierarchicalRequestQueue`), and the
quota knobs :mod:`repro.serving.gateway.quota` enforces.  The
:class:`TenantDirectory` holds all of them and answers the only
security-relevant question — *which tenant presented this key?* — in
constant time with respect to key contents: every lookup compares the
SHA-256 digest of the presented key against **every** enrolled digest
via :func:`hmac.compare_digest`, so neither an early-exit on the first
byte mismatch nor the position of the matching tenant leaks timing.

Directories load from a JSON config file (``from_file``), an environment
variable holding the same JSON (``from_env``), or the deterministic
:meth:`TenantDirectory.demo` roster used by tests, the CLI's
``--demo-tenants`` flag, and the load benchmark.  Config format::

    {"tenants": [
        {"name": "acme", "api_key": "s3cret", "weight": 4.0,
         "rate": 500.0, "burst": 100, "max_inflight": 256},
        {"name": "free-tier", "api_key": "hunter2"}
    ]}

Only ``name`` and ``api_key`` are required; the rest default to an
unthrottled weight-1 tenant (quota enforcement off until configured).
"""

from __future__ import annotations

import hashlib
import hmac
import json
import math
import os
from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["Tenant", "TenantDirectory"]


def _digest(key: str) -> bytes:
    return hashlib.sha256(key.encode("utf-8")).digest()


@dataclass(frozen=True)
class Tenant:
    """One gateway caller: identity plus fairness/quota configuration.

    Attributes
    ----------
    name:
        Stable tenant identifier; becomes :attr:`LabelingSpec.tenant`
        (cache partition + fairness group) and the ``tenant`` label on
        metrics.
    api_key:
        The bearer secret clients present (``Authorization: Bearer ...``
        or ``X-API-Key``).
    weight:
        Outer-stride service weight — a weight-4 tenant is served 4x the
        batch share of a weight-1 tenant under contention.
    rate:
        Sustained request admission rate (requests/second refill of the
        token bucket); ``inf`` disables rate limiting.
    burst:
        Token-bucket capacity — how many requests may land back-to-back
        before the sustained ``rate`` applies.
    max_inflight:
        Cap on this tenant's concurrently admitted (not yet resolved)
        requests; breaching it is a 429, not queue growth.
    """

    name: str
    api_key: str = field(repr=False)
    weight: float = 1.0
    rate: float = math.inf
    burst: int = 64
    max_inflight: int = 1 << 30

    def __post_init__(self):
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if not self.api_key:
            raise ValueError(f"tenant {self.name!r} needs a non-empty api_key")
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name!r} weight must be positive")
        if self.rate <= 0:
            raise ValueError(f"tenant {self.name!r} rate must be positive")
        if self.burst < 1:
            raise ValueError(f"tenant {self.name!r} burst must be >= 1")
        if self.max_inflight < 1:
            raise ValueError(f"tenant {self.name!r} max_inflight must be >= 1")

    @classmethod
    def from_dict(cls, obj: dict) -> "Tenant":
        """Build from one config-file entry (unknown keys rejected)."""
        known = {"name", "api_key", "weight", "rate", "burst", "max_inflight"}
        extra = set(obj) - known
        if extra:
            raise ValueError(
                f"unknown tenant config keys {sorted(extra)} "
                f"(expected a subset of {sorted(known)})"
            )
        kwargs = dict(obj)
        if isinstance(kwargs.get("rate"), str):  # allow "inf" in JSON
            kwargs["rate"] = float(kwargs["rate"])
        return cls(**kwargs)


class TenantDirectory:
    """All enrolled tenants, with constant-time API-key authentication."""

    def __init__(self, tenants: Iterable[Tenant]):
        roster = list(tenants)
        if not roster:
            raise ValueError("a TenantDirectory needs at least one tenant")
        names = [t.name for t in roster]
        if len(set(names)) != len(names):
            raise ValueError("tenant names must be unique")
        if len({t.api_key for t in roster}) != len(roster):
            raise ValueError("tenant api keys must be unique")
        self._by_name = {t.name: t for t in roster}
        self._digests = [(_digest(t.api_key), t) for t in roster]

    def authenticate(self, presented: str | None) -> Tenant | None:
        """The tenant owning ``presented``, or ``None``.

        Scans the *entire* roster comparing SHA-256 digests with
        :func:`hmac.compare_digest` — no early exit on match or
        mismatch, so response timing is independent of both the key
        bytes and which tenant (if any) matched.
        """
        if not presented:
            return None
        presented_digest = _digest(presented)
        matched: Tenant | None = None
        for digest, tenant in self._digests:
            if hmac.compare_digest(digest, presented_digest):
                matched = tenant
        return matched

    def get(self, name: str) -> Tenant | None:
        return self._by_name.get(name)

    def __iter__(self):
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    def weights(self) -> dict[str, float]:
        """``tenant_weights`` mapping for the hierarchical queue."""
        return {t.name: t.weight for t in self._by_name.values()}

    # -- construction --------------------------------------------------------

    @classmethod
    def from_json(cls, obj: dict) -> "TenantDirectory":
        """Build from the parsed config format (see module docstring)."""
        if not isinstance(obj, dict) or "tenants" not in obj:
            raise ValueError('tenant config must be {"tenants": [...]}')
        return cls(Tenant.from_dict(entry) for entry in obj["tenants"])

    @classmethod
    def from_file(cls, path: str) -> "TenantDirectory":
        with open(path, encoding="utf-8") as fh:
            return cls.from_json(json.load(fh))

    @classmethod
    def from_env(cls, var: str = "REPRO_GATEWAY_TENANTS") -> "TenantDirectory":
        """Load from a JSON blob in environment variable ``var``."""
        raw = os.environ.get(var)
        if not raw:
            raise ValueError(f"environment variable {var} is empty or unset")
        return cls.from_json(json.loads(raw))

    @classmethod
    def demo(cls, n: int = 3) -> "TenantDirectory":
        """``n`` deterministic demo tenants (keys ``demo-key-tenant-i``).

        Tenant 0 gets weight 4 (a "paid" tier) so weighted-fairness
        behaviour shows up out of the box; all are otherwise
        unthrottled.  For tests, demos, and the load benchmark only —
        the keys are public by construction.
        """
        if n < 1:
            raise ValueError("demo directory needs n >= 1")
        return cls(
            Tenant(
                name=f"tenant-{i}",
                api_key=f"demo-key-tenant-{i}",
                weight=4.0 if i == 0 else 1.0,
            )
            for i in range(n)
        )
