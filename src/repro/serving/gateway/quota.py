"""Per-tenant admission control: token-bucket rate + in-flight caps.

Two independent limits guard the service from any single tenant, both
configured on the :class:`~repro.serving.gateway.auth.Tenant` record:

* a **token bucket** bounds sustained request *rate* (``rate`` tokens
  refilled per second, up to ``burst`` capacity), and
* an **in-flight cap** bounds *concurrency* — requests admitted to the
  service but not yet resolved.

Both are enforced *before* the request touches the labeling service, so
a throttled tenant costs one dict lookup and a float compare, never
queue space.  A denied admission reports how long the caller should
wait (:class:`Denied.retry_after`), which the gateway surfaces as a
``Retry-After`` header on the 429.

The token bucket is the classic lazy-refill formulation: no timers, no
background thread — each ``try_acquire`` first credits ``elapsed *
rate`` tokens (clamped to ``burst``) and then spends.  Deny does **not**
consume tokens, so a rejected burst doesn't push the retry horizon out
further (no punishment spiral under open-loop retry storms).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.serving.gateway.auth import Tenant

__all__ = ["Denied", "TenantQuota", "TokenBucket"]

#: Retry hint for in-flight cap breaches, where the true wait (one
#: request completing) is unknowable at deny time.  One service
#: micro-batch wait is the right order of magnitude.
INFLIGHT_RETRY_HINT = 0.05


@dataclass(frozen=True)
class Denied:
    """Why an admission was refused and when to try again."""

    #: ``"rate_limit"`` (token bucket empty) or ``"inflight"`` (cap hit).
    reason: str
    #: Seconds until the acquisition could plausibly succeed.
    retry_after: float


class TokenBucket:
    """Lazy-refill token bucket; thread-safe; monotonic-clock driven."""

    def __init__(self, rate: float, burst: float, clock=time.monotonic):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst <= 0:
            raise ValueError("burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill_locked(self) -> None:
        now = self._clock()
        if now > self._stamp:
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
        self._stamp = now

    def try_acquire(self, n: float = 1.0) -> float:
        """Spend ``n`` tokens if available.

        Returns ``0.0`` on success, else the seconds until ``n`` tokens
        will have accrued (the caller's ``Retry-After``).  A denial
        spends nothing.
        """
        with self._lock:
            self._refill_locked()
            if self._tokens >= n:
                self._tokens -= n
                return 0.0
            return (n - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill_locked()
            return self._tokens


class TenantQuota:
    """One tenant's live limits: token bucket + in-flight counter.

    ``admit(n)`` checks the in-flight cap first (cheap, and a tenant at
    its concurrency cap should not also burn rate tokens), then the
    bucket; on success the in-flight counter is already incremented by
    ``n`` and the caller **must** pair it with ``release(n)`` when the
    requests resolve — the gateway does so from future callbacks, so
    expired and failed requests release too.
    """

    def __init__(self, tenant: Tenant, clock=time.monotonic):
        self.tenant = tenant
        self.bucket = (
            TokenBucket(tenant.rate, tenant.burst, clock)
            if tenant.rate != float("inf")
            else None
        )
        self.max_inflight = tenant.max_inflight
        self._inflight = 0
        self._lock = threading.Lock()

    def admit(self, n: int = 1) -> Denied | None:
        """Try to admit ``n`` requests; ``None`` means admitted."""
        with self._lock:
            if self._inflight + n > self.max_inflight:
                return Denied("inflight", INFLIGHT_RETRY_HINT)
            if self.bucket is not None:
                retry_after = self.bucket.try_acquire(n)
                if retry_after > 0.0:
                    return Denied("rate_limit", retry_after)
            self._inflight += n
            return None

    def release(self, n: int = 1) -> None:
        with self._lock:
            self._inflight = max(0, self._inflight - n)

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight
