"""Minimal HTTP/1.1 over asyncio streams — just enough for the gateway.

The gateway's wire needs are narrow: parse a request line + headers +
content-length body off an :class:`asyncio.StreamReader`, write fixed
responses, and write ``Transfer-Encoding: chunked`` streams for the
NDJSON endpoint — all without blocking the event loop and all from the
standard library.  This module is that, and nothing more: no TLS, no
pipelining beyond serial keep-alive, no request chunked bodies (501),
no HTTP/2.  Size limits on the header block and body protect the
process from hostile or broken clients.

Everything here is transport-only; routing, auth, and JSON semantics
live in :mod:`repro.serving.gateway.app`.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qs, urlsplit

__all__ = [
    "ChunkedWriter",
    "HttpRequest",
    "WireError",
    "read_request",
    "response_bytes",
]

MAX_REQUEST_LINE = 8192
MAX_HEADER_BYTES = 32768
MAX_BODY_BYTES = 8 * 1024 * 1024

REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class WireError(Exception):
    """A malformed/oversized request; carries the status to answer with."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request: split target, lowercased header names."""

    method: str
    target: str
    path: str
    query: dict[str, list[str]] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: str | None = None) -> str | None:
        return self.headers.get(name.lower(), default)

    def json(self) -> dict:
        """Parse the body as a JSON object (400 on anything else)."""
        if not self.body:
            return {}
        try:
            obj = json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(obj, dict):
            raise WireError(400, "JSON body must be an object")
        return obj

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"


async def _readline(reader: asyncio.StreamReader, limit: int) -> bytes:
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return b""  # clean EOF between requests
        raise WireError(400, "truncated request") from exc
    except asyncio.LimitOverrunError as exc:
        raise WireError(431, "header line too long") from exc
    if len(line) > limit:
        raise WireError(431, "header line too long")
    return line


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one request; ``None`` on clean EOF before a request line."""
    line = await _readline(reader, MAX_REQUEST_LINE)
    if not line:
        return None
    parts = line.decode("latin-1").rstrip("\r\n").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise WireError(400, "malformed request line")
    method, target, _version = parts

    headers: dict[str, str] = {}
    seen = 0
    while True:
        line = await _readline(reader, MAX_HEADER_BYTES)
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise WireError(400, "truncated headers")
        seen += len(line)
        if seen > MAX_HEADER_BYTES:
            raise WireError(431, "header block too large")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise WireError(400, f"malformed header line {name!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise WireError(501, "chunked request bodies are not supported")
    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
        except ValueError as exc:
            raise WireError(400, "invalid Content-Length") from exc
        if length < 0:
            raise WireError(400, "invalid Content-Length")
        if length > MAX_BODY_BYTES:
            raise WireError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise WireError(400, "truncated body") from exc

    split = urlsplit(target)
    return HttpRequest(
        method=method.upper(),
        target=target,
        path=split.path.rstrip("/") or "/",
        query=parse_qs(split.query),
        headers=headers,
        body=body,
    )


def response_bytes(
    status: int,
    body: bytes | str = b"",
    *,
    content_type: str = "application/json",
    extra_headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one fixed-length response."""
    if isinstance(body, str):
        body = body.encode("utf-8")
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def json_body(obj: dict) -> bytes:
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode("utf-8")


class ChunkedWriter:
    """``Transfer-Encoding: chunked`` response writer (NDJSON streams).

    Usage: ``await start(...)`` once, ``await send(...)`` per chunk,
    ``await finish()`` to close the stream (the connection can then
    keep-alive into the next request).
    """

    def __init__(self, writer: asyncio.StreamWriter):
        self._writer = writer
        self._started = False
        self._finished = False

    async def start(
        self,
        status: int = 200,
        *,
        content_type: str = "application/x-ndjson",
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        assert not self._started
        reason = REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            "Transfer-Encoding: chunked",
            "Connection: keep-alive",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        self._writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        self._started = True
        await self._writer.drain()

    async def send(self, data: bytes | str) -> None:
        if isinstance(data, str):
            data = data.encode("utf-8")
        if not data:
            return
        self._writer.write(f"{len(data):x}\r\n".encode("latin-1"))
        self._writer.write(data)
        self._writer.write(b"\r\n")
        await self._writer.drain()

    async def send_json_line(self, obj: dict) -> None:
        await self.send(json.dumps(obj, separators=(",", ":")) + "\n")

    async def finish(self) -> None:
        if self._started and not self._finished:
            self._writer.write(b"0\r\n\r\n")
            self._finished = True
            await self._writer.drain()
