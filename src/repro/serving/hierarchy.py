"""Two-level stride fairness: tenant → batch_key dispatch buckets.

The flat :class:`~repro.serving.queue.RequestQueue` arbitrates between
*batch keys* — one stride pass over per-key FIFO buckets.  That is the
right fairness unit for a single trusted caller hosting mixed regimes,
but a multi-tenant gateway needs fairness between *callers* first: under
the flat queue a hot tenant that spreads traffic over many batch keys
(or simply outnumbers everyone in one key's FIFO) takes service share
proportional to its arrival rate, and a cold tenant's p99 queue wait
grows with the hot tenant's backlog.

:class:`HierarchicalRequestQueue` extends the same stride machinery one
level up.  Requests land in a bucket keyed ``(tenant, batch_key)``;
batch formation picks the **tenant** by an outer stride pass first (one
virtual-time ``pass`` per tenant, lowest wins, serving ``n`` items costs
``n / tenant_weight``), then the **batch key** within that tenant by the
inner stride pass the flat queue already runs (weights from request
priority).  Both levels inherit the aging guarantee: a backlogged
tenant's outer pass stands still while served tenants' advance, so every
tenant with queued work is selected within a bounded number of batches
no matter how hard another tenant pushes — and within a tenant, every
batch key likewise.  Batches stay homogeneous *and* single-tenant.

**Single-tenant parity.**  With all traffic from one tenant (or no
tenant at all — ``spec.tenant is None`` is itself a tenant), the outer
pass has exactly one entry, the inner level sees the same buckets in the
same insertion order with the same charge formula as the flat queue, and
the dispatch trace is *identical* to :class:`RequestQueue` —
test-enforced in ``tests/test_hier_queue.py``.  The hierarchy only
changes behaviour when there is more than one tenant to be fair between.

Everything else — backpressure, deadline admission, ``expire_overdue``,
draining, the ``pop_batch`` state machine — is inherited unchanged: the
subclass only overrides where requests are stored and how the next
bucket is chosen and charged.
"""

from __future__ import annotations

from repro.serving.queue import (
    LabelingRequest,
    RequestQueue,
    _Bucket,
    priority_weight,
)

__all__ = ["HierarchicalRequestQueue"]


class _TenantGroup:
    """One tenant's buckets plus its outer-stride bookkeeping."""

    __slots__ = ("tenant", "pass_value", "vtime", "buckets")

    def __init__(self, tenant: str | None, pass_value: float):
        self.tenant = tenant
        #: Outer stride pass; the lowest-pass tenant is served next.
        self.pass_value = pass_value
        #: Inner virtual time — plays the role the flat queue's global
        #: ``_vtime`` plays, scoped to this tenant's buckets.
        self.vtime = 0.0
        #: (tenant, batch_key) -> bucket, views into the queue's ``_buckets``.
        self.buckets: dict[tuple, _Bucket] = {}

    def head_seq(self) -> int | None:
        """Earliest queued submission sequence across this tenant's
        buckets (``None`` when every bucket is empty)."""
        head: int | None = None
        for bucket in self.buckets.values():
            if bucket.items:
                seq = bucket.items[0][0]
                if head is None or seq < head:
                    head = seq
        return head


class HierarchicalRequestQueue(RequestQueue):
    """Tenant-fair request queue: outer stride per tenant, inner per key.

    Accepts everything :class:`RequestQueue` does, plus:

    Parameters
    ----------
    tenant_weights:
        Optional mapping of tenant name to a positive service weight
        (e.g. a paid tier served 4x the share of a free one).  Tenants
        absent from the map — including the ``None`` tenant of
        untenanted requests — get ``default_tenant_weight``.
    default_tenant_weight:
        Weight for tenants without an explicit entry (default ``1.0``).
    """

    def __init__(
        self,
        *args,
        tenant_weights: dict[str, float] | None = None,
        default_tenant_weight: float = 1.0,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if default_tenant_weight <= 0:
            raise ValueError("default_tenant_weight must be positive")
        for tenant, weight in (tenant_weights or {}).items():
            if weight <= 0:
                raise ValueError(
                    f"tenant weight for {tenant!r} must be positive, got {weight}"
                )
        self._tenant_weights = dict(tenant_weights or {})
        self._default_tenant_weight = float(default_tenant_weight)
        #: tenant -> group, exactly the tenants with queued traffic.
        self._groups: dict[str | None, _TenantGroup] = {}
        #: Outer stride virtual time (pass of the last-served tenant).
        self._outer_vtime = 0.0

    def tenant_weight(self, tenant: str | None) -> float:
        """The outer-stride service weight of ``tenant``."""
        return self._tenant_weights.get(tenant, self._default_tenant_weight)

    # -- storage -------------------------------------------------------------

    def _bucket_key(self, request: LabelingRequest):
        return (request.tenant, request.batch_key)

    def _store_locked(self, request: LabelingRequest) -> None:
        tenant = request.tenant
        group = self._groups.get(tenant)
        if group is None:
            group = self._groups[tenant] = _TenantGroup(tenant, self._outer_vtime)
        elif group.head_seq() is None:
            # Ready again after an idle stretch: re-enter the outer round
            # at the current virtual time (keep any outstanding debt) —
            # the same rule the flat queue applies to buckets.
            group.pass_value = max(group.pass_value, self._outer_vtime)
        key = (tenant, request.batch_key)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = _Bucket(key, group.vtime)
            group.buckets[key] = bucket
        elif not bucket.items:
            bucket.pass_value = max(bucket.pass_value, group.vtime)
        bucket.push(self._seq, request)
        self._seq += 1
        self._depth += 1

    # -- selection / charging ------------------------------------------------

    def _select_locked(self) -> _Bucket | None:
        """Outer stride picks the tenant, inner stride picks its bucket.

        Both levels rank by ``(pass_value, earliest head sequence)`` —
        lowest pass wins, ties break FIFO by arrival — so one tenant's
        selection logic is bit-identical to the flat queue's.
        """
        best_group: _TenantGroup | None = None
        best_rank = None
        for group in self._groups.values():
            head = group.head_seq()
            if head is None:
                continue
            rank = (group.pass_value, head)
            if best_group is None or rank < best_rank:
                best_group, best_rank = group, rank
        if best_group is None:
            return None
        best: _Bucket | None = None
        best_rank = None
        for bucket in best_group.buckets.values():
            if not bucket.items:
                continue
            rank = (bucket.pass_value, bucket.items[0][0])
            if best is None or rank < best_rank:
                best, best_rank = bucket, rank
        return best

    def _charge_locked(self, bucket: _Bucket, batch: list[LabelingRequest]) -> None:
        """Advance both strides for one dispatched batch.

        The bucket pays the flat queue's inner price (``n / priority
        weight``) against its tenant's virtual time; the tenant pays
        ``n / tenant_weight`` against the outer virtual time.  Every
        *other* tenant's pass stands still — the aging guarantee that
        bounds how long a cold tenant can wait behind a hot one.
        """
        tenant, _ = bucket.key
        group = self._groups[tenant]
        weight = priority_weight(max(r.priority for r in batch))
        group.vtime = max(group.vtime, bucket.pass_value)
        bucket.pass_value = group.vtime + len(batch) / weight
        self._outer_vtime = max(self._outer_vtime, group.pass_value)
        group.pass_value = self._outer_vtime + len(batch) / self.tenant_weight(
            tenant
        )

    # -- pruning / lifecycle -------------------------------------------------

    def _prune_locked(self) -> None:
        super()._prune_locked()
        stale = []
        for tenant, group in self._groups.items():
            for key in [k for k in group.buckets if k not in self._buckets]:
                del group.buckets[key]
            if not group.buckets:
                stale.append(tenant)
        for tenant in stale:
            del self._groups[tenant]

    def close(self) -> list[LabelingRequest]:
        leftovers = super().close()
        with self._cond:
            self._groups.clear()
        return leftovers

    # -- introspection -------------------------------------------------------

    def tenant_depths(self) -> dict[str | None, int]:
        """Queued requests per tenant right now (live tenants only)."""
        with self._cond:
            out: dict[str | None, int] = {}
            for (tenant, _), bucket in self._buckets.items():
                out[tenant] = out.get(tenant, 0) + len(bucket.items)
            return out
