"""The PR-3 heap grouper, kept as a parity and fairness baseline.

:class:`LegacyGroupingQueue` is the queue :class:`~repro.serving.queue.
RequestQueue` replaced: one global priority heap, with homogeneous batches
formed by anchoring on the highest-priority admissible request and
re-walking every different-key entry per arrival (O(depth) heap ops under
the queue lock).  Its two structural flaws motivated the bucket rewrite:

* **Starvation** — the anchor is always the top of the priority heap, so
  under sustained higher-priority traffic of one regime a lower-priority
  regime is never anchored and never dispatched.
* **Scan cost** — a forming batch pops and re-pushes every different-key
  entry each time new requests arrive.

It stays in the tree (not exported from ``repro.serving``) because it is
the *reference* the rewrite is judged against: single-regime dispatch
traces must be identical (``tests/test_fair_queue.py``), and
``benchmarks/bench_fair_dispatch.py`` replays the same cross-traffic
trace through both queues to show bounded vs. unbounded low-priority
wait.  Admission (backpressure, deadline checks, bulk puts) is inherited
from :class:`RequestQueue` — only storage and batch formation differ.
"""

from __future__ import annotations

import heapq

from repro.serving.queue import LabelingRequest, RequestQueue


class LegacyGroupingQueue(RequestQueue):
    """Priority-heap request buffer with anchor-by-priority grouping."""

    def __init__(self, *args, **kwargs):
        self._heap: list[tuple[int, int, LabelingRequest]] = []
        super().__init__(*args, **kwargs)

    # -- storage (one global heap instead of per-key buckets) ---------------

    def _len_locked(self) -> int:
        return len(self._heap)

    def _store_locked(self, request: LabelingRequest) -> None:
        heapq.heappush(self._heap, (-request.priority, self._seq, request))
        self._seq += 1

    # -- consumer side -------------------------------------------------------

    def pop_batch(
        self, max_items: int, max_wait: float
    ) -> tuple[list[LabelingRequest], list[LabelingRequest], str | None]:
        """The PR-3 batch former: anchor by priority, rescan per arrival."""
        if max_items < 1:
            raise ValueError("max_items must be >= 1")
        if max_wait < 0:
            raise ValueError("max_wait must be non-negative")
        _unset = object()
        with self._cond:
            while True:
                while not self._heap and not self._closed:
                    self._cond.wait()
                if not self._heap:
                    return [], [], None
                batch: list[LabelingRequest] = []
                expired: list[LabelingRequest] = []
                key = _unset
                saw_mismatch = False
                scanned_seq = None
                flush_at = self._clock() + max_wait
                while True:
                    # Rescan only when new requests arrived since the last
                    # scan.  Each rescan walks past every different-key
                    # entry — the O(depth)-per-arrival cost the bucket
                    # queue eliminates.
                    if scanned_seq != self._seq:
                        now = self._clock()
                        mismatched: list[tuple[int, int, LabelingRequest]] = []
                        while self._heap and len(batch) < max_items:
                            entry = heapq.heappop(self._heap)
                            request = entry[2]
                            if not self._admissible(request, now):
                                expired.append(request)
                                continue
                            if key is _unset:
                                key = request.batch_key
                            if request.batch_key == key:
                                batch.append(request)
                            else:
                                mismatched.append(entry)
                        # Different-key requests keep their (priority, seq)
                        # entries, so their ordering survives the round trip.
                        for entry in mismatched:
                            heapq.heappush(self._heap, entry)
                        saw_mismatch = saw_mismatch or bool(mismatched)
                        scanned_seq = self._seq
                        self._cond.notify_all()
                    if len(batch) >= max_items:
                        return batch, expired, "size"
                    if self._closed or self._draining:
                        return batch, expired, "drain"
                    remaining = flush_at - self._clock()
                    if remaining <= 0:
                        reason = (
                            "regime_split" if batch and saw_mismatch else "wait"
                        )
                        return batch, expired, reason
                    self._cond.wait(remaining)

    def expire_overdue(self, now: float | None = None) -> list[LabelingRequest]:
        """Heap-walking counterpart of the bucket queue's timer expiry."""
        removed: list[LabelingRequest] = []
        with self._cond:
            when = self._clock() if now is None else now
            kept = []
            for entry in self._heap:
                if self._admissible(entry[2], when):
                    kept.append(entry)
                else:
                    removed.append(entry[2])
            if removed:
                self._heap = kept
                heapq.heapify(self._heap)
                self._cond.notify_all()
        return removed

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> list[LabelingRequest]:
        """Close the queue; leftovers come back in (priority, seq) order."""
        with self._cond:
            self._closed = True
            leftovers = [request for _, _, request in sorted(self._heap)]
            self._heap.clear()
            self._cond.notify_all()
            return leftovers
