"""Per-key FIFO dispatch buckets with weighted-fair key selection.

The queue is the admission layer of the serving tier.  It holds
:class:`LabelingRequest` records between ``submit()`` and dispatch, and
enforces the policies the dispatch loop should never have to think about:

* **Per-key buckets** — requests land in one FIFO ``deque`` per
  :attr:`~repro.spec.LabelingSpec.batch_key` (same regime / deadline class
  / memory budget).  Admission appends to a deque and batch formation pops
  from one, so both are O(1)-amortized per request — no cross-key heap
  scans under the queue lock (the PR-3 grouper re-walked every
  different-key entry per arrival, O(depth)).
* **Weighted fairness** — :meth:`pop_batch` picks the bucket to serve by
  stride scheduling: every bucket carries a virtual-time ``pass`` value,
  the lowest pass wins, and serving ``n`` items advances the winner's pass
  by ``n / weight`` where the weight grows with the batch's highest
  priority.  High-priority buckets are served proportionally more often,
  but a backlogged low-priority bucket's pass stays put while everyone
  else's advances, so it is always selected within a bounded number of
  batches — sustained high-priority cross-traffic can no longer starve a
  regime (the PR-3 grouper anchored strictly by priority and could).
  Within one bucket requests pop strictly FIFO; a request's priority
  raises its whole bucket's service rate instead of reordering its
  neighbours.
* **Backpressure** — depth is bounded by ``max_depth``.  When full, the
  ``overflow`` policy either rejects immediately (:class:`QueueFull`) or
  blocks the producer until space frees up (with an optional timeout).
* **Deadline admission** — a request whose remaining deadline cannot cover
  even the cheapest model's execution cost can never produce a label, so
  it is dropped instead of wasting a batch slot: at ``put`` time with
  :class:`DeadlineExpired`, silently into the expired list as
  :meth:`pop_batch` reaches it, or — so a bucket the dispatcher is not
  currently serving settles its doomed requests promptly — via
  :meth:`expire_overdue`, which the service calls on a timer tick.
* **Homogeneous grouping** — every batch :meth:`pop_batch` forms contains
  only requests from one bucket, i.e. one ``batch_key``.  A flush whose
  timer expired while other-key traffic waited is reported as
  ``"regime_split"`` so operators can see grouping at work.

Request deadlines are wall-clock budgets in seconds from submission, the
same currency as the zoo's per-model costs — queue wait spends the same
budget the scheduler spends executing models, mirroring the paper's
deadline-constrained regime end to end.

The PR-3 heap grouper survives as
:class:`repro.serving.legacy.LegacyGroupingQueue`, the parity and
fairness baseline (``benchmarks/bench_fair_dispatch.py``).
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.data.datasets import DataItem
from repro.spec import LabelingSpec

#: Slack applied to deadline comparisons so float arithmetic on budgets
#: never drops a request that exactly affords the cheapest model.
_DEADLINE_EPS = 1e-9

#: Overflow policies: reject new requests vs. block the producer.
OVERFLOW_POLICIES = ("block", "reject")

#: Priority exponent clamp for stride weights: keeps ``2.0 ** priority``
#: finite and the worst-case service-rate ratio between two buckets
#: bounded, so aging always drains a backlogged bucket in bounded rounds.
_PRIORITY_CLAMP = 32


def priority_weight(priority: int) -> float:
    """Stride-scheduling weight of a priority class (always positive)."""
    return 2.0 ** min(max(priority, -_PRIORITY_CLAMP), _PRIORITY_CLAMP)


class ServingError(RuntimeError):
    """Base class for serving-layer failures."""


class QueueFull(ServingError):
    """The admission queue is at ``max_depth`` and the request was refused."""


class DeadlineExpired(ServingError):
    """The request's remaining deadline cannot cover any model execution."""


class ServiceStopped(ServingError):
    """The service is no longer accepting or processing requests."""


@dataclass(eq=False)
class LabelingRequest:
    """One client request: an item, its admission terms, and its future."""

    item: DataItem
    #: Raises the owning bucket's service rate; FIFO within the bucket.
    priority: int = 0
    #: Optional wall-clock budget in seconds, counted from ``submitted_at``.
    deadline: float | None = None
    #: Queue-clock timestamp of submission.
    submitted_at: float = 0.0
    #: Scheduling constraints this request labels under (``None`` groups
    #: with other spec-less requests; the service always attaches one).
    spec: LabelingSpec | None = None
    #: Result-cache key this request fills on completion (``None`` when
    #: the service runs without a cache).
    cache_key: tuple | None = None
    #: Live :class:`~repro.obs.trace.RequestTrace` span following this
    #: request through the pipeline (``None`` without tracing).
    trace: object | None = None
    #: Write-ahead journal sequence of this request's admission record
    #: (``None`` when the service runs without a journal, or for replayed
    #: requests whose original admission record is settled by the
    #: recovery callback instead).
    journal_seq: int | None = None
    #: Resolves to a :class:`~repro.engine.results.LabelingResult` or an error.
    future: Future = field(default_factory=Future)

    def remaining(self, now: float) -> float:
        """Deadline budget left at time ``now`` (infinite when unconstrained)."""
        if self.deadline is None:
            return math.inf
        return self.deadline - (now - self.submitted_at)

    @property
    def batch_key(self):
        """Grouping key: requests may share a batch iff their keys match."""
        return self.spec.batch_key if self.spec is not None else None

    @property
    def tenant(self) -> str | None:
        """Owning tenant (``None`` for untenanted / in-process callers)."""
        return self.spec.tenant if self.spec is not None else None


@dataclass(frozen=True)
class BulkAdmission:
    """Outcome of :meth:`RequestQueue.put_many`, partitioned by fate."""

    #: Requests enqueued and awaiting dispatch.
    admitted: tuple[LabelingRequest, ...]
    #: Requests whose deadline cannot cover the cheapest model.
    expired: tuple[LabelingRequest, ...]
    #: Requests refused by the depth bound (reject policy or block timeout).
    rejected: tuple[LabelingRequest, ...]
    #: Requests refused because the queue closed or started draining mid-call.
    stopped: tuple[LabelingRequest, ...]


class _Bucket:
    """One batch_key's FIFO backlog plus its fair-share bookkeeping."""

    __slots__ = ("key", "items", "pass_value", "deadlined", "pinned")

    def __init__(self, key, pass_value: float):
        self.key = key
        #: FIFO backlog of ``(seq, request)`` pairs.
        self.items: deque[tuple[int, LabelingRequest]] = deque()
        #: Stride-scheduling virtual time; lowest pass is served next.
        self.pass_value = pass_value
        #: Queued requests carrying an admission deadline.
        self.deadlined = 0
        #: Consumers currently forming a batch anchored on this bucket
        #: (guards against pruning a bucket a pop is still filling from).
        self.pinned = 0

    def push(self, seq: int, request: LabelingRequest) -> None:
        self.items.append((seq, request))
        if request.deadline is not None:
            self.deadlined += 1

    def forget(self, request: LabelingRequest) -> None:
        """Bookkeeping for one request removed from ``items``."""
        if request.deadline is not None:
            self.deadlined -= 1


class RequestQueue:
    """Bounded, deadline-checking buffer of per-key FIFO dispatch buckets.

    Parameters
    ----------
    max_depth:
        Backpressure bound: most requests buffered at once (all buckets).
    overflow:
        ``"block"`` makes :meth:`put` wait for space (until ``timeout``);
        ``"reject"`` raises :class:`QueueFull` immediately.
    min_cost:
        The cheapest model's execution cost in seconds — the admission
        bar a request's remaining deadline must clear.
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    def __init__(
        self,
        max_depth: int = 1024,
        overflow: str = "block",
        min_cost: float = 0.0,
        clock=time.monotonic,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {overflow!r}; "
                f"choose from {sorted(OVERFLOW_POLICIES)}"
            )
        if min_cost < 0:
            raise ValueError("min_cost must be non-negative")
        self.max_depth = max_depth
        self.overflow = overflow
        self.min_cost = float(min_cost)
        self._clock = clock
        self._seq = 0
        self._cond = threading.Condition()
        self._closed = False
        self._draining = False
        #: batch_key -> bucket, holding exactly the keys with queued (or
        #: batch-forming) traffic: emptied buckets are pruned after every
        #: pop/expiry sweep, so a long-lived queue seeing unbounded
        #: distinct keys (every float deadline is its own key) stays
        #: bounded by concurrent traffic, not by history.
        self._buckets: dict = {}
        self._depth = 0
        #: Global stride-scheduling virtual time (pass of the last-served
        #: bucket); newly ready buckets join at this point, never earlier,
        #: so an idle bucket cannot bank credit against active ones.
        self._vtime = 0.0

    # -- state ---------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Requests currently buffered (across all buckets)."""
        with self._cond:
            return self._len_locked()

    def __len__(self) -> int:
        return self.depth

    def _len_locked(self) -> int:
        return self._depth

    def _admissible(self, request: LabelingRequest, now: float) -> bool:
        return request.remaining(now) >= self.min_cost - _DEADLINE_EPS

    # -- producer side -------------------------------------------------------

    def _bucket_key(self, request: LabelingRequest):
        """The bucket a request queues into (hook for subclasses).

        The flat queue buckets purely by ``batch_key``;
        :class:`~repro.serving.hierarchy.HierarchicalRequestQueue`
        overrides this to ``(tenant, batch_key)`` so batches stay
        single-tenant.
        """
        return request.batch_key

    def _store_locked(self, request: LabelingRequest) -> None:
        """Append one admitted request to its bucket, O(1)."""
        key = self._bucket_key(request)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = _Bucket(key, self._vtime)
        elif not bucket.items:
            # Ready again after an idle stretch: re-enter the round at the
            # current virtual time (keep any outstanding debt).
            bucket.pass_value = max(bucket.pass_value, self._vtime)
        bucket.push(self._seq, request)
        self._seq += 1
        self._depth += 1

    def _admit_locked(
        self,
        request: LabelingRequest,
        deadline_at: float | None,
        nowait: bool = False,
    ) -> str:
        """Admit one request under ``self._cond``; returns its fate.

        The single admission sequence :meth:`put` and :meth:`put_many`
        share: closed-check, deadline admissibility, overflow policy
        (waiting for space until ``deadline_at`` under ``block``), push,
        and a consumer wake-up after every successful push — so a bulk
        producer that later blocks for space has already made its pushed
        requests dispatchable.  ``nowait`` refuses a full queue
        immediately even under the ``block`` policy — the non-blocking
        admission path event-loop callers need.

        Fates: ``"admitted"``, ``"expired"``, ``"rejected"`` (depth policy
        refused: rejecting while full, or block policy out of time),
        ``"stopped"``.
        """
        if self._closed or self._draining:
            return "stopped"
        if not self._admissible(request, self._clock()):
            return "expired"
        if self._len_locked() >= self.max_depth:
            if nowait or self.overflow == "reject":
                return "rejected"
            remaining = (
                None if deadline_at is None else deadline_at - self._clock()
            )
            if not self._cond.wait_for(
                lambda: self._len_locked() < self.max_depth
                or self._closed
                or self._draining,
                remaining,
            ):
                return "rejected"
            if self._closed or self._draining:
                return "stopped"
        self._store_locked(request)
        self._cond.notify_all()
        return "admitted"

    def expired_error(self, request: LabelingRequest) -> DeadlineExpired:
        """The admission-expiry error for ``request`` (shared wording for
        the raise-on-put and settle-on-future paths)."""
        return DeadlineExpired(
            f"deadline {request.deadline}s cannot cover the cheapest "
            f"model cost {self.min_cost}s"
        )

    def rejected_error(
        self, timeout: float | None, nowait: bool = False
    ) -> QueueFull:
        """The depth-refusal error under the current overflow policy."""
        if nowait:
            return QueueFull(
                f"queue at max depth {self.max_depth} (nowait admission)"
            )
        if self.overflow == "reject":
            return QueueFull(
                f"queue at max depth {self.max_depth} (overflow policy: reject)"
            )
        return QueueFull(
            f"queue stayed at max depth {self.max_depth} "
            f"for {timeout}s (overflow policy: block)"
        )

    def put(
        self,
        request: LabelingRequest,
        timeout: float | None = None,
        nowait: bool = False,
    ) -> None:
        """Admit one request, enforcing deadline and depth policies.

        Raises :class:`DeadlineExpired` when the request can never afford
        the cheapest model, :class:`QueueFull` when depth policy refuses
        it, and :class:`ServiceStopped` when the queue is closed.
        ``nowait`` raises :class:`QueueFull` immediately on a full queue
        regardless of the overflow policy — the producer never blocks.
        """
        deadline_at = None if timeout is None else self._clock() + timeout
        with self._cond:
            fate = self._admit_locked(request, deadline_at, nowait=nowait)
        if fate == "stopped":
            raise ServiceStopped("queue is not accepting new requests")
        if fate == "expired":
            raise self.expired_error(request)
        if fate == "rejected":
            raise self.rejected_error(timeout, nowait=nowait)

    def put_many(
        self,
        requests: list[LabelingRequest],
        timeout: float | None = None,
        nowait: bool = False,
    ) -> BulkAdmission:
        """Admit many requests under one lock round.

        The bulk counterpart of :meth:`put`: all bookkeeping happens inside
        a single condition acquisition (the ``block`` overflow policy may
        still release it while waiting for space).  Unlike :meth:`put`,
        admission failures never raise mid-stream — each request lands in
        exactly one :class:`BulkAdmission` bucket, so the caller can settle
        per-request futures — except when the queue is already closed,
        which raises :class:`ServiceStopped` before anything is admitted.

        Under ``block`` overflow, ``timeout`` bounds the *total* time spent
        waiting for space across the whole call; ``nowait`` rejects on a
        full queue immediately instead of waiting at all.
        """
        buckets: dict[str, list[LabelingRequest]] = {
            "admitted": [],
            "expired": [],
            "rejected": [],
            "stopped": [],
        }
        deadline_at = None if timeout is None else self._clock() + timeout
        with self._cond:
            if self._closed or self._draining:
                raise ServiceStopped("queue is not accepting new requests")
            for request in requests:
                buckets[
                    self._admit_locked(request, deadline_at, nowait=nowait)
                ].append(request)
        return BulkAdmission(
            admitted=tuple(buckets["admitted"]),
            expired=tuple(buckets["expired"]),
            rejected=tuple(buckets["rejected"]),
            stopped=tuple(buckets["stopped"]),
        )

    # -- consumer side -------------------------------------------------------

    def _select_locked(self) -> "_Bucket | None":
        """The non-empty bucket stride scheduling serves next.

        Lowest pass value wins; ties break FIFO by the head request's
        submission sequence, so freshly ready buckets are anchored in
        arrival order.  Scans one entry per *distinct key* (a handful of
        regimes), not per queued request.
        """
        best = None
        best_rank = None
        for bucket in self._buckets.values():
            if not bucket.items:
                continue
            rank = (bucket.pass_value, bucket.items[0][0])
            if best is None or rank < best_rank:
                best, best_rank = bucket, rank
        return best

    def _charge_locked(self, bucket: "_Bucket", batch: list[LabelingRequest]):
        """Advance virtual time for one dispatched batch.

        The bucket pays ``n / weight`` where the weight comes from the
        batch's highest priority — serving a high-priority batch is cheap,
        so its bucket comes up again sooner, while every other bucket's
        pass stands still (that standing-still is the aging guarantee).
        """
        weight = priority_weight(max(r.priority for r in batch))
        self._vtime = max(self._vtime, bucket.pass_value)
        bucket.pass_value = self._vtime + len(batch) / weight

    def _other_pending_locked(self, bucket: "_Bucket") -> bool:
        return any(
            other.items for other in self._buckets.values() if other is not bucket
        )

    def _prune_locked(self) -> None:
        """Drop emptied buckets so ``_buckets`` tracks only live traffic.

        Every distinct key ever seen would otherwise pin a bucket forever
        (a float deadline is its own key, so long-lived services see
        unbounded key cardinality) and every per-batch key scan would pay
        for it.  A pruned key that returns re-enters at the current
        virtual time — exactly where a retained *credit-free* bucket
        would re-enter — so the only thing forgotten is the residual debt
        of a key whose backlog fully drained, worth at most one extra
        batch on its next burst.  Buckets a consumer is still anchored on
        are kept (their deque must stay live for same-key arrivals).
        """
        stale = [
            key
            for key, bucket in self._buckets.items()
            if not bucket.items and not bucket.pinned
        ]
        for key in stale:
            del self._buckets[key]

    def pop_batch(
        self, max_items: int, max_wait: float
    ) -> tuple[list[LabelingRequest], list[LabelingRequest], str | None]:
        """Form one homogeneous micro-batch: ``(batch, expired, reason)``.

        Blocks until at least one request is available, then serves the
        bucket stride scheduling selects: up to ``max_items`` requests pop
        from that one deque in FIFO order.  Other buckets are never
        touched, so a forming batch costs O(1) per request plus one
        O(#keys) selection per batch.  Requests whose deadline ran out
        while queued land in ``expired`` instead of the batch.

        ``reason`` is ``"size"`` (batch filled), ``"wait"`` (``max_wait``
        elapsed since the batch started forming), ``"regime_split"``
        (the timer elapsed on an underfull batch while different-key
        requests waited — the batch was bounded by grouping, not by
        traffic), ``"drain"`` (queue draining or closing flushed a partial
        batch), or ``None`` with both lists empty once the queue is closed
        and empty — the consumer's signal to exit.
        """
        if max_items < 1:
            raise ValueError("max_items must be >= 1")
        if max_wait < 0:
            raise ValueError("max_wait must be non-negative")
        with self._cond:
            while self._depth == 0 and not self._closed:
                self._cond.wait()
            if self._depth == 0:
                return [], [], None
            batch: list[LabelingRequest] = []
            expired: list[LabelingRequest] = []
            anchor: _Bucket | None = None
            saw_other = False
            flush_at = self._clock() + max_wait
            try:
                while True:
                    now = self._clock()
                    while len(batch) < max_items:
                        if anchor is None:
                            anchor = self._select_locked()
                            if anchor is None:
                                break  # every bucket is empty
                            anchor.pinned += 1
                        if not anchor.items:
                            if batch:
                                break  # wait for same-key arrivals
                            anchor.pinned -= 1
                            anchor = None  # all expired; pick another bucket
                            continue
                        _, request = anchor.items.popleft()
                        anchor.forget(request)
                        self._depth -= 1
                        if self._admissible(request, now):
                            batch.append(request)
                        else:
                            expired.append(request)
                    if batch or expired:
                        self._cond.notify_all()  # space freed for producers
                    if len(batch) >= max_items:
                        self._charge_locked(anchor, batch)
                        return batch, expired, "size"
                    if self._closed or self._draining:
                        if batch:
                            self._charge_locked(anchor, batch)
                        return batch, expired, "drain"
                    if batch:
                        saw_other = (
                            saw_other or self._other_pending_locked(anchor)
                        )
                    remaining = flush_at - self._clock()
                    if remaining <= 0:
                        if batch:
                            self._charge_locked(anchor, batch)
                            reason = "regime_split" if saw_other else "wait"
                            return batch, expired, reason
                        return [], expired, "wait"
                    if not batch and expired:
                        # Nothing to form a batch from on this pass; hand
                        # the doomed requests back promptly instead of
                        # waiting out the flush timer with their futures
                        # unsettled.
                        return [], expired, "wait"
                    self._cond.wait(remaining)
            finally:
                if anchor is not None:
                    anchor.pinned -= 1
                self._prune_locked()

    def expire_overdue(self, now: float | None = None) -> list[LabelingRequest]:
        """Remove and return every queued request past its deadline.

        :meth:`pop_batch` only examines the bucket it is serving, so a
        doomed request in a bucket the dispatcher is busy elsewhere on
        would otherwise wait for its turn just to be dropped.  The service
        calls this on a timer tick to settle such futures promptly.  Cheap
        when nothing can expire: buckets with no deadline-carrying
        requests are skipped without scanning.
        """
        removed: list[LabelingRequest] = []
        with self._cond:
            when = self._clock() if now is None else now
            for bucket in self._buckets.values():
                if not bucket.deadlined:
                    continue
                kept: deque[tuple[int, LabelingRequest]] = deque()
                for seq, request in bucket.items:
                    if self._admissible(request, when):
                        kept.append((seq, request))
                    else:
                        bucket.forget(request)
                        self._depth -= 1
                        removed.append(request)
                bucket.items = kept
            if removed:
                self._prune_locked()
                self._cond.notify_all()  # space freed for blocked producers
        return removed

    # -- lifecycle -----------------------------------------------------------

    def start_drain(self) -> None:
        """Refuse new requests and flush forming batches immediately."""
        with self._cond:
            self._draining = True
            self._cond.notify_all()

    def close(self) -> list[LabelingRequest]:
        """Close the queue and return the requests left undispatched.

        Wakes every blocked producer (:class:`ServiceStopped`) and consumer
        (final drain flushes, then the ``None``-reason exit signal).
        Leftovers come back in global submission (FIFO) order.
        """
        with self._cond:
            self._closed = True
            entries = [
                entry for bucket in self._buckets.values() for entry in bucket.items
            ]
            leftovers = [request for _, request in sorted(entries)]
            self._buckets.clear()
            self._depth = 0
            self._cond.notify_all()
            return leftovers
