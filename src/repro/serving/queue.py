"""Priority-aware request queue: backpressure, deadlines, regime grouping.

The queue is the admission layer of the serving tier.  It holds
:class:`LabelingRequest` records between ``submit()`` and dispatch, and
enforces the policies the dispatch loop should never have to think about:

* **Priority ordering** — higher ``priority`` pops first; within one
  priority class requests pop in submission order (FIFO).
* **Backpressure** — depth is bounded by ``max_depth``.  When full, the
  ``overflow`` policy either rejects immediately (:class:`QueueFull`) or
  blocks the producer until space frees up (with an optional timeout).
* **Deadline admission** — a request whose remaining deadline cannot cover
  even the cheapest model's execution cost can never produce a label, so
  it is dropped instead of wasting a batch slot: at ``put`` time with
  :class:`DeadlineExpired`, or silently into the expired list at
  ``pop_batch`` time if its budget ran out while queued.
* **Homogeneous grouping** — every batch :meth:`pop_batch` forms contains
  only requests sharing one :attr:`~repro.spec.LabelingSpec.batch_key`
  (same regime / deadline class / memory budget).  The first admissible
  request (in priority order) anchors the key; same-key requests join from
  anywhere in the queue, different-key requests stay queued for the next
  pop.  Batch formation per key keeps the usual size/``max_wait`` bounds —
  a flush whose timer expired while other-key traffic waited is reported
  as ``"regime_split"`` so operators can see grouping at work.

Request deadlines are wall-clock budgets in seconds from submission, the
same currency as the zoo's per-model costs — queue wait spends the same
budget the scheduler spends executing models, mirroring the paper's
deadline-constrained regime end to end.
"""

from __future__ import annotations

import heapq
import math
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.data.datasets import DataItem
from repro.spec import LabelingSpec

#: Slack applied to deadline comparisons so float arithmetic on budgets
#: never drops a request that exactly affords the cheapest model.
_DEADLINE_EPS = 1e-9

#: Overflow policies: reject new requests vs. block the producer.
OVERFLOW_POLICIES = ("block", "reject")


class ServingError(RuntimeError):
    """Base class for serving-layer failures."""


class QueueFull(ServingError):
    """The admission queue is at ``max_depth`` and the request was refused."""


class DeadlineExpired(ServingError):
    """The request's remaining deadline cannot cover any model execution."""


class ServiceStopped(ServingError):
    """The service is no longer accepting or processing requests."""


@dataclass(eq=False)
class LabelingRequest:
    """One client request: an item, its admission terms, and its future."""

    item: DataItem
    #: Higher pops sooner; ties resolve in submission order.
    priority: int = 0
    #: Optional wall-clock budget in seconds, counted from ``submitted_at``.
    deadline: float | None = None
    #: Queue-clock timestamp of submission.
    submitted_at: float = 0.0
    #: Scheduling constraints this request labels under (``None`` groups
    #: with other spec-less requests; the service always attaches one).
    spec: LabelingSpec | None = None
    #: Resolves to a :class:`~repro.engine.results.LabelingResult` or an error.
    future: Future = field(default_factory=Future)

    def remaining(self, now: float) -> float:
        """Deadline budget left at time ``now`` (infinite when unconstrained)."""
        if self.deadline is None:
            return math.inf
        return self.deadline - (now - self.submitted_at)

    @property
    def batch_key(self):
        """Grouping key: requests may share a batch iff their keys match."""
        return self.spec.batch_key if self.spec is not None else None


@dataclass(frozen=True)
class BulkAdmission:
    """Outcome of :meth:`RequestQueue.put_many`, partitioned by fate."""

    #: Requests enqueued and awaiting dispatch.
    admitted: tuple[LabelingRequest, ...]
    #: Requests whose deadline cannot cover the cheapest model.
    expired: tuple[LabelingRequest, ...]
    #: Requests refused by the depth bound (reject policy or block timeout).
    rejected: tuple[LabelingRequest, ...]
    #: Requests refused because the queue closed or started draining mid-call.
    stopped: tuple[LabelingRequest, ...]


class RequestQueue:
    """Bounded, priority-ordered, deadline-checking, grouping request buffer.

    Parameters
    ----------
    max_depth:
        Backpressure bound: most requests buffered at once.
    overflow:
        ``"block"`` makes :meth:`put` wait for space (until ``timeout``);
        ``"reject"`` raises :class:`QueueFull` immediately.
    min_cost:
        The cheapest model's execution cost in seconds — the admission
        bar a request's remaining deadline must clear.
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    def __init__(
        self,
        max_depth: int = 1024,
        overflow: str = "block",
        min_cost: float = 0.0,
        clock=time.monotonic,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {overflow!r}; "
                f"choose from {sorted(OVERFLOW_POLICIES)}"
            )
        if min_cost < 0:
            raise ValueError("min_cost must be non-negative")
        self.max_depth = max_depth
        self.overflow = overflow
        self.min_cost = float(min_cost)
        self._clock = clock
        self._heap: list[tuple[int, int, LabelingRequest]] = []
        self._seq = 0
        self._cond = threading.Condition()
        self._closed = False
        self._draining = False

    # -- state ---------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Requests currently buffered."""
        with self._cond:
            return len(self._heap)

    def __len__(self) -> int:
        return self.depth

    def _admissible(self, request: LabelingRequest, now: float) -> bool:
        return request.remaining(now) >= self.min_cost - _DEADLINE_EPS

    # -- producer side -------------------------------------------------------

    def _admit_locked(
        self, request: LabelingRequest, deadline_at: float | None
    ) -> str:
        """Admit one request under ``self._cond``; returns its fate.

        The single admission sequence :meth:`put` and :meth:`put_many`
        share: closed-check, deadline admissibility, overflow policy
        (waiting for space until ``deadline_at`` under ``block``), push,
        and a consumer wake-up after every successful push — so a bulk
        producer that later blocks for space has already made its pushed
        requests dispatchable.

        Fates: ``"admitted"``, ``"expired"``, ``"rejected"`` (depth policy
        refused: rejecting while full, or block policy out of time),
        ``"stopped"``.
        """
        if self._closed or self._draining:
            return "stopped"
        if not self._admissible(request, self._clock()):
            return "expired"
        if len(self._heap) >= self.max_depth:
            if self.overflow == "reject":
                return "rejected"
            remaining = (
                None if deadline_at is None else deadline_at - self._clock()
            )
            if not self._cond.wait_for(
                lambda: len(self._heap) < self.max_depth
                or self._closed
                or self._draining,
                remaining,
            ):
                return "rejected"
            if self._closed or self._draining:
                return "stopped"
        heapq.heappush(self._heap, (-request.priority, self._seq, request))
        self._seq += 1
        self._cond.notify_all()
        return "admitted"

    def expired_error(self, request: LabelingRequest) -> DeadlineExpired:
        """The admission-expiry error for ``request`` (shared wording for
        the raise-on-put and settle-on-future paths)."""
        return DeadlineExpired(
            f"deadline {request.deadline}s cannot cover the cheapest "
            f"model cost {self.min_cost}s"
        )

    def rejected_error(self, timeout: float | None) -> QueueFull:
        """The depth-refusal error under the current overflow policy."""
        if self.overflow == "reject":
            return QueueFull(
                f"queue at max depth {self.max_depth} (overflow policy: reject)"
            )
        return QueueFull(
            f"queue stayed at max depth {self.max_depth} "
            f"for {timeout}s (overflow policy: block)"
        )

    def put(self, request: LabelingRequest, timeout: float | None = None) -> None:
        """Admit one request, enforcing deadline and depth policies.

        Raises :class:`DeadlineExpired` when the request can never afford
        the cheapest model, :class:`QueueFull` when depth policy refuses
        it, and :class:`ServiceStopped` when the queue is closed.
        """
        deadline_at = None if timeout is None else self._clock() + timeout
        with self._cond:
            fate = self._admit_locked(request, deadline_at)
        if fate == "stopped":
            raise ServiceStopped("queue is not accepting new requests")
        if fate == "expired":
            raise self.expired_error(request)
        if fate == "rejected":
            raise self.rejected_error(timeout)

    def put_many(
        self,
        requests: list[LabelingRequest],
        timeout: float | None = None,
    ) -> BulkAdmission:
        """Admit many requests under one lock round.

        The bulk counterpart of :meth:`put`: all bookkeeping happens inside
        a single condition acquisition (the ``block`` overflow policy may
        still release it while waiting for space).  Unlike :meth:`put`,
        admission failures never raise mid-stream — each request lands in
        exactly one :class:`BulkAdmission` bucket, so the caller can settle
        per-request futures — except when the queue is already closed,
        which raises :class:`ServiceStopped` before anything is admitted.

        Under ``block`` overflow, ``timeout`` bounds the *total* time spent
        waiting for space across the whole call.
        """
        buckets: dict[str, list[LabelingRequest]] = {
            "admitted": [], "expired": [], "rejected": [], "stopped": [],
        }
        deadline_at = None if timeout is None else self._clock() + timeout
        with self._cond:
            if self._closed or self._draining:
                raise ServiceStopped("queue is not accepting new requests")
            for request in requests:
                buckets[self._admit_locked(request, deadline_at)].append(request)
        return BulkAdmission(
            admitted=tuple(buckets["admitted"]),
            expired=tuple(buckets["expired"]),
            rejected=tuple(buckets["rejected"]),
            stopped=tuple(buckets["stopped"]),
        )

    # -- consumer side -------------------------------------------------------

    def pop_batch(
        self, max_items: int, max_wait: float
    ) -> tuple[list[LabelingRequest], list[LabelingRequest], str | None]:
        """Form one homogeneous micro-batch: ``(batch, expired, reason)``.

        Blocks until at least one request is available.  The first
        admissible request (highest priority, FIFO within a class) anchors
        the batch's :attr:`~LabelingRequest.batch_key`; up to ``max_items``
        same-key requests join from anywhere in the queue, in pop order.
        Different-key requests are left queued for a later pop.  Requests
        whose deadline ran out while queued land in ``expired`` instead of
        the batch.

        ``reason`` is ``"size"`` (batch filled), ``"wait"`` (``max_wait``
        elapsed since the batch started forming), ``"regime_split"``
        (the timer elapsed on an underfull batch while different-key
        requests waited — the batch was bounded by grouping, not by
        traffic), ``"drain"`` (queue draining or closing flushed a partial
        batch), or ``None`` with both lists empty once the queue is closed
        and empty — the consumer's signal to exit.
        """
        if max_items < 1:
            raise ValueError("max_items must be >= 1")
        if max_wait < 0:
            raise ValueError("max_wait must be non-negative")
        _unset = object()
        with self._cond:
            while True:
                while not self._heap and not self._closed:
                    self._cond.wait()
                if not self._heap:
                    return [], [], None
                batch: list[LabelingRequest] = []
                expired: list[LabelingRequest] = []
                key = _unset
                saw_mismatch = False
                scanned_seq = None
                flush_at = self._clock() + max_wait
                while True:
                    # Rescan only when new requests arrived since the last
                    # scan (each rescan still walks past every
                    # different-key entry, so a forming batch costs
                    # O(depth) heap ops per *arrival* — see the ROADMAP
                    # note on per-key buckets — but idle wakes are free).
                    if scanned_seq != self._seq:
                        now = self._clock()
                        mismatched: list[tuple[int, int, LabelingRequest]] = []
                        while self._heap and len(batch) < max_items:
                            entry = heapq.heappop(self._heap)
                            request = entry[2]
                            if not self._admissible(request, now):
                                expired.append(request)
                                continue
                            if key is _unset:
                                key = request.batch_key
                            if request.batch_key == key:
                                batch.append(request)
                            else:
                                mismatched.append(entry)
                        # Different-key requests keep their (priority, seq)
                        # entries, so their ordering survives the round trip.
                        for entry in mismatched:
                            heapq.heappush(self._heap, entry)
                        saw_mismatch = saw_mismatch or bool(mismatched)
                        scanned_seq = self._seq
                        self._cond.notify_all()
                    if len(batch) >= max_items:
                        return batch, expired, "size"
                    if self._closed or self._draining:
                        return batch, expired, "drain"
                    remaining = flush_at - self._clock()
                    if remaining <= 0:
                        reason = (
                            "regime_split" if batch and saw_mismatch else "wait"
                        )
                        return batch, expired, reason
                    self._cond.wait(remaining)

    # -- lifecycle -----------------------------------------------------------

    def start_drain(self) -> None:
        """Refuse new requests and flush forming batches immediately."""
        with self._cond:
            self._draining = True
            self._cond.notify_all()

    def close(self) -> list[LabelingRequest]:
        """Close the queue and return the requests left undispatched.

        Wakes every blocked producer (:class:`ServiceStopped`) and consumer
        (final drain flushes, then the ``None``-reason exit signal).
        """
        with self._cond:
            self._closed = True
            leftovers = [request for _, _, request in sorted(self._heap)]
            self._heap.clear()
            self._cond.notify_all()
            return leftovers
