"""Priority-aware request queue: backpressure and deadline admission.

The queue is the admission layer of the serving tier.  It holds
:class:`LabelingRequest` records between ``submit()`` and dispatch, and
enforces the three policies the dispatch loop should never have to think
about:

* **Priority ordering** — higher ``priority`` pops first; within one
  priority class requests pop in submission order (FIFO).
* **Backpressure** — depth is bounded by ``max_depth``.  When full, the
  ``overflow`` policy either rejects immediately (:class:`QueueFull`) or
  blocks the producer until space frees up (with an optional timeout).
* **Deadline admission** — a request whose remaining deadline cannot cover
  even the cheapest model's execution cost can never produce a label, so
  it is dropped instead of wasting a batch slot: at ``put`` time with
  :class:`DeadlineExpired`, or silently into the expired list at
  ``pop_batch`` time if its budget ran out while queued.

Request deadlines are wall-clock budgets in seconds from submission, the
same currency as the zoo's per-model costs — queue wait spends the same
budget the scheduler spends executing models, mirroring the paper's
deadline-constrained regime end to end.
"""

from __future__ import annotations

import heapq
import math
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.data.datasets import DataItem

#: Slack applied to deadline comparisons so float arithmetic on budgets
#: never drops a request that exactly affords the cheapest model.
_DEADLINE_EPS = 1e-9

#: Overflow policies: reject new requests vs. block the producer.
OVERFLOW_POLICIES = ("block", "reject")


class ServingError(RuntimeError):
    """Base class for serving-layer failures."""


class QueueFull(ServingError):
    """The admission queue is at ``max_depth`` and the request was refused."""


class DeadlineExpired(ServingError):
    """The request's remaining deadline cannot cover any model execution."""


class ServiceStopped(ServingError):
    """The service is no longer accepting or processing requests."""


@dataclass(eq=False)
class LabelingRequest:
    """One client request: an item, its admission terms, and its future."""

    item: DataItem
    #: Higher pops sooner; ties resolve in submission order.
    priority: int = 0
    #: Optional wall-clock budget in seconds, counted from ``submitted_at``.
    deadline: float | None = None
    #: Queue-clock timestamp of submission.
    submitted_at: float = 0.0
    #: Resolves to a :class:`~repro.engine.results.LabelingResult` or an error.
    future: Future = field(default_factory=Future)

    def remaining(self, now: float) -> float:
        """Deadline budget left at time ``now`` (infinite when unconstrained)."""
        if self.deadline is None:
            return math.inf
        return self.deadline - (now - self.submitted_at)


class RequestQueue:
    """Bounded, priority-ordered, deadline-checking request buffer.

    Parameters
    ----------
    max_depth:
        Backpressure bound: most requests buffered at once.
    overflow:
        ``"block"`` makes :meth:`put` wait for space (until ``timeout``);
        ``"reject"`` raises :class:`QueueFull` immediately.
    min_cost:
        The cheapest model's execution cost in seconds — the admission
        bar a request's remaining deadline must clear.
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    def __init__(
        self,
        max_depth: int = 1024,
        overflow: str = "block",
        min_cost: float = 0.0,
        clock=time.monotonic,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {overflow!r}; "
                f"choose from {sorted(OVERFLOW_POLICIES)}"
            )
        if min_cost < 0:
            raise ValueError("min_cost must be non-negative")
        self.max_depth = max_depth
        self.overflow = overflow
        self.min_cost = float(min_cost)
        self._clock = clock
        self._heap: list[tuple[int, int, LabelingRequest]] = []
        self._seq = 0
        self._cond = threading.Condition()
        self._closed = False
        self._draining = False

    # -- state ---------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Requests currently buffered."""
        with self._cond:
            return len(self._heap)

    def __len__(self) -> int:
        return self.depth

    def _admissible(self, request: LabelingRequest, now: float) -> bool:
        return request.remaining(now) >= self.min_cost - _DEADLINE_EPS

    # -- producer side -------------------------------------------------------

    def put(self, request: LabelingRequest, timeout: float | None = None) -> None:
        """Admit one request, enforcing deadline and depth policies.

        Raises :class:`DeadlineExpired` when the request can never afford
        the cheapest model, :class:`QueueFull` when depth policy refuses
        it, and :class:`ServiceStopped` when the queue is closed.
        """
        with self._cond:
            if self._closed or self._draining:
                raise ServiceStopped("queue is not accepting new requests")
            if not self._admissible(request, self._clock()):
                raise DeadlineExpired(
                    f"deadline {request.deadline}s cannot cover the cheapest "
                    f"model cost {self.min_cost}s"
                )
            if len(self._heap) >= self.max_depth:
                if self.overflow == "reject":
                    raise QueueFull(
                        f"queue at max depth {self.max_depth} "
                        f"(overflow policy: reject)"
                    )
                if not self._cond.wait_for(
                    lambda: len(self._heap) < self.max_depth
                    or self._closed
                    or self._draining,
                    timeout,
                ):
                    raise QueueFull(
                        f"queue stayed at max depth {self.max_depth} "
                        f"for {timeout}s (overflow policy: block)"
                    )
                if self._closed or self._draining:
                    raise ServiceStopped("queue closed while waiting for space")
            heapq.heappush(self._heap, (-request.priority, self._seq, request))
            self._seq += 1
            self._cond.notify_all()

    # -- consumer side -------------------------------------------------------

    def pop_batch(
        self, max_items: int, max_wait: float
    ) -> tuple[list[LabelingRequest], list[LabelingRequest], str | None]:
        """Form one micro-batch: ``(batch, expired, reason)``.

        Blocks until at least one request is available, then collects up to
        ``max_items`` of them, waiting at most ``max_wait`` seconds from the
        moment the batch started forming.  Requests whose deadline ran out
        while queued land in ``expired`` instead of the batch.  ``reason``
        is ``"size"`` (batch filled), ``"wait"`` (timer elapsed), ``"drain"``
        (queue draining or closing flushed a partial batch), or ``None``
        with both lists empty once the queue is closed and empty — the
        consumer's signal to exit.
        """
        if max_items < 1:
            raise ValueError("max_items must be >= 1")
        if max_wait < 0:
            raise ValueError("max_wait must be non-negative")
        with self._cond:
            while True:
                while not self._heap and not self._closed:
                    self._cond.wait()
                if not self._heap:
                    return [], [], None
                batch: list[LabelingRequest] = []
                expired: list[LabelingRequest] = []
                flush_at = self._clock() + max_wait
                while True:
                    now = self._clock()
                    while self._heap and len(batch) < max_items:
                        _, _, request = heapq.heappop(self._heap)
                        if self._admissible(request, now):
                            batch.append(request)
                        else:
                            expired.append(request)
                    self._cond.notify_all()
                    if len(batch) >= max_items:
                        return batch, expired, "size"
                    if self._closed or self._draining:
                        return batch, expired, "drain"
                    remaining = flush_at - self._clock()
                    if remaining <= 0:
                        return batch, expired, "wait"
                    self._cond.wait(remaining)

    # -- lifecycle -----------------------------------------------------------

    def start_drain(self) -> None:
        """Refuse new requests and flush forming batches immediately."""
        with self._cond:
            self._draining = True
            self._cond.notify_all()

    def close(self) -> list[LabelingRequest]:
        """Close the queue and return the requests left undispatched.

        Wakes every blocked producer (:class:`ServiceStopped`) and consumer
        (final drain flushes, then the ``None``-reason exit signal).
        """
        with self._cond:
            self._closed = True
            leftovers = [request for _, _, request in sorted(self._heap)]
            self._heap.clear()
            self._cond.notify_all()
            return leftovers
