"""Spec-keyed result cache with single-flight request coalescing.

A labeling result is a pure function of ``(item, scheduling regime)``:
the engine replays recorded model outputs, so submitting the same item
under the same :attr:`~repro.spec.LabelingSpec.batch_key` always yields
the same :class:`~repro.engine.results.LabelingResult`.  That makes
repeat traffic — hot items in a skewed stream, clients retrying, several
clients asking about the same datum — pure waste for the scheduler.

:class:`ResultCache` sits in front of the admission queue and absorbs it:

* **Bounded LRU** — completed results are cached under
  ``(item_id, batch_key)`` up to ``capacity`` entries; the least recently
  *used* entry is evicted (hits refresh recency).
* **Single-flight** — while a key's first request is queued or executing,
  concurrent submits of the same key attach to the *same* future instead
  of re-queueing the work (``"join"``); only the first submitter
  (``"claim"``) pays for scheduling.  Keys are independent: eviction of a
  cached result never disturbs an in-flight claim for the same key, and
  vice versa.
* **Telemetry** — hits, misses, coalesced joins, evictions, and current
  sizes are tracked and exposed via :meth:`stats`, mirrored into the
  service's counters when wired through
  :class:`~repro.serving.service.LabelingService`.

The cache stores *results*, never ground-truth records — the service's
refcounted record/release lifecycle is untouched, so a cache in front of
a shared :class:`~repro.zoo.oracle.GroundTruth` still leaves the truth
cache clean after every batch.
"""

from __future__ import annotations

import logging
import threading
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass

__all__ = ["CacheStats", "ResultCache"]

logger = logging.getLogger("repro.serving.result_cache")


@dataclass(frozen=True)
class CacheStats:
    """One immutable view of a cache's effectiveness."""

    #: Submissions answered from a completed cached result.
    hits: int
    #: Submissions that had to be scheduled (first flight for their key).
    misses: int
    #: Submissions attached to an already in-flight key's future.
    coalesced: int
    #: Completed results dropped by the LRU bound.
    evictions: int
    #: Completed results currently cached.
    size: int
    #: Keys currently claimed but not yet settled.
    inflight: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without scheduling (hits + joins)."""
        total = self.hits + self.misses + self.coalesced
        return (self.hits + self.coalesced) / total if total else 0.0

    def format(self) -> str:
        return (
            f"hits {self.hits}  misses {self.misses}  "
            f"coalesced {self.coalesced}  evictions {self.evictions}  "
            f"size {self.size}  in-flight {self.inflight}  "
            f"hit rate {self.hit_rate:.1%}"
        )


class ResultCache:
    """Bounded LRU of labeling results keyed by ``(item_id, batch_key)``.

    Thread-safe; every operation is one short critical section.  The cache
    never blocks on futures — settlement is push-based via :meth:`settle`.

    Parameters
    ----------
    capacity:
        Most completed results held at once.  In-flight claims are not
        counted against it (they hold no result yet and are bounded by
        the admission queue's depth).
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._results: OrderedDict[tuple, object] = OrderedDict()
        self._inflight: dict[tuple, Future] = {}
        self._hits = 0
        self._misses = 0
        self._coalesced = 0
        self._evictions = 0

    # -- lookup / claim ------------------------------------------------------

    def begin(self, key: tuple, future: Future) -> tuple[str, object]:
        """Route one submission; returns ``(outcome, payload)``.

        * ``("hit", result)`` — a completed result is cached; serve it
          without touching the queue.
        * ``("join", shared_future)`` — the key is in flight; the caller
          must hand back ``shared_future`` instead of queueing.
        * ``("claim", future)`` — first flight: ``future`` (the caller's
          own) is registered as the key's shared future, and the caller
          must schedule the work and later :meth:`settle` the key.

        The decision and registration are atomic, so exactly one of any
        set of concurrent submitters claims a key.
        """
        with self._lock:
            if key in self._results:
                self._hits += 1
                self._results.move_to_end(key)
                return "hit", self._results[key]
            shared = self._inflight.get(key)
            if shared is not None:
                self._coalesced += 1
                return "join", shared
            self._misses += 1
            self._inflight[key] = future
            return "claim", future

    def settle(self, key: tuple, result=None, error=None) -> None:
        """Conclude a claimed key: cache the result, or just release it.

        Called exactly once per claim, when the claimed work concludes
        (the service settles the cache just *before* resolving the shared
        future, so anyone reacting to that future already finds the
        entry).  On success the result enters the LRU (evicting the
        least recently used entry past ``capacity``); on ``error`` the
        claim is simply dropped so a later submission retries — failures
        are never cached.
        """
        with self._lock:
            self._inflight.pop(key, None)
            if error is not None:
                return
            self._results[key] = result
            self._results.move_to_end(key)
            while len(self._results) > self.capacity:
                evicted, _ = self._results.popitem(last=False)
                self._evictions += 1
                logger.debug(
                    "evicted %r (capacity %d, %d evictions total)",
                    evicted,
                    self.capacity,
                    self._evictions,
                )

    def peek(self, key: tuple, default=None):
        """The cached result for ``key``, or ``default`` — no side effects.

        Unlike :meth:`begin` this neither claims the key nor counts a
        hit/miss; it exists for read-only probes such as the gateway's
        restored-job poller, which checks whether a recovered item's
        result has landed without perturbing cache telemetry or recency.
        """
        with self._lock:
            return self._results.get(key, default)

    # -- introspection -------------------------------------------------------

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._results

    def __len__(self) -> int:
        with self._lock:
            return len(self._results)

    @property
    def inflight(self) -> int:
        """Keys currently claimed but not yet settled."""
        with self._lock:
            return len(self._inflight)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                coalesced=self._coalesced,
                evictions=self._evictions,
                size=len(self._results),
                inflight=len(self._inflight),
            )

    def clear(self) -> None:
        """Drop every cached result (in-flight claims are left alone)."""
        with self._lock:
            self._results.clear()
