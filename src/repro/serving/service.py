"""The labeling service: dynamic micro-batching over engine workers.

:class:`LabelingService` is the layer between many independent clients and
one :class:`~repro.engine.engine.LabelingEngine`.  Clients :meth:`submit`
single items and get back futures; a dispatcher thread coalesces queued
requests into micro-batches — flushing when ``batch_size`` is reached or
``max_wait`` has elapsed since the batch started forming, whichever comes
first — and hands each batch to a pool of worker threads that run the
engine's batched scheduling path.  That turns per-item request traffic
into the large stacked-forward batches the engine needs for throughput,
while ``max_wait`` caps how long any request waits for batch-mates.
Because micro-batches are regime-homogeneous and every regime's
scheduler exposes a vectorized ``schedule_batch`` dispatch tick, each
``pop_batch`` → engine admission evaluates candidate Q values for the
whole micro-batch in **one** matrix call per tick — unconstrained,
deadline, and deadline+memory alike (see
:class:`~repro.engine.backends.BatchedBackend`).
Event-loop clients pass ``wait="async"`` to :meth:`~LabelingService.submit`
/ :meth:`~LabelingService.submit_many` — the same futures wrapped with
:func:`asyncio.wrap_future` after non-blocking admission — and
``backend="process"`` moves the CPU-bound scheduling phase into worker
processes (the GIL otherwise caps the whole worker pool near one core)
while admission, caching, and truth refcounting stay in the parent;
``backend=ClusterConfig(...)`` moves it onto socket workers that may
live on other hosts.

Each request carries a :class:`~repro.spec.LabelingSpec` — its scheduling
regime, constraints, and priority.  Requests submitted without one inherit
the service's default spec.  The queue groups dispatch by
:attr:`LabelingSpec.batch_key`, so every micro-batch is *homogeneous*
(one regime, one deadline class, one memory budget) and one service hosts
unconstrained, deadline, and deadline+memory clients concurrently; a
batch whose flush timer expired while other-regime traffic waited is
reported with flush reason ``regime_split``.

Admission (per-key FIFO buckets, weighted-fair key selection,
backpressure, deadline drops) lives in
:class:`~repro.serving.queue.RequestQueue`; observability lives in
:class:`~repro.serving.telemetry.ServiceTelemetry`.  An optional
:class:`~repro.serving.result_cache.ResultCache` sits in front of the
queue: repeat submissions of a ``(item, batch_key)`` already labeled are
answered from the cache without scheduling, and concurrent submissions of
an in-flight key attach to the same future (single-flight) — the first
submitter's admission terms (priority, admission deadline) govern the
shared flight.  A timer thread sweeps the queue every
``expiry_interval`` seconds so requests whose admission deadline lapses
inside a bucket the dispatcher is busy elsewhere on settle promptly
instead of waiting for their bucket's next turn.  Worker threads
share the engine safely: scheduling is pure reads over recorded outputs
and stateless network forwards (see ``repro.engine.backends``).  Each
batch labels against either its own ephemeral ground-truth cache or a
shared one; with a shared cache the service serializes recording and
refcounts in-flight item ids, so concurrent batches never record the same
item twice or evict a record another batch is still scheduling against,
and service-recorded entries are released once their last batch finishes —
a long-lived service runs in bounded memory.

Lifecycle: ``start()`` launches the dispatcher and workers; ``drain()``
stops admission and waits until every admitted request has resolved;
``shutdown()`` additionally stops the threads, failing any still-queued
requests with :class:`ServiceStopped`.  ``with service:`` does
start/drain/shutdown automatically.

Durability: constructed with a
:class:`~repro.durability.journal.Journal` (or a directory path), the
service write-ahead-logs every first-flight admission *before* the
request becomes completable and logs its terminal outcome from
:meth:`_resolve` — so after a crash, ``admitted − terminal`` is exactly
the acknowledged work the process still owes.  :meth:`recover` replays
that gap through the normal submission path: with a result cache the
replay is idempotent (duplicates coalesce onto one flight) and, because
scheduling is deterministic over recorded truth, each re-executed
request produces an identical result trace.  Under the journal's
``batch`` fsync policy the service flushes at micro-batch boundaries;
``always`` makes every acknowledged admission durable before
``submit()`` returns.
"""

from __future__ import annotations

import asyncio
import logging
import threading
import time
import warnings
from collections.abc import Iterable
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path

from repro.data.datasets import DataItem
from repro.durability.journal import Journal
from repro.engine.backends import ExecutionBackend
from repro.engine.config import BackendConfig
from repro.engine.engine import LabelingEngine
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import TraceBuffer
from repro.serving.queue import (
    DeadlineExpired,
    LabelingRequest,
    QueueFull,
    RequestQueue,
    ServiceStopped,
)
from repro.serving.result_cache import ResultCache
from repro.serving.telemetry import ServiceTelemetry, TelemetrySnapshot
from repro.spec import LabelingSpec
from repro.zoo.oracle import GroundTruth

#: Default flush timer: how long a request waits for batch-mates at most.
DEFAULT_MAX_WAIT = 0.02
#: Default number of engine worker threads.
DEFAULT_WORKERS = 2
#: Default admission-queue depth bound.
DEFAULT_MAX_DEPTH = 1024
#: Default queue sweep period for settling expired-while-queued requests.
DEFAULT_EXPIRY_INTERVAL = 0.05

logger = logging.getLogger("repro.serving.service")


def _resolve_wait_mode(wait: str, nowait: bool) -> str:
    """Validate a ``wait=`` mode, folding in the legacy ``nowait`` flag."""
    if wait not in ("block", "nowait", "async"):
        raise ValueError(
            f"wait must be 'block', 'nowait', or 'async', got {wait!r}"
        )
    if nowait and wait == "block":
        return "nowait"
    return wait


def _warn_submit_shim(old: str, new: str) -> None:
    warnings.warn(
        f"LabelingService.{old}() is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass
class RecoveryReport:
    """What one :meth:`LabelingService.recover` pass replayed.

    ``replayed`` counts journal entries that were admitted but had no
    terminal outcome when the journal was last opened; ``recovered`` /
    ``failed`` count the ones whose re-execution has settled; ``pending``
    is what is still in flight (always 0 after a successful blocking
    :meth:`~LabelingService.recover`).
    """

    replayed: int
    recovered: int
    failed: int
    pending: int
    duration: float
    #: The replayed requests' futures, in journal order.
    futures: list[Future] = field(default_factory=list, repr=False)


class _RecoveryRun:
    """Per-``recover()`` accounting: counts conclusions, signals done.

    Terminal records are written from future callbacks on worker
    threads; waiting on this event (instead of the futures) guarantees
    the journal already holds every terminal when the waiter proceeds
    to checkpoint.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._expected: int | None = None
        self._recovered = 0
        self._failed = 0
        self._done = threading.Event()

    def _maybe_finish_locked(self) -> None:
        if (
            self._expected is not None
            and self._recovered + self._failed >= self._expected
        ):
            self._done.set()

    def expect(self, n: int) -> None:
        with self._lock:
            self._expected = n
            self._maybe_finish_locked()

    def conclude(self, ok: bool) -> None:
        with self._lock:
            if ok:
                self._recovered += 1
            else:
                self._failed += 1
            self._maybe_finish_locked()

    def wait(self, timeout: float | None) -> bool:
        return self._done.wait(timeout)

    def counts(self) -> tuple[int, int]:
        with self._lock:
            return self._recovered, self._failed


def _terminal_stage(error: BaseException | None) -> str:
    """The trace terminal stage a settling error (or success) maps to."""
    if error is None:
        return "completed"
    if isinstance(error, DeadlineExpired):
        return "expired"
    if isinstance(error, QueueFull):
        return "rejected"
    if isinstance(error, ServiceStopped):
        return "cancelled"
    return "failed"


class LabelingService:
    """Micro-batching front end over a shared :class:`LabelingEngine`.

    Parameters
    ----------
    engine:
        The engine every worker dispatches batches through.
    backend:
        Optional execution-backend override (registry name, typed
        :class:`~repro.engine.config.BackendConfig`, or instance).
        The service then runs a sibling engine — same zoo, predictor, and
        config — on that backend instead of mutating the caller's engine.
        With ``backend="process"`` the scheduling phase runs in worker
        *processes* (escaping the GIL) — each worker runs the vectorized
        dispatch tick over its chunk and payloads travel through
        shared-memory rings instead of pickle — while the queue, result
        cache, and shared-truth refcounting stay in this parent process.
        With ``backend=ClusterConfig(workers=..., ...)`` scheduling is
        sharded over socket workers that may live on other hosts.  A
        backend the service constructed itself (from a name or config)
        is closed at :meth:`shutdown`.
    batch_size:
        Flush a forming batch as soon as it holds this many requests.
    max_wait:
        Flush a forming batch at most this many seconds after it started
        forming, even if underfull.
    workers:
        Engine worker threads; batches from the dispatcher run here.
        With a process backend these threads only coordinate (submit
        chunks and block on process futures), so matching ``workers`` to
        the backend's ``max_workers`` keeps the processes saturated.
    max_depth / overflow:
        Admission-queue backpressure bound and full-queue policy
        (``"block"`` or ``"reject"``), see :class:`RequestQueue`.
    spec:
        Default :class:`LabelingSpec` for requests submitted without one
        (the paper's per-item regimes).  The legacy
        ``deadline``/``memory_budget``/``max_models`` kwargs build it when
        omitted; passing both raises.  Distinct from per-request
        *admission* deadlines, which bound queue wait and are passed to
        :meth:`submit`.
    truth:
        Optional shared ground-truth cache.  Items already recorded there
        are scheduled against the existing records; records the engine
        adds are released after each batch.  Without it every batch uses
        an ephemeral cache.
    cache / cache_size:
        Optional :class:`ResultCache` in front of the queue (or a
        capacity to build one from); repeat submissions of a cached
        ``(item_id, batch_key)`` skip scheduling entirely and concurrent
        duplicates coalesce onto one in-flight future.  Passing both is
        ambiguous and raises.
    expiry_interval:
        Period in seconds of the queue sweep that settles requests whose
        admission deadline lapsed while queued (``None``/``0`` disables
        the sweep; they then settle when their bucket is next served).
    queue_factory:
        Optional callable building the admission queue; receives the
        keyword arguments :class:`RequestQueue` takes (``max_depth``,
        ``overflow``, ``min_cost``, ``clock``) and returns a
        :class:`RequestQueue` (or subclass).  The gateway passes a
        :class:`~repro.serving.hierarchy.HierarchicalRequestQueue`
        factory here so dispatch is tenant-fair; defaults to the flat
        queue.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry` the service
        binds itself to — one pull-time collector exporting the telemetry
        snapshot, per-regime SLO view, cache stats, and backend chunk
        stats as Prometheus/JSON metric families at scrape time.  The
        request path pays nothing for it.
    tracer:
        Optional :class:`~repro.obs.trace.TraceBuffer`.  When set, every
        submission carries a :class:`~repro.obs.trace.RequestTrace` span
        (``admitted → queued → batched → scheduled → completed/...``,
        with cache-hit/coalesced short-circuits) that retires into the
        buffer's ring, tailable via ``/traces`` and ``repro.cli trace``.
    journal / journal_fsync:
        Optional write-ahead :class:`~repro.durability.journal.Journal`
        (or a directory path to open one in, with ``journal_fsync``
        policy).  Every first-flight admission is journaled before its
        request can settle and its terminal outcome is journaled from
        :meth:`_resolve`; after a crash, :meth:`recover` replays the
        admitted-minus-terminal gap.  A journal the service opened from
        a path is closed at :meth:`shutdown`; a caller-built instance
        stays the caller's to close.
    clock:
        Monotonic time source, injectable for tests.
    """

    def __init__(
        self,
        engine: LabelingEngine,
        *,
        backend: str | BackendConfig | ExecutionBackend | None = None,
        batch_size: int = 32,
        max_wait: float = DEFAULT_MAX_WAIT,
        workers: int = DEFAULT_WORKERS,
        max_depth: int = DEFAULT_MAX_DEPTH,
        overflow: str = "block",
        spec: LabelingSpec | None = None,
        deadline: float | None = None,
        memory_budget: float | None = None,
        max_models: int | None = None,
        truth: GroundTruth | None = None,
        cache: ResultCache | None = None,
        cache_size: int | None = None,
        expiry_interval: float | None = DEFAULT_EXPIRY_INTERVAL,
        queue_factory=None,
        registry: MetricsRegistry | None = None,
        tracer: TraceBuffer | None = None,
        journal: Journal | str | Path | None = None,
        journal_fsync: str = "batch",
        clock=time.monotonic,
        telemetry: ServiceTelemetry | None = None,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if max_wait < 0:
            raise ValueError("max_wait must be non-negative")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if cache is not None and cache_size is not None:
            raise ValueError(
                "pass either a cache instance or cache_size, not both"
            )
        if expiry_interval is not None and expiry_interval < 0:
            raise ValueError("expiry_interval must be non-negative")
        # Close-at-shutdown applies only to backends the service itself
        # constructed (a registry name); a caller-built instance may be
        # shared with other services and stays the caller's to close.
        self._owns_backend = backend is not None and not isinstance(
            backend, ExecutionBackend
        )
        if backend is not None:
            engine = engine.with_backend(backend)
        self.engine = engine
        # Per-worker dispatch: a backend that counts its own workers (the
        # process pool's per-pid counters) owns the ``workers`` telemetry
        # map; otherwise the service counts its worker threads.
        self._backend_counts = hasattr(type(engine.backend), "dispatch_counts")
        self.batch_size = batch_size
        self.max_wait = max_wait
        self.workers = workers
        self.default_spec = LabelingSpec.resolve(
            spec,
            deadline=deadline,
            memory_budget=memory_budget,
            max_models=max_models,
        )
        self.truth = truth
        self.cache = cache if cache is not None else (
            ResultCache(cache_size) if cache_size else None
        )
        self.expiry_interval = expiry_interval
        self._clock = clock
        min_cost = float(engine.zoo.times.min()) if len(engine.zoo) else 0.0
        make_queue = queue_factory or RequestQueue
        self.queue = make_queue(
            max_depth=max_depth, overflow=overflow, min_cost=min_cost, clock=clock
        )
        if not isinstance(self.queue, RequestQueue):
            raise TypeError(
                "queue_factory must build a RequestQueue, got "
                f"{type(self.queue).__name__}"
            )
        self.telemetry = telemetry or ServiceTelemetry(clock=clock)
        self.tracer = tracer
        # Like backends: a journal opened from a path is the service's to
        # close; a caller-built instance may outlive the service.
        self._owns_journal = isinstance(journal, (str, Path))
        if self._owns_journal:
            journal = Journal(journal, fsync=journal_fsync)
        self.journal: Journal | None = journal
        self._recovery_lock = threading.Lock()
        self._recovery = {
            "runs": 0,
            "replayed": 0,
            "recovered": 0,
            "failed": 0,
            "last_replayed": 0,
            "last_duration": 0.0,
        }
        self.registry = registry
        if registry is not None:
            # Imported here, not at module top, purely for layering taste:
            # the bridge is the one obs module that exists *for* the
            # service, and binding is a one-time setup step.
            from repro.obs.bridge import bind_service

            bind_service(registry, self)
        self._state = threading.Condition()
        self._accepting = True
        self._started = False
        self._stopped = False
        #: Requests admitted but not yet resolved (completed/failed/expired).
        self._pending = 0
        #: Requests currently inside worker batches.
        self._in_flight = 0
        self._dispatcher: threading.Thread | None = None
        self._reaper: threading.Thread | None = None
        self._reaper_stop = threading.Event()
        self._pool: ThreadPoolExecutor | None = None
        # Shared-truth bookkeeping: recording is serialized, and records
        # stay alive while any in-flight batch references them.
        self._truth_lock = threading.Lock()
        #: item_id -> number of in-flight batches containing it.
        self._live: dict[str, int] = {}
        #: Ids the service recorded itself (callers' records are never evicted).
        self._service_owned: set[str] = set()

    # -- client API ----------------------------------------------------------

    def _request_spec(
        self, spec: LabelingSpec | None, priority: int | None
    ) -> LabelingSpec:
        """The spec one submission labels under.

        An explicit ``spec`` wins (and makes the ``priority`` kwarg an
        error — priorities live on the spec); otherwise the service
        default applies, with ``priority`` layered on top.
        """
        if spec is None:
            base = self.default_spec
            return base if priority is None else base.with_(priority=priority)
        if not isinstance(spec, LabelingSpec):
            raise TypeError(
                f"spec must be a LabelingSpec, got {type(spec).__name__}"
            )
        if priority is not None:
            raise ValueError(
                "pass priority either on the spec or as the priority kwarg, "
                "not both"
            )
        return spec

    def submit(
        self,
        item: DataItem,
        spec: LabelingSpec | None = None,
        *,
        priority: int | None = None,
        deadline: float | None = None,
        timeout: float | None = None,
        wait: str = "block",
        nowait: bool = False,
    ) -> Future | asyncio.Future:
        """Enqueue one item; returns a future resolving to its result.

        ``spec`` sets this request's scheduling constraints and priority
        (defaulting to the service's spec); only requests whose specs share
        a batch key are batched together.  ``deadline`` is this request's
        *admission* budget: wall-clock seconds from submission after which
        it can no longer afford the cheapest model and is dropped
        (:class:`DeadlineExpired` here at admission, or set on the future
        if the budget runs out while queued) — distinct from the spec's
        scheduling deadline.

        ``wait`` picks the admission mode:

        * ``"block"`` (default) — a full queue raises :class:`QueueFull`
          under the ``reject`` policy, or blocks up to ``timeout`` under
          ``block``; returns a :class:`concurrent.futures.Future`.
        * ``"nowait"`` — a full queue raises :class:`QueueFull`
          immediately regardless of overflow policy (the calling thread
          never blocks on backpressure).
        * ``"async"`` — non-blocking admission like ``"nowait"``, but
          returns an :class:`asyncio.Future` resolving on the calling
          event loop: the submission path a network front end uses
          (e.g. the gateway's 429 + ``Retry-After`` shed logic).  Must
          be called with a running event loop.

        ``nowait=True`` is the legacy spelling of ``wait="nowait"``.

        With a result cache, a submission whose ``(item_id, batch_key)``
        is already cached resolves immediately without queueing, and one
        that duplicates an in-flight key returns that flight's shared
        future — the first submitter's admission terms apply to everyone
        attached.
        """
        mode = _resolve_wait_mode(wait, nowait)
        future = self._submit(
            item,
            spec,
            priority=priority,
            deadline=deadline,
            timeout=timeout,
            nowait=mode != "block",
        )
        if mode == "async":
            return asyncio.wrap_future(future)
        return future

    def _submit(
        self,
        item: DataItem,
        spec: LabelingSpec | None = None,
        *,
        priority: int | None = None,
        deadline: float | None = None,
        timeout: float | None = None,
        nowait: bool = False,
        _journal: bool = True,
    ) -> Future:
        """Synchronous admission core shared by every :meth:`submit` mode.

        ``_journal=False`` is the recovery path: the replayed request's
        original admission record is already in the journal, and its
        terminal is written by the recovery callback against that old
        seq — re-journaling would double-count the work.
        """
        resolved = self._request_spec(spec, priority)
        request = LabelingRequest(
            item=item,
            priority=resolved.priority,
            deadline=deadline,
            submitted_at=self._clock(),
            spec=resolved,
        )
        if self.tracer is not None:
            request.trace = self.tracer.start(item.item_id, resolved.regime)
            request.trace.add("admitted")
        if self.cache is not None:
            with self._state:
                if not self._accepting:
                    raise ServiceStopped("service is not accepting new requests")
            request.cache_key = resolved.cache_key(item.item_id)
            outcome, payload = self.cache.begin(request.cache_key, request.future)
            if outcome == "hit":
                self.telemetry.count("cache_hit")
                self._finish_trace(request, "cache_hit")
                done: Future = Future()
                done.set_result(payload)
                return done
            if outcome == "join":
                self.telemetry.count("coalesced")
                self._finish_trace(request, "coalesced")
                return payload
            self.telemetry.count("cache_miss")
        with self._state:
            if not self._accepting:
                error = ServiceStopped("service is not accepting new requests")
                # A claim raced with drain: release it so attached
                # duplicates fail instead of hanging.
                self._abort_claim(request, error)
                raise error
            # Count the request pending *before* it becomes poppable, so a
            # concurrent drain never observes a dispatched-but-uncounted
            # request (or a transiently negative pending count).
            self._pending += 1
        try:
            # WAL discipline: the admission record lands before the
            # request becomes poppable (and thus completable).  A crash
            # after this point is recoverable; a put failure below writes
            # the matching terminal so the record does not replay.
            if self.journal is not None and _journal:
                request.journal_seq = self.journal.log_admission(
                    item, resolved, deadline
                )
            self.queue.put(request, timeout=timeout, nowait=nowait)
        except BaseException as exc:
            with self._state:
                self._pending -= 1
                self._state.notify_all()
            if request.journal_seq is not None:
                self._journal_terminal(request.journal_seq, _terminal_stage(exc))
            if isinstance(exc, DeadlineExpired):
                self.telemetry.count("expired")
            elif isinstance(exc, QueueFull):
                self.telemetry.count("rejected")
            elif isinstance(exc, ServiceStopped):
                # same accounting as a bulk request stopped mid-admission
                self.telemetry.count("cancelled")
            self._finish_trace(request, _terminal_stage(exc))
            self._abort_claim(request, exc)
            raise
        self.telemetry.count("submitted")
        if request.trace is not None:
            request.trace.add("queued")
        return request.future

    def submit_many(
        self,
        items: Iterable[DataItem],
        spec: LabelingSpec | None = None,
        *,
        priority: int | None = None,
        deadline: float | None = None,
        timeout: float | None = None,
        wait: str = "block",
        nowait: bool = False,
    ) -> list[Future] | list[asyncio.Future]:
        """Bulk-submit items under one shared spec; one future per item.

        Unlike a loop of :meth:`submit` calls, admission bookkeeping is
        batched — one state-lock round and one queue-lock round for the
        whole call — and a single ``submitted_many`` telemetry event
        records the call (``submitted`` still counts admitted items).
        Per-item admission failures (an expired admission ``deadline``, a
        full queue) are set on the corresponding futures instead of
        raising, so the input-ordered future list is always complete.

        ``wait`` picks the admission mode exactly as in :meth:`submit`:
        ``"block"`` (default) may park on a full queue up to ``timeout``;
        ``"nowait"`` turns queue-full waits into immediate per-item
        rejections (the corresponding futures fail with
        :class:`QueueFull`); ``"async"`` is non-blocking admission
        returning input-ordered :class:`asyncio.Future` awaitables, so
        ``asyncio.gather(..., return_exceptions=True)`` sees the complete
        picture.  ``nowait=True`` is the legacy spelling of
        ``wait="nowait"``.

        With a result cache, cached items resolve immediately, duplicates
        of in-flight keys (including duplicates *within* this call) share
        one future, and only first-flight items are enqueued.
        """
        mode = _resolve_wait_mode(wait, nowait)
        futures = self._submit_many(
            items,
            spec,
            priority=priority,
            deadline=deadline,
            timeout=timeout,
            nowait=mode != "block",
        )
        if mode == "async":
            return [asyncio.wrap_future(future) for future in futures]
        return futures

    def _submit_many(
        self,
        items: Iterable[DataItem],
        spec: LabelingSpec | None = None,
        *,
        priority: int | None = None,
        deadline: float | None = None,
        timeout: float | None = None,
        nowait: bool = False,
    ) -> list[Future]:
        """Synchronous bulk-admission core shared by every ``wait`` mode."""
        items = list(items)
        resolved = self._request_spec(spec, priority)
        if not items:
            return []
        with self._state:
            if not self._accepting:
                raise ServiceStopped("service is not accepting new requests")
        now = self._clock()
        futures: list[Future] = []
        requests: list[LabelingRequest] = []
        hits = joins = 0
        for item in items:
            request = LabelingRequest(
                item=item,
                priority=resolved.priority,
                deadline=deadline,
                submitted_at=now,
                spec=resolved,
            )
            if self.tracer is not None:
                request.trace = self.tracer.start(item.item_id, resolved.regime)
                request.trace.add("admitted")
            if self.cache is not None:
                request.cache_key = resolved.cache_key(item.item_id)
                outcome, payload = self.cache.begin(
                    request.cache_key, request.future
                )
                if outcome == "hit":
                    hits += 1
                    self._finish_trace(request, "cache_hit")
                    done: Future = Future()
                    done.set_result(payload)
                    futures.append(done)
                    continue
                if outcome == "join":
                    joins += 1
                    self._finish_trace(request, "coalesced")
                    futures.append(payload)
                    continue
            requests.append(request)
            futures.append(request.future)
        if hits:
            self.telemetry.count("cache_hit", hits)
        if joins:
            self.telemetry.count("coalesced", joins)
        if self.cache is not None and requests:
            self.telemetry.count("cache_miss", len(requests))
        if not requests:
            self.telemetry.count("submitted_many")
            return futures
        with self._state:
            if not self._accepting:
                error = ServiceStopped("service is not accepting new requests")
                for request in requests:
                    self._abort_claim(request, error)
                raise error
            self._pending += len(requests)
        try:
            if self.journal is not None:
                for request in requests:
                    request.journal_seq = self.journal.log_admission(
                        request.item, resolved, deadline
                    )
            outcome = self.queue.put_many(requests, timeout=timeout, nowait=nowait)
        except BaseException as exc:
            with self._state:
                self._pending -= len(requests)
                self._state.notify_all()
            stage = _terminal_stage(exc)
            for request in requests:
                if request.journal_seq is not None:
                    self._journal_terminal(request.journal_seq, stage)
                self._finish_trace(request, stage)
                self._abort_claim(request, exc)
            raise
        self.telemetry.count("submitted", len(outcome.admitted))
        self.telemetry.count("submitted_many")
        if self.tracer is not None:
            for request in outcome.admitted:
                request.trace.add("queued")
        for request in outcome.expired:
            self.telemetry.count("expired")
            self._resolve(request, error=self.queue.expired_error(request))
        for request in outcome.rejected:
            self.telemetry.count("rejected")
            self._resolve(
                request, error=self.queue.rejected_error(timeout, nowait=nowait)
            )
        for request in outcome.stopped:
            self.telemetry.count("cancelled")
            self._resolve(
                request, error=ServiceStopped("service stopped during admission")
            )
        return futures

    # -- deprecated submit_* shims -------------------------------------------
    #
    # The six-way submit family collapsed into submit()/submit_many()
    # taking a ``wait=`` mode.  These shims pin the exact pre-unification
    # behavior (note submit_async/submit_many_async admit *blocking*,
    # which ``wait="async"`` deliberately does not).

    def submit_async(
        self,
        item: DataItem,
        spec: LabelingSpec | None = None,
        *,
        priority: int | None = None,
        deadline: float | None = None,
        timeout: float | None = None,
    ) -> asyncio.Future:
        """Deprecated: blocking admission + awaitable result.

        Use ``submit(..., wait="async")`` for the non-blocking admission
        a network front end needs, or wrap ``submit(...)`` yourself to
        keep blocking admission with an awaitable.
        """
        _warn_submit_shim("submit_async", 'submit(..., wait="async")')
        return asyncio.wrap_future(
            self._submit(
                item, spec, priority=priority, deadline=deadline, timeout=timeout
            )
        )

    def submit_nowait_async(
        self,
        item: DataItem,
        spec: LabelingSpec | None = None,
        *,
        priority: int | None = None,
        deadline: float | None = None,
    ) -> asyncio.Future:
        """Deprecated alias of ``submit(..., wait="async")``."""
        _warn_submit_shim("submit_nowait_async", 'submit(..., wait="async")')
        return asyncio.wrap_future(
            self._submit(
                item, spec, priority=priority, deadline=deadline, nowait=True
            )
        )

    def submit_many_nowait_async(
        self,
        items: Iterable[DataItem],
        spec: LabelingSpec | None = None,
        *,
        priority: int | None = None,
        deadline: float | None = None,
    ) -> list[asyncio.Future]:
        """Deprecated alias of ``submit_many(..., wait="async")``."""
        _warn_submit_shim(
            "submit_many_nowait_async", 'submit_many(..., wait="async")'
        )
        return [
            asyncio.wrap_future(future)
            for future in self._submit_many(
                items, spec, priority=priority, deadline=deadline, nowait=True
            )
        ]

    def submit_many_async(
        self,
        items: Iterable[DataItem],
        spec: LabelingSpec | None = None,
        *,
        priority: int | None = None,
        deadline: float | None = None,
        timeout: float | None = None,
    ) -> list[asyncio.Future]:
        """Deprecated: blocking bulk admission + awaitable results.

        Use ``submit_many(..., wait="async")`` (non-blocking admission),
        or wrap ``submit_many(...)`` yourself to keep blocking admission.
        """
        _warn_submit_shim("submit_many_async", 'submit_many(..., wait="async")')
        return [
            asyncio.wrap_future(future)
            for future in self._submit_many(
                items, spec, priority=priority, deadline=deadline, timeout=timeout
            )
        ]

    def snapshot(self) -> TelemetrySnapshot:
        """Telemetry snapshot including live queue depth and in-flight count.

        The ``workers`` map shows items per scheduling worker: per worker
        *process* (``pid<n>``) when the backend is a process pool, per
        worker address (``host:port``) under the cluster backend, per
        service worker thread otherwise.
        """
        with self._state:
            in_flight = self._in_flight
        extra = None
        if self._backend_counts:
            extra = {
                worker if isinstance(worker, str) else f"pid{worker}": count
                for worker, count in self.engine.backend.dispatch_counts.items()
            }
        return self.telemetry.snapshot(
            queue_depth=self.queue.depth, in_flight=in_flight, extra_workers=extra
        )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "LabelingService":
        """Launch the dispatcher and the worker pool (idempotent)."""
        with self._state:
            if self._stopped:
                raise ServiceStopped("cannot start a shut-down service")
            if self._started:
                return self
            self._started = True
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="labeling-worker"
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="labeling-dispatcher", daemon=True
        )
        self._dispatcher.start()
        if self.expiry_interval:
            self._reaper = threading.Thread(
                target=self._expiry_loop, name="labeling-expiry", daemon=True
            )
            self._reaper.start()
        logger.info(
            "service started: %d worker(s), batch_size=%d, max_wait=%.3fs, "
            "backend=%s",
            self.workers,
            self.batch_size,
            self.max_wait,
            type(self.engine.backend).__name__,
        )
        return self

    def recover(
        self, *, wait: bool = True, timeout: float | None = None
    ) -> RecoveryReport:
        """Replay journaled admissions that never reached a terminal.

        Starts the service if needed, then resubmits every pending
        journal entry through the normal admission path — *without*
        re-journaling it — and writes each entry's terminal outcome
        (against its **original** seq) when its replayed future settles.
        Replayed requests carry no admission deadline: the original
        client was already told "admitted", so acknowledged work is
        completed rather than re-expired.

        With a result cache the replay is idempotent: duplicate
        ``(item, batch_key)`` entries coalesce onto a single flight, and
        every duplicate's original seq still gets its terminal from the
        shared future.  Because scheduling is deterministic over recorded
        truth, a replayed request re-executes to an identical trace.

        With ``wait=True`` (default) the call blocks until every replay
        has settled *and* its terminal is journaled (or ``timeout``
        elapses), then flushes — and, when nothing is left pending,
        checkpoints so the replayed segments compact away.
        """
        if self.journal is None:
            raise ValueError("recover() requires a service journal")
        entries = self.journal.pending_entries()
        started = self._clock()
        self.start()
        run = _RecoveryRun()
        futures: list[Future] = []
        for entry in entries:
            span = None
            if self.tracer is not None:
                span = self.tracer.start(entry.item.item_id, "recovery")
            try:
                future = self._submit(entry.item, entry.spec, _journal=False)
            except BaseException as exc:
                stage = _terminal_stage(exc)
                self._journal_terminal(entry.seq, stage)
                if span is not None:
                    self.tracer.finish(span, stage)
                with self._recovery_lock:
                    self._recovery["failed"] += 1
                run.conclude(False)
                continue
            future.add_done_callback(
                partial(self._conclude_recovery, entry.seq, span, run)
            )
            futures.append(future)
        run.expect(len(entries))
        if wait:
            run.wait(timeout)
            self._journal_flush()
            recovered, failed = run.counts()
            if entries and recovered + failed == len(entries):
                try:
                    self.journal.checkpoint()
                except Exception:
                    logger.exception("post-recovery checkpoint failed")
        recovered, failed = run.counts()
        duration = self._clock() - started
        with self._recovery_lock:
            self._recovery["runs"] += 1
            self._recovery["replayed"] += len(entries)
            self._recovery["last_replayed"] = len(entries)
            self._recovery["last_duration"] = duration
        if entries:
            logger.info(
                "recovery replayed %d journal entr%s: %d recovered, %d "
                "failed, %d still in flight (%.3fs)",
                len(entries),
                "y" if len(entries) == 1 else "ies",
                recovered,
                failed,
                len(entries) - recovered - failed,
                duration,
            )
        return RecoveryReport(
            replayed=len(entries),
            recovered=recovered,
            failed=failed,
            pending=len(entries) - recovered - failed,
            duration=duration,
            futures=futures,
        )

    def _conclude_recovery(
        self, seq: int, span, run: _RecoveryRun, future: Future
    ) -> None:
        """Settle one replayed entry: terminal for the *original* seq."""
        try:
            error = future.exception()
        except BaseException as exc:
            error = exc
        stage = _terminal_stage(error)
        self._journal_terminal(seq, stage)
        if span is not None:
            self.tracer.finish(span, stage)
        with self._recovery_lock:
            self._recovery["recovered" if error is None else "failed"] += 1
        run.conclude(error is None)

    def recovery_stats(self) -> dict:
        """Cumulative recovery counters (exported as ``repro_recovery_*``)."""
        with self._recovery_lock:
            return dict(self._recovery)

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admission and wait until every admitted request resolves.

        Forming batches flush immediately instead of waiting out
        ``max_wait``.  Returns ``True`` once nothing is pending (always
        immediate on a never-started service with an empty queue);
        ``False`` if ``timeout`` elapsed first.
        """
        logger.info("draining: admission stopped, %d request(s) pending", self._pending)
        with self._state:
            self._accepting = False
        self.queue.start_drain()
        with self._state:
            if not self._started:
                return self._pending == 0
            drained = self._state.wait_for(lambda: self._pending == 0, timeout)
        if not drained:
            logger.warning(
                "drain timed out after %.3fs with %d request(s) still pending",
                timeout,
                self._pending,
            )
        self._journal_flush()
        return drained

    def shutdown(self, wait: bool = True) -> None:
        """Stop the service; still-queued requests fail with ServiceStopped.

        With ``wait=True`` (default) in-flight batches finish and resolve
        their futures first.  After shutdown no future is left pending:
        every admitted request has a result or an exception.
        """
        with self._state:
            if self._stopped:
                return
            self._accepting = False
            self._stopped = True
        leftovers = self.queue.close()
        self._reaper_stop.set()
        if self._dispatcher is not None:
            self._dispatcher.join()
        if self._reaper is not None:
            self._reaper.join()
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
        if self._owns_backend:
            self.engine.backend.close()
        # Leftovers were journaled at admission; their ServiceStopped
        # terminals (written by _resolve above) record that the *client*
        # observed the failure — recover() replays only crash-lost work.
        for request in leftovers:
            self.telemetry.count("cancelled")
            self._resolve(request, error=ServiceStopped("service shut down"))
        self._journal_flush()
        if self.journal is not None and self._owns_journal:
            try:
                self.journal.close()
            except Exception:
                logger.exception("journal close failed")
        logger.info(
            "service shut down (%d queued request(s) cancelled)", len(leftovers)
        )

    def __enter__(self) -> "LabelingService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.drain()
        self.shutdown()

    # -- dispatch ------------------------------------------------------------

    def _journal_terminal(self, seq: int, stage: str) -> None:
        """Journal one terminal outcome; a failing disk never kills serving."""
        try:
            self.journal.log_terminal(seq, stage)
        except Exception:
            logger.exception("failed to journal terminal for seq %d", seq)

    def _journal_flush(self) -> None:
        """Flush the journal (batch-policy fsync point); log-don't-raise."""
        if self.journal is None:
            return
        try:
            self.journal.flush()
        except Exception:
            logger.exception("journal flush failed")

    def _abort_claim(self, request: LabelingRequest, error: BaseException) -> None:
        """Fail a claimed cache key whose request never reached the queue.

        Releases the single-flight claim (so the next submission retries)
        and settles the shared future for any duplicates already attached
        to it.  No-op for cacheless requests.
        """
        if self.cache is None or request.cache_key is None:
            return
        self.cache.settle(request.cache_key, error=error)
        if not request.future.done():
            request.future.set_exception(error)

    def _finish_trace(self, request: LabelingRequest, stage: str, **detail) -> None:
        """Retire a request's trace span (no-op without tracing)."""
        if self.tracer is not None and request.trace is not None:
            self.tracer.finish(request.trace, stage, **detail)

    def _resolve(self, request: LabelingRequest, result=None, error=None) -> None:
        """Settle one request's future, its cache claim, and accounting.

        Every settled request also lands in its regime's SLO accumulators
        (completions with their end-to-end latency) and retires its trace
        span — this is the single point all fates flow through.
        """
        # Cache before future: a client that reacts to its resolved
        # future by immediately re-submitting (or probing cachedness —
        # the gateway's ``cached`` flag) must observe the settled entry.
        if self.cache is not None and request.cache_key is not None:
            self.cache.settle(request.cache_key, result=result, error=error)
        if error is not None:
            request.future.set_exception(error)
        else:
            request.future.set_result(result)
        stage = _terminal_stage(error)
        if self.journal is not None and request.journal_seq is not None:
            self._journal_terminal(request.journal_seq, stage)
        self._finish_trace(request, stage)
        spec = request.spec or self.default_spec
        if stage == "completed":
            self.telemetry.observe_outcome(
                spec.regime,
                "completed",
                self._clock() - request.submitted_at,
                tenant=spec.tenant,
            )
        elif stage in ("expired", "failed"):
            self.telemetry.observe_outcome(spec.regime, stage, tenant=spec.tenant)
        with self._state:
            self._pending -= 1
            self._state.notify_all()

    def _expire_overdue(self) -> int:
        """One queue sweep: settle every request past its admission deadline.

        Runs on the reaper's timer so a doomed request in a bucket the
        dispatcher is not currently serving fails promptly instead of
        waiting for that bucket's next turn.  Returns how many settled.
        """
        removed = self.queue.expire_overdue()
        now = self._clock()
        for request in removed:
            self.telemetry.count("expired")
            self._resolve(
                request,
                error=DeadlineExpired(
                    f"deadline {request.deadline}s expired after "
                    f"{now - request.submitted_at:.3f}s in queue"
                ),
            )
        return len(removed)

    def _expiry_loop(self) -> None:
        while not self._reaper_stop.wait(self.expiry_interval):
            self._expire_overdue()

    def _dispatch_loop(self) -> None:
        while True:
            batch, expired, reason = self.queue.pop_batch(
                self.batch_size, self.max_wait
            )
            now = self._clock()
            for request in expired:
                self.telemetry.count("expired")
                self._resolve(
                    request,
                    error=DeadlineExpired(
                        f"deadline {request.deadline}s expired after "
                        f"{now - request.submitted_at:.3f}s in queue"
                    ),
                )
            if reason is None:
                return
            if not batch:
                continue
            for request in batch:
                self.telemetry.observe_queue_wait(
                    now - request.submitted_at, tenant=request.tenant
                )
            # The queue guarantees batch homogeneity, so the first
            # request's spec speaks for the whole batch.
            spec = batch[0].spec
            self.telemetry.observe_flush(
                len(batch), reason, regime=spec.regime if spec else None
            )
            if self.tracer is not None:
                size = len(batch)
                for request in batch:
                    if request.trace is not None:
                        request.trace.add("batched", reason=reason, size=size)
            with self._state:
                self._in_flight += len(batch)
            self._pool.submit(self._process_batch, batch)

    def _label_batch(self, items: list[DataItem], spec: LabelingSpec):
        """One engine dispatch; isolated so tests can observe batch makeup."""
        if self.truth is None:
            return self.engine.label_batch(items, spec)
        # Shared cache: record under the lock (GroundTruth is a plain dict
        # with no synchronization of its own) and pin this batch's records
        # so a concurrent batch's release cannot evict them mid-schedule.
        with self._truth_lock:
            for item in items:
                if item.item_id not in self.truth:
                    self._service_owned.add(item.item_id)
            self.truth.record_batch(items)
            for item in items:
                self._live[item.item_id] = self._live.get(item.item_id, 0) + 1
        try:
            return self.engine.label_batch(items, spec, truth=self.truth)
        finally:
            with self._truth_lock:
                for item in items:
                    self._live[item.item_id] -= 1
                    if self._live[item.item_id] == 0:
                        del self._live[item.item_id]
                        if item.item_id in self._service_owned:
                            self._service_owned.discard(item.item_id)
                            self.truth.release(item.item_id)

    def _process_batch(self, batch: list[LabelingRequest]) -> None:
        started = self._clock()
        spec = batch[0].spec or self.default_spec
        worker = threading.current_thread().name
        if not self._backend_counts:
            self.telemetry.observe_dispatch(worker, len(batch))
        if self.tracer is not None:
            for request in batch:
                if request.trace is not None:
                    request.trace.add("scheduled", worker=worker)
        try:
            results = self._label_batch([request.item for request in batch], spec)
        except BaseException as exc:  # propagate to every caller, keep serving
            self.telemetry.count("failed", len(batch))
            for request in batch:
                self._resolve(request, error=exc)
        else:
            elapsed = self._clock() - started
            self.telemetry.count("completed", len(batch))
            for request, result in zip(batch, results):
                self.telemetry.observe_service_time(elapsed)
                self._resolve(request, result=result)
        finally:
            # Micro-batch boundary = the ``batch`` fsync cadence: every
            # terminal this batch settled becomes durable in one fsync.
            self._journal_flush()
            with self._state:
                self._in_flight -= len(batch)
                self._state.notify_all()
