"""Service telemetry: counters, latency histograms, and point-in-time snapshots.

The serving tier is judged by numbers — how long requests queued, how fast
batches ran, how many requests were turned away — so the service records
everything into one :class:`ServiceTelemetry` and exposes an immutable
:meth:`~ServiceTelemetry.snapshot` that tests assert on and the ``serve``
CLI / benchmarks print.

Latency populations are summarized by :class:`LatencyStats` (p50/p95/p99,
mean, max) over a bounded :class:`LatencyHistogram` reservoir, so an
unbounded stream of observations runs in bounded memory while the
percentiles stay representative.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

import numpy as np

#: Counter names every snapshot carries (all start at zero).
#: ``submitted_many`` counts bulk-admission *calls* (one per
#: ``submit_many``), while ``submitted`` keeps counting individual items.
#: The ``cache_*``/``coalesced`` counters only move on a service built
#: with a result cache: ``cache_hit`` submissions were answered from a
#: completed cached result, ``coalesced`` ones attached to an in-flight
#: duplicate, and ``cache_miss`` ones paid for scheduling.
COUNTERS = (
    "submitted",
    "submitted_many",
    "completed",
    "rejected",
    "expired",
    "failed",
    "cancelled",
    "cache_hit",
    "cache_miss",
    "coalesced",
)

#: Flush triggers the dispatch loop distinguishes.  ``regime_split`` marks
#: an underfull batch whose timer expired while different-regime requests
#: waited — bounded by grouping, not by traffic (see
#: ``RequestQueue.pop_batch``).
FLUSH_REASONS = ("size", "wait", "drain", "regime_split")

#: Request fates the per-regime SLO accumulators distinguish.
SLO_OUTCOMES = ("completed", "expired", "failed")

# Frozen lookup sets so validation is one hash probe before the lock.
_COUNTER_SET = frozenset(COUNTERS)
_FLUSH_SET = frozenset(FLUSH_REASONS)
_OUTCOME_SET = frozenset(SLO_OUTCOMES)


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics over one latency population (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @staticmethod
    def from_samples(samples, count: int | None = None) -> "LatencyStats":
        """Summarize ``samples``; ``count`` overrides the population size
        when the samples are a reservoir of a larger stream."""
        arr = np.asarray(list(samples), dtype=np.float64)
        if arr.size == 0:
            return LatencyStats(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
        return LatencyStats(
            count=int(arr.size) if count is None else int(count),
            mean=float(arr.mean()),
            p50=float(p50),
            p95=float(p95),
            p99=float(p99),
            max=float(arr.max()),
        )

    def format(self) -> str:
        if self.count == 0:
            return "no samples"
        return (
            f"p50 {self.p50 * 1000:7.2f}ms  p95 {self.p95 * 1000:7.2f}ms  "
            f"p99 {self.p99 * 1000:7.2f}ms  max {self.max * 1000:7.2f}ms  "
            f"(n={self.count})"
        )


class LatencyHistogram:
    """Bounded reservoir of latency samples with percentile summaries.

    Classic reservoir sampling: the first ``capacity`` observations are kept
    verbatim; afterwards each new observation replaces a uniformly random
    slot with probability ``capacity / count``.  ``count`` always reflects
    the full population.  The RNG is seeded so summaries are reproducible
    for a fixed observation sequence.
    """

    def __init__(self, capacity: int = 100_000, seed: int = 0):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.count = 0
        self._samples: list[float] = []
        self._rng = random.Random(seed)

    def observe(self, value: float) -> None:
        self.count += 1
        if len(self._samples) < self.capacity:
            self._samples.append(float(value))
            return
        slot = self._rng.randrange(self.count)
        if slot < self.capacity:
            self._samples[slot] = float(value)

    def stats(self) -> LatencyStats:
        return LatencyStats.from_samples(self._samples, count=self.count)


@dataclass(frozen=True)
class RegimeSLO:
    """One regime's service-level view: outcomes and end-to-end latency.

    ``deadline_miss_rate`` is the fraction of definitively-fated
    deadline-carrying traffic that expired instead of completing;
    ``time_to_first_result`` is the end-to-end latency of the regime's
    first completion — the cold-start number an operator watches after a
    deploy or a recovery.
    """

    #: Requests that resolved with a result.
    completed: int = 0
    #: Requests dropped because their admission deadline lapsed.
    expired: int = 0
    #: Requests that resolved with a serving error.
    failed: int = 0
    #: End-to-end submit→completion latency of the first completion
    #: (``None`` until the regime completes something).
    time_to_first_result: float | None = None
    #: Submit→completion latency distribution.
    e2e: LatencyStats = LatencyStats(0, 0.0, 0.0, 0.0, 0.0, 0.0)

    @property
    def deadline_miss_rate(self) -> float:
        """``expired / (completed + expired)`` (0.0 with no traffic)."""
        settled = self.completed + self.expired
        return self.expired / settled if settled else 0.0

    def format(self) -> str:
        ttfr = (
            f"{self.time_to_first_result * 1000:.1f}ms"
            if self.time_to_first_result is not None
            else "-"
        )
        return (
            f"completed {self.completed}  expired {self.expired}  "
            f"failed {self.failed}  miss rate {self.deadline_miss_rate:.1%}  "
            f"ttfr {ttfr}  e2e {self.e2e.format()}"
        )


class _RegimeSLOAccumulator:
    """Mutable per-regime counters behind :class:`RegimeSLO` snapshots."""

    __slots__ = ("completed", "expired", "failed", "first_result_s", "e2e")

    def __init__(self, histogram_capacity: int):
        self.completed = 0
        self.expired = 0
        self.failed = 0
        self.first_result_s: float | None = None
        self.e2e = LatencyHistogram(histogram_capacity, seed=3)

    def snapshot(self) -> RegimeSLO:
        return RegimeSLO(
            completed=self.completed,
            expired=self.expired,
            failed=self.failed,
            time_to_first_result=self.first_result_s,
            e2e=self.e2e.stats(),
        )


@dataclass(frozen=True)
class TelemetrySnapshot:
    """One immutable view of the service's health, safe to hold and compare."""

    #: Wall-clock seconds since telemetry started (or was last reset).
    elapsed: float
    #: Request counters: submitted/completed/rejected/expired/failed/cancelled.
    counters: dict[str, int] = field(
        default_factory=lambda: {name: 0 for name in COUNTERS}
    )
    #: Batches dispatched, by flush trigger: size/wait/drain/regime_split.
    flushes: dict[str, int] = field(
        default_factory=lambda: {reason: 0 for reason in FLUSH_REASONS}
    )
    #: Total items dispatched across all batches.
    batched_items: int = 0
    #: Items dispatched per scheduling regime (qgreedy/deadline/…); only
    #: regimes that saw traffic appear.
    regimes: dict[str, int] = field(default_factory=dict)
    #: Items dispatched per worker (thread name, or ``pid<n>`` for the
    #: process backend's scheduling workers); only workers that saw
    #: traffic appear.
    workers: dict[str, int] = field(default_factory=dict)
    #: Requests waiting in the admission queue right now.
    queue_depth: int = 0
    #: Requests inside worker batches right now.
    in_flight: int = 0
    queue_wait: LatencyStats = LatencyStats(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    service_time: LatencyStats = LatencyStats(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    #: Per-regime SLO view (deadline-miss rate, time-to-first-result,
    #: end-to-end latency); only regimes that saw settled traffic appear.
    slo: dict[str, RegimeSLO] = field(default_factory=dict)
    #: Queue-wait distribution per tenant; only tenants whose requests
    #: carried a :attr:`~repro.spec.LabelingSpec.tenant` appear.
    tenant_queue_wait: dict[str, LatencyStats] = field(default_factory=dict)
    #: Per-tenant SLO view (same shape as :attr:`slo`, keyed by tenant).
    tenant_slo: dict[str, RegimeSLO] = field(default_factory=dict)

    @property
    def batches(self) -> int:
        return sum(self.flushes.values())

    @property
    def mean_batch_size(self) -> float:
        return self.batched_items / self.batches if self.batches else 0.0

    @property
    def throughput(self) -> float:
        """Completed items per wall-clock second since start/reset."""
        return self.counters["completed"] / self.elapsed if self.elapsed > 0 else 0.0

    def format(self) -> str:
        """Multi-line human-readable report (the ``serve`` CLI's output)."""
        c = self.counters
        lines = [
            f"serving telemetry ({self.elapsed:.2f}s)",
            (
                f"  requests    submitted {c['submitted']}  completed {c['completed']}  "
                f"rejected {c['rejected']}  expired {c['expired']}  "
                f"failed {c['failed']}  cancelled {c['cancelled']}"
            ),
            (
                f"  batches     {self.batches} dispatched "
                f"(size {self.flushes['size']} / wait {self.flushes['wait']} / "
                f"drain {self.flushes['drain']} / "
                f"regime_split {self.flushes['regime_split']}), "
                f"mean size {self.mean_batch_size:.1f}"
            ),
            f"  throughput  {self.throughput:.1f} items/sec",
        ]
        if c["cache_hit"] or c["cache_miss"] or c["coalesced"]:
            served = c["cache_hit"] + c["coalesced"]
            lookups = served + c["cache_miss"]
            lines.append(
                f"  cache       hits {c['cache_hit']}  "
                f"coalesced {c['coalesced']}  misses {c['cache_miss']}  "
                f"(hit rate {served / lookups:.1%})"
            )
        if self.regimes:
            per_regime = "  ".join(
                f"{regime} {count}" for regime, count in sorted(self.regimes.items())
            )
            lines.append(f"  regimes     {per_regime}")
        if self.workers:
            per_worker = "  ".join(
                f"{worker} {count}" for worker, count in sorted(self.workers.items())
            )
            lines.append(f"  workers     {per_worker}")
        lines += [
            f"  queue wait  {self.queue_wait.format()}",
            f"  service     {self.service_time.format()}",
        ]
        for regime, slo in sorted(self.slo.items()):
            lines.append(f"  slo[{regime}]  {slo.format()}")
        for tenant, stats in sorted(self.tenant_queue_wait.items()):
            lines.append(f"  wait[{tenant}]  {stats.format()}")
        for tenant, slo in sorted(self.tenant_slo.items()):
            lines.append(f"  tenant[{tenant}]  {slo.format()}")
        lines.append(
            f"  now         queue depth {self.queue_depth}, in flight {self.in_flight}"
        )
        return "\n".join(lines)


class ServiceTelemetry:
    """Thread-safe accumulator behind the service's observability surface.

    All mutation goes through :meth:`count`, :meth:`observe_queue_wait`,
    :meth:`observe_service_time`, and :meth:`observe_flush`; reads go
    through :meth:`snapshot`.  One lock guards everything — observation
    cost is nanoseconds next to a model execution.
    """

    def __init__(self, clock=time.monotonic, histogram_capacity: int = 100_000):
        self._clock = clock
        self._capacity = histogram_capacity
        self._lock = threading.Lock()
        self._reset_locked()

    def _reset_locked(self) -> None:
        self._started_at = self._clock()
        self._counters = {name: 0 for name in COUNTERS}
        self._flushes = {reason: 0 for reason in FLUSH_REASONS}
        self._batched_items = 0
        self._regimes: dict[str, int] = {}
        self._workers: dict[str, int] = {}
        self._queue_wait = LatencyHistogram(self._capacity, seed=1)
        self._service_time = LatencyHistogram(self._capacity, seed=2)
        self._slo: dict[str, _RegimeSLOAccumulator] = {}
        self._tenant_queue_wait: dict[str, LatencyHistogram] = {}
        self._tenant_slo: dict[str, _RegimeSLOAccumulator] = {}

    def reset(self) -> None:
        """Zero every counter and histogram; restarts the elapsed clock."""
        with self._lock:
            self._reset_locked()

    def count(self, name: str, n: int = 1) -> None:
        if name not in _COUNTER_SET:
            raise ValueError(
                f"unknown counter {name!r}; expected one of {sorted(_COUNTER_SET)}"
            )
        with self._lock:
            self._counters[name] += n

    def observe_queue_wait(self, seconds: float, tenant: str | None = None) -> None:
        """Record one request's queue wait, optionally against its tenant.

        The global distribution always moves; a ``tenant`` additionally
        lands the sample in that tenant's own histogram — the per-tenant
        p99 the gateway's fairness guarantee is judged by.
        """
        with self._lock:
            self._queue_wait.observe(seconds)
            if tenant is not None:
                hist = self._tenant_queue_wait.get(tenant)
                if hist is None:
                    hist = self._tenant_queue_wait[tenant] = LatencyHistogram(
                        self._capacity, seed=4
                    )
                hist.observe(seconds)

    def observe_service_time(self, seconds: float) -> None:
        with self._lock:
            self._service_time.observe(seconds)

    def observe_flush(self, size: int, reason: str, regime: str | None = None) -> None:
        if reason not in _FLUSH_SET:
            raise ValueError(
                f"unknown flush reason {reason!r}; "
                f"expected one of {sorted(_FLUSH_SET)}"
            )
        with self._lock:
            self._flushes[reason] += 1
            self._batched_items += size
            if regime is not None:
                self._regimes[regime] = self._regimes.get(regime, 0) + size

    def observe_outcome(
        self,
        regime: str,
        outcome: str,
        e2e_seconds: float | None = None,
        tenant: str | None = None,
    ) -> None:
        """Record one settled request against ``regime``'s SLO view.

        ``outcome`` is one of :data:`SLO_OUTCOMES`; completions should pass
        their submit→completion latency as ``e2e_seconds`` so the per-regime
        distribution and time-to-first-result stay populated.  A ``tenant``
        additionally lands the outcome in that tenant's own SLO
        accumulator (same shape, keyed by tenant in the snapshot).
        """
        if outcome not in _OUTCOME_SET:
            raise ValueError(
                f"unknown SLO outcome {outcome!r}; "
                f"expected one of {sorted(_OUTCOME_SET)}"
            )
        with self._lock:
            accs = [self._slo.get(regime)]
            if accs[0] is None:
                accs[0] = self._slo[regime] = _RegimeSLOAccumulator(self._capacity)
            if tenant is not None:
                tacc = self._tenant_slo.get(tenant)
                if tacc is None:
                    tacc = self._tenant_slo[tenant] = _RegimeSLOAccumulator(
                        self._capacity
                    )
                accs.append(tacc)
            for acc in accs:
                setattr(acc, outcome, getattr(acc, outcome) + 1)
                if outcome == "completed" and e2e_seconds is not None:
                    acc.e2e.observe(e2e_seconds)
                    if acc.first_result_s is None:
                        acc.first_result_s = e2e_seconds

    def observe_dispatch(self, worker: str, size: int) -> None:
        """Record that ``worker`` (a thread or process label) ran ``size``
        items — the per-worker dispatch counter behind the snapshot's
        ``workers`` map."""
        with self._lock:
            self._workers[worker] = self._workers.get(worker, 0) + size

    def snapshot(
        self,
        queue_depth: int = 0,
        in_flight: int = 0,
        extra_workers: dict[str, int] | None = None,
    ) -> TelemetrySnapshot:
        """Point-in-time snapshot.  ``extra_workers`` merges externally
        tracked per-worker counters (the process backend's per-pid
        dispatch counts) into the ``workers`` map."""
        with self._lock:
            workers = dict(self._workers)
            for worker, count in (extra_workers or {}).items():
                workers[worker] = workers.get(worker, 0) + count
            return TelemetrySnapshot(
                elapsed=self._clock() - self._started_at,
                counters=dict(self._counters),
                flushes=dict(self._flushes),
                batched_items=self._batched_items,
                regimes=dict(self._regimes),
                workers=workers,
                queue_depth=queue_depth,
                in_flight=in_flight,
                queue_wait=self._queue_wait.stats(),
                service_time=self._service_time.stats(),
                slo={regime: acc.snapshot() for regime, acc in self._slo.items()},
                tenant_queue_wait={
                    tenant: hist.stats()
                    for tenant, hist in self._tenant_queue_wait.items()
                },
                tenant_slo={
                    tenant: acc.snapshot()
                    for tenant, acc in self._tenant_slo.items()
                },
            )
