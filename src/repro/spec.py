"""LabelingSpec: the one first-class request/constraint object.

The paper schedules every item under one of three *regimes* — unconstrained
Q-greedy, Algorithm 1 (deadline), Algorithm 2 (deadline + memory) — and a
request's regime used to travel through the stack as loose kwargs copied
verbatim from :class:`~repro.core.framework.AdaptiveModelScheduler` down to
the serving tier.  :class:`LabelingSpec` replaces those kwargs with a single
frozen value that every layer shares:

* the **framework** and **engine** accept ``spec=`` on every labeling call
  (legacy ``deadline=/memory_budget=/max_models=`` kwargs still work and are
  normalized through :meth:`LabelingSpec.resolve`; passing both raises);
* **backends** receive the resolved spec inside the
  :class:`~repro.engine.backends.LabelingJob` and dispatch on
  :attr:`LabelingSpec.regime`;
* the **serving tier** attaches a spec to each request and groups queued
  requests by :attr:`LabelingSpec.batch_key`, so every dispatched
  micro-batch is homogeneous — one service hosts Q-greedy, deadline, and
  deadline+memory traffic concurrently.

Constraint validation happens once, eagerly, in ``__post_init__`` — a
negative ``deadline``, a ``memory_budget`` without a deadline, or a
``max_models`` below 1 raises :class:`ValueError` at the API boundary
instead of flowing silently into the schedulers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["REGIMES", "LabelingSpec", "validate_constraints"]

#: The paper's scheduling regimes, also the legal ``policy`` overrides.
REGIMES = ("qgreedy", "deadline", "deadline_memory")


@dataclass(frozen=True)
class LabelingSpec:
    """Per-request scheduling constraints and service terms.

    Parameters
    ----------
    deadline:
        Serial-time budget in seconds for Algorithm 1 (or the completion
        bound of Algorithm 2 when ``memory_budget`` is also set).
    memory_budget:
        GPU-memory budget in MB; requires ``deadline`` (Algorithm 2).
    max_models:
        Cap on executed models for the unconstrained Q-greedy regime.
    priority:
        Serving-tier dispatch class (higher pops first); ignored outside
        the serving tier and deliberately **not** part of
        :attr:`batch_key` — priorities order admission, they do not change
        scheduling semantics, so mixed-priority requests may share a batch.
    policy:
        Optional regime override (one of :data:`REGIMES`).  By default the
        regime is derived from which constraints are set; ``policy`` pins
        it instead — e.g. ``policy="qgreedy"`` with a ``deadline`` set
        schedules greedily and ignores the deadline entirely (it is
        carried on the spec but excluded from :attr:`batch_key`, and
        serving-tier *admission* deadlines are a separate
        ``submit(deadline=…)`` argument).  A policy that *requires* a
        constraint the spec lacks (``"deadline"`` without a deadline) is
        rejected.
    tenant:
        Serving-tier tenant identity (the gateway sets it from the
        authenticated API key).  Like ``priority`` it never changes
        scheduling semantics, so it is excluded from :attr:`batch_key` —
        but it *is* part of :meth:`cache_key`, so one tenant's cached
        labels are never served to another, and the hierarchical queue
        buckets by ``tenant → batch_key`` for cross-tenant fairness.
    """

    deadline: float | None = None
    memory_budget: float | None = None
    max_models: int | None = None
    priority: int = 0
    policy: str | None = None
    tenant: str | None = None

    def __post_init__(self):
        if self.deadline is not None and self.deadline < 0:
            raise ValueError("deadline must be non-negative")
        if self.memory_budget is not None:
            if self.memory_budget < 0:
                raise ValueError("memory_budget must be non-negative")
            if self.deadline is None:
                raise ValueError("memory_budget requires a deadline")
        if self.max_models is not None and self.max_models < 1:
            raise ValueError("max_models must be >= 1")
        if self.policy is not None:
            if self.policy not in REGIMES:
                raise ValueError(
                    f"unknown policy {self.policy!r}; choose from {sorted(REGIMES)}"
                )
            if self.policy == "deadline" and self.deadline is None:
                raise ValueError("policy 'deadline' requires a deadline")
            if self.policy == "deadline_memory" and self.memory_budget is None:
                raise ValueError(
                    "policy 'deadline_memory' requires a deadline and a "
                    "memory_budget"
                )

    # -- derived views -------------------------------------------------------

    @property
    def regime(self) -> str:
        """Which scheduling algorithm this spec selects.

        ``policy`` wins when set; otherwise the regime is derived from the
        constraints: ``deadline_memory`` (Algorithm 2) when a memory budget
        is present, ``deadline`` (Algorithm 1) when only a deadline is, and
        ``qgreedy`` otherwise.
        """
        if self.policy is not None:
            return self.policy
        if self.memory_budget is not None:
            return "deadline_memory"
        if self.deadline is not None:
            return "deadline"
        return "qgreedy"

    @property
    def batch_key(self) -> tuple:
        """Hashable grouping key: specs with equal keys may share a batch.

        The key carries the regime plus only the constraints that regime
        actually schedules under, so e.g. two ``qgreedy``-policy specs with
        different (ignored) deadlines still batch together.  ``priority``
        is excluded by design (see class docstring).
        """
        regime = self.regime
        if regime == "deadline_memory":
            return (regime, self.deadline, self.memory_budget)
        if regime == "deadline":
            return (regime, self.deadline)
        return (regime, self.max_models)

    def cache_key(self, item_id: str) -> tuple:
        """Result-cache key for labeling ``item_id`` under this spec.

        A labeling result is a pure function of the item and the
        constraints its regime schedules under — exactly what
        :attr:`batch_key` captures — so two specs that may share a batch
        also share cached results (and ``priority``, which never changes
        scheduling semantics, is excluded along with ignored constraints).
        ``tenant`` *is* part of the key even though it does not change the
        result either: cached labels are tenant-scoped so one tenant's
        traffic can never observe (via latency or payload) what another
        tenant labeled.  Used by
        :class:`~repro.serving.result_cache.ResultCache`.
        """
        return (self.tenant, item_id, self.batch_key)

    # -- construction --------------------------------------------------------

    def with_(self, **changes) -> "LabelingSpec":
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **changes)

    @classmethod
    def resolve(
        cls,
        spec: "LabelingSpec | None" = None,
        *,
        deadline: float | None = None,
        memory_budget: float | None = None,
        max_models: int | None = None,
        priority: int | None = None,
        policy: str | None = None,
        tenant: str | None = None,
    ) -> "LabelingSpec":
        """Normalize one labeling call's constraints into a single spec.

        Every entry point funnels through here: with ``spec=None`` the
        legacy kwargs build a fresh (validated) spec; with a ``spec`` the
        kwargs must all be unset — passing constraints both ways is
        ambiguous and raises :class:`ValueError` instead of guessing.
        """
        kwargs = {
            name: value
            for name, value in (
                ("deadline", deadline),
                ("memory_budget", memory_budget),
                ("max_models", max_models),
                ("priority", priority),
                ("policy", policy),
                ("tenant", tenant),
            )
            if value is not None
        }
        if spec is None:
            return cls(**kwargs)
        if not isinstance(spec, cls):
            raise TypeError(
                f"spec must be a LabelingSpec, got {type(spec).__name__}"
            )
        if kwargs:
            raise ValueError(
                "pass constraints either as spec= or as legacy kwargs, not "
                f"both (got spec and {sorted(kwargs)})"
            )
        return spec


def validate_constraints(
    deadline: float | None,
    memory_budget: float | None,
    max_models: int | None = None,
) -> None:
    """Reject inconsistent constraints (legacy helper).

    Kept for callers predating :class:`LabelingSpec`; constructing the spec
    *is* the validation now.
    """
    LabelingSpec(
        deadline=deadline, memory_budget=memory_budget, max_models=max_models
    )
