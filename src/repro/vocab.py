"""Canonical label vocabularies for the 10 visual-analysis tasks (Table I).

The paper deploys 30 models over 10 tasks supporting 1104 labels in total:

======================== ======
Task                     Labels
======================== ======
Object Detection             80
Place Classification        365
Face Detection                1
Face Landmark Localization   70
Pose Estimation              17
Emotion Classification        7
Gender Classification         2
Action Classification       400
Hand Landmark Localization   42
Dog Classification          120
======================== ======

This module builds those vocabularies.  A core of widely recognizable names
(COCO object categories, common Places365 scenes, Stanford40-style actions,
common dog breeds, the 17 COCO pose keypoints, the 7 basic emotions) is
extended systematically to the exact cardinalities above; synthesized names
are realistic compounds (e.g. ``"harbor_terrace"``, ``"stacking_crates"``)
so example output and handcrafted rules stay readable.

Semantic *groups* used by the dataset generator and by the Table II
handcrafted rules (indoor places, sport actions, animal objects, ...) are
also defined here, as functions of the vocabularies.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# ---------------------------------------------------------------------------
# Task names (fixed identifiers used throughout the code base)
# ---------------------------------------------------------------------------

TASK_OBJECT = "object_detection"
TASK_PLACE = "place_classification"
TASK_FACE = "face_detection"
TASK_FACE_LANDMARK = "face_landmark"
TASK_POSE = "pose_estimation"
TASK_EMOTION = "emotion_classification"
TASK_GENDER = "gender_classification"
TASK_ACTION = "action_classification"
TASK_HAND_LANDMARK = "hand_landmark"
TASK_DOG = "dog_classification"

ALL_TASKS: tuple[str, ...] = (
    TASK_OBJECT,
    TASK_PLACE,
    TASK_FACE,
    TASK_FACE_LANDMARK,
    TASK_POSE,
    TASK_EMOTION,
    TASK_GENDER,
    TASK_ACTION,
    TASK_HAND_LANDMARK,
    TASK_DOG,
)

#: Label cardinality per task at full (paper) scale — sums to 1104.
FULL_TASK_SIZES: dict[str, int] = {
    TASK_OBJECT: 80,
    TASK_PLACE: 365,
    TASK_FACE: 1,
    TASK_FACE_LANDMARK: 70,
    TASK_POSE: 17,
    TASK_EMOTION: 7,
    TASK_GENDER: 2,
    TASK_ACTION: 400,
    TASK_HAND_LANDMARK: 42,
    TASK_DOG: 120,
}

#: Reduced cardinalities used by unit tests and smoke runs (sums to 58).
MINI_TASK_SIZES: dict[str, int] = {
    TASK_OBJECT: 12,
    TASK_PLACE: 10,
    TASK_FACE: 1,
    TASK_FACE_LANDMARK: 5,
    TASK_POSE: 6,
    TASK_EMOTION: 4,
    TASK_GENDER: 2,
    TASK_ACTION: 10,
    TASK_HAND_LANDMARK: 2,
    TASK_DOG: 6,
}


# ---------------------------------------------------------------------------
# Object detection: the 80 COCO categories
# ---------------------------------------------------------------------------

OBJECT_NAMES: tuple[str, ...] = (
    "person", "bicycle", "car", "motorcycle", "airplane", "bus", "train",
    "truck", "boat", "traffic_light", "fire_hydrant", "stop_sign",
    "parking_meter", "bench", "bird", "cat", "dog", "horse", "sheep", "cow",
    "elephant", "bear", "zebra", "giraffe", "backpack", "umbrella",
    "handbag", "tie", "suitcase", "frisbee", "skis", "snowboard",
    "sports_ball", "kite", "baseball_bat", "baseball_glove", "skateboard",
    "surfboard", "tennis_racket", "bottle", "wine_glass", "cup", "fork",
    "knife", "spoon", "bowl", "banana", "apple", "sandwich", "orange",
    "broccoli", "carrot", "hot_dog", "pizza", "donut", "cake", "chair",
    "couch", "potted_plant", "bed", "dining_table", "toilet", "tv_monitor",
    "laptop", "mouse", "remote", "keyboard", "cell_phone", "microwave",
    "oven", "toaster", "sink", "refrigerator", "book", "clock", "vase",
    "scissors", "teddy_bear", "hair_drier", "toothbrush",
)

#: Curated object subset for the mini (test) world: keeps the person/dog
#: chains, one vehicle, household and food items so every rule and
#: correlation path stays exercised.
MINI_OBJECT_NAMES: tuple[str, ...] = (
    "person", "dog", "cat", "car", "bicycle", "chair", "couch", "cup",
    "bottle", "tv_monitor", "sports_ball", "bench",
)

#: Object groups used for scene->object correlations and Table II rules.
ANIMAL_OBJECTS: tuple[str, ...] = (
    "bird", "cat", "dog", "horse", "sheep", "cow", "elephant", "bear",
    "zebra", "giraffe",
)
VEHICLE_OBJECTS: tuple[str, ...] = (
    "bicycle", "car", "motorcycle", "airplane", "bus", "train", "truck",
    "boat",
)
HOUSEHOLD_OBJECTS: tuple[str, ...] = (
    "chair", "couch", "potted_plant", "bed", "dining_table", "toilet",
    "tv_monitor", "laptop", "mouse", "remote", "keyboard", "cell_phone",
    "microwave", "oven", "toaster", "sink", "refrigerator", "book", "clock",
    "vase", "scissors", "teddy_bear", "hair_drier", "toothbrush",
)
SPORT_OBJECTS: tuple[str, ...] = (
    "frisbee", "skis", "snowboard", "sports_ball", "kite", "baseball_bat",
    "baseball_glove", "skateboard", "surfboard", "tennis_racket",
)
FOOD_OBJECTS: tuple[str, ...] = (
    "bottle", "wine_glass", "cup", "fork", "knife", "spoon", "bowl",
    "banana", "apple", "sandwich", "orange", "broccoli", "carrot",
    "hot_dog", "pizza", "donut", "cake",
)
STREET_OBJECTS: tuple[str, ...] = (
    "traffic_light", "fire_hydrant", "stop_sign", "parking_meter", "bench",
)
CARRY_OBJECTS: tuple[str, ...] = (
    "backpack", "umbrella", "handbag", "tie", "suitcase",
)


# ---------------------------------------------------------------------------
# Place classification: 365 scene categories (Places365-style)
# ---------------------------------------------------------------------------

_INDOOR_PLACE_CORE: tuple[str, ...] = (
    "pub", "beer_hall", "bathroom", "lobby", "mall", "kitchen",
    "living_room", "bedroom", "dining_room", "office", "classroom",
    "library", "museum", "gymnasium", "bowling_alley", "cafeteria",
    "restaurant", "bar", "coffee_shop", "bakery", "supermarket",
    "bookstore", "clothing_store", "hospital_room", "hotel_room",
    "home_office", "basement", "attic", "garage_indoor", "staircase",
    "corridor", "elevator", "airport_terminal", "train_interior",
    "subway_station", "art_gallery", "ballroom", "banquet_hall",
    "conference_room", "laundromat", "locker_room", "pantry",
    "playroom", "recreation_room", "server_room", "wine_cellar",
    "movie_theater", "music_studio", "nursery", "operating_room",
)
_OUTDOOR_PLACE_CORE: tuple[str, ...] = (
    "mountain", "beach", "forest", "lawn", "park", "street", "highway",
    "bridge", "harbor", "lake", "river", "ocean", "desert", "canyon",
    "cliff", "glacier", "field", "farm", "orchard", "vineyard", "garden",
    "playground", "stadium", "baseball_field", "basketball_court",
    "tennis_court", "golf_course", "ski_slope", "swimming_pool_outdoor",
    "campsite", "picnic_area", "plaza", "courtyard", "alley", "crosswalk",
    "downtown", "construction_site", "gas_station", "parking_lot",
    "railroad_track", "runway", "lighthouse", "pier", "boardwalk",
    "botanical_garden", "amusement_park", "zoo", "pasture", "marsh",
    "volcano",
)

_PLACE_PREFIXES: tuple[str, ...] = (
    "sunlit", "crowded", "quiet", "historic", "modern", "rustic",
    "industrial", "coastal", "urban", "rural", "alpine", "tropical",
    "abandoned",
)


def _synthesize_places(total: int) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """Extend the core place lists to ``total`` names.

    Returns ``(names, indoor_names)`` where indoor names are roughly 45% of
    the vocabulary (Places365 has a similar indoor share).  Small totals
    (the mini world) interleave indoor/outdoor so both kinds survive.
    """
    if total <= len(_INDOOR_PLACE_CORE):
        half = total // 2
        names = list(_INDOOR_PLACE_CORE[:half]) + list(
            _OUTDOOR_PLACE_CORE[: total - half]
        )
        return tuple(names), tuple(_INDOOR_PLACE_CORE[:half])
    names: list[str] = list(_INDOOR_PLACE_CORE) + list(_OUTDOOR_PLACE_CORE)
    indoor: list[str] = list(_INDOOR_PLACE_CORE)
    core_cycle = list(_INDOOR_PLACE_CORE) + list(_OUTDOOR_PLACE_CORE)
    i = 0
    while len(names) < total:
        base = core_cycle[i % len(core_cycle)]
        prefix = _PLACE_PREFIXES[(i // len(core_cycle)) % len(_PLACE_PREFIXES)]
        name = f"{prefix}_{base}"
        if name not in names:
            names.append(name)
            if base in _INDOOR_PLACE_CORE:
                indoor.append(name)
        i += 1
    return tuple(names[:total]), tuple(n for n in indoor if n in names[:total])


# ---------------------------------------------------------------------------
# Pose estimation: the 17 COCO keypoints
# ---------------------------------------------------------------------------

POSE_KEYPOINT_NAMES: tuple[str, ...] = (
    "nose", "left_eye", "right_eye", "left_ear", "right_ear",
    "left_shoulder", "right_shoulder", "left_elbow", "right_elbow",
    "left_wrist", "right_wrist", "left_hip", "right_hip", "left_knee",
    "right_knee", "left_ankle", "right_ankle",
)
#: Keypoints whose presence triggers the hand-landmark rule in Table II.
WRIST_KEYPOINTS: tuple[str, ...] = ("left_wrist", "right_wrist")


# ---------------------------------------------------------------------------
# Emotion / gender
# ---------------------------------------------------------------------------

EMOTION_NAMES: tuple[str, ...] = (
    "angry", "disgust", "fear", "happy", "sad", "surprise", "neutral",
)
GENDER_NAMES: tuple[str, ...] = ("male", "female")
FACE_NAMES: tuple[str, ...] = ("face",)


# ---------------------------------------------------------------------------
# Action classification: 400 Kinetics-style action categories
# ---------------------------------------------------------------------------

_ACTION_CORE: tuple[str, ...] = (
    "drinking_beer", "riding_bike", "making_up", "falling_down",
    "playing_guitar", "riding_horse", "walking_dog", "reading_book",
    "cooking", "eating_pizza", "drinking_coffee", "playing_basketball",
    "playing_tennis", "playing_baseball", "skateboarding", "surfing",
    "skiing", "snowboarding", "swimming", "running", "jumping", "dancing",
    "singing", "clapping", "waving_hands", "shaking_hands", "hugging",
    "texting", "taking_photo", "using_laptop", "writing", "painting",
    "fishing", "rowing_boat", "climbing_mountain", "gardening",
    "washing_dishes", "vacuuming", "ironing", "folding_clothes",
    "brushing_teeth", "combing_hair", "applying_cream", "blow_drying_hair",
    "playing_chess", "playing_cards", "juggling", "stretching", "yoga",
    "push_ups",
)
_ACTION_VERBS: tuple[str, ...] = (
    "lifting", "carrying", "throwing", "catching", "kicking", "pushing",
    "pulling", "stacking", "opening", "closing", "cleaning", "repairing",
    "assembling", "inspecting", "polishing",
)
_ACTION_OBJECTS: tuple[str, ...] = (
    "boxes", "crates", "bottles", "chairs", "tables", "doors", "windows",
    "wheels", "ropes", "nets", "barrels", "ladders", "pipes", "tools",
    "engines", "fences", "tents", "kayaks", "sleds", "drums", "violins",
    "flutes", "kites", "balloons",
)
#: Actions counted as "sport" for Table II's indoor-place rule.
_SPORT_ACTION_CORE: tuple[str, ...] = (
    "playing_basketball", "playing_tennis", "playing_baseball",
    "skateboarding", "surfing", "skiing", "snowboarding", "swimming",
    "running", "jumping", "yoga", "push_ups",
)


def _synthesize_actions(total: int) -> tuple[str, ...]:
    names: list[str] = list(_ACTION_CORE)
    for verb in _ACTION_VERBS:
        for obj in _ACTION_OBJECTS:
            if len(names) >= total:
                break
            name = f"{verb}_{obj}"
            if name not in names:
                names.append(name)
    i = 0
    while len(names) < total:  # pragma: no cover - vocabulary safety net
        names.append(f"action_{i:03d}")
        i += 1
    return tuple(names[:total])


# ---------------------------------------------------------------------------
# Dog classification: 120 Stanford-Dogs-style breeds
# ---------------------------------------------------------------------------

_DOG_CORE: tuple[str, ...] = (
    "akita", "beagle", "border_collie", "boxer", "bulldog", "chihuahua",
    "corgi", "dachshund", "dalmatian", "doberman", "german_shepherd",
    "golden_retriever", "great_dane", "greyhound", "husky",
    "labrador_retriever", "malamute", "maltese", "mastiff", "newfoundland",
    "papillon", "pekinese", "pomeranian", "poodle", "pug", "rottweiler",
    "saint_bernard", "samoyed", "shih_tzu", "whippet",
)
_DOG_MODIFIERS: tuple[str, ...] = (
    "miniature", "standard", "toy", "giant", "wirehaired", "smooth",
    "longhaired", "curly",
)


def _synthesize_dogs(total: int) -> tuple[str, ...]:
    names: list[str] = list(_DOG_CORE)
    for modifier in _DOG_MODIFIERS:
        for base in _DOG_CORE:
            if len(names) >= total:
                break
            name = f"{modifier}_{base}"
            if name not in names:
                names.append(name)
    return tuple(names[:total])


# ---------------------------------------------------------------------------
# Landmark vocabularies (indexed points)
# ---------------------------------------------------------------------------


def _face_landmark_names(total: int) -> tuple[str, ...]:
    """70 face-landmark labels (68 contour points + 2 pupils)."""
    regions = (
        ("jaw", 17), ("right_brow", 5), ("left_brow", 5), ("nose_bridge", 4),
        ("nose_tip", 5), ("right_eye", 6), ("left_eye", 6),
        ("outer_lip", 12), ("inner_lip", 8), ("pupil", 2),
    )
    names: list[str] = []
    for region, count in regions:
        for i in range(count):
            names.append(f"face_{region}_{i}")
    i = 0
    while len(names) < total:  # pragma: no cover - vocabulary safety net
        names.append(f"face_point_{i}")
        i += 1
    return tuple(names[:total])


def _hand_landmark_names(total: int) -> tuple[str, ...]:
    """42 hand-landmark labels: 21 keypoints per hand x 2 hands."""
    fingers = ("thumb", "index", "middle", "ring", "pinky")
    names: list[str] = []
    for side in ("left", "right"):
        names.append(f"{side}_palm_base")
        for finger in fingers:
            for joint in ("mcp", "pip", "dip", "tip"):
                names.append(f"{side}_{finger}_{joint}")
    return tuple(names[:total])


# ---------------------------------------------------------------------------
# Assembled vocabulary
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Vocabulary:
    """Per-task label names plus the semantic groups derived from them.

    Instances are built via :func:`build_vocabulary`; the ``full`` scale
    matches Table I exactly (1104 labels total).
    """

    task_labels: dict[str, tuple[str, ...]]
    indoor_places: frozenset[str] = field(default_factory=frozenset)
    sport_actions: frozenset[str] = field(default_factory=frozenset)
    animal_objects: frozenset[str] = field(default_factory=frozenset)
    household_objects: frozenset[str] = field(default_factory=frozenset)
    vehicle_objects: frozenset[str] = field(default_factory=frozenset)
    sport_objects: frozenset[str] = field(default_factory=frozenset)
    food_objects: frozenset[str] = field(default_factory=frozenset)
    street_objects: frozenset[str] = field(default_factory=frozenset)
    wrist_keypoints: frozenset[str] = field(default_factory=frozenset)

    @property
    def total_labels(self) -> int:
        return sum(len(v) for v in self.task_labels.values())

    def labels_for(self, task: str) -> tuple[str, ...]:
        return self.task_labels[task]


def build_vocabulary(scale: str = "full") -> Vocabulary:
    """Build the label vocabulary at ``scale`` ("full" or "mini").

    ``full`` reproduces Table I: 10 tasks, 1104 labels.  ``mini`` is a
    structurally identical shrunken world for fast tests.
    """
    if scale == "full":
        sizes = FULL_TASK_SIZES
    elif scale == "mini":
        sizes = MINI_TASK_SIZES
    else:
        raise ValueError(f"unknown vocabulary scale: {scale!r}")

    places, indoor = _synthesize_places(sizes[TASK_PLACE])
    actions = _synthesize_actions(sizes[TASK_ACTION])
    dogs = _synthesize_dogs(sizes[TASK_DOG])

    object_names = (
        OBJECT_NAMES[: sizes[TASK_OBJECT]]
        if scale == "full"
        else MINI_OBJECT_NAMES[: sizes[TASK_OBJECT]]
    )
    task_labels = {
        TASK_OBJECT: object_names,
        TASK_PLACE: places,
        TASK_FACE: FACE_NAMES[: sizes[TASK_FACE]],
        TASK_FACE_LANDMARK: _face_landmark_names(sizes[TASK_FACE_LANDMARK]),
        TASK_POSE: POSE_KEYPOINT_NAMES[: sizes[TASK_POSE]],
        TASK_EMOTION: EMOTION_NAMES[: sizes[TASK_EMOTION]],
        TASK_GENDER: GENDER_NAMES[: sizes[TASK_GENDER]],
        TASK_ACTION: actions,
        TASK_HAND_LANDMARK: _hand_landmark_names(sizes[TASK_HAND_LANDMARK]),
        TASK_DOG: dogs,
    }
    for task, names in task_labels.items():
        if len(names) != sizes[task]:
            raise AssertionError(
                f"vocabulary for {task} has {len(names)} labels, "
                f"expected {sizes[task]}"
            )

    object_set = set(task_labels[TASK_OBJECT])
    action_set = set(task_labels[TASK_ACTION])
    pose_set = set(task_labels[TASK_POSE])
    return Vocabulary(
        task_labels=task_labels,
        indoor_places=frozenset(indoor),
        sport_actions=frozenset(a for a in _SPORT_ACTION_CORE if a in action_set),
        animal_objects=frozenset(o for o in ANIMAL_OBJECTS if o in object_set),
        household_objects=frozenset(
            o for o in HOUSEHOLD_OBJECTS if o in object_set
        ),
        vehicle_objects=frozenset(o for o in VEHICLE_OBJECTS if o in object_set),
        sport_objects=frozenset(o for o in SPORT_OBJECTS if o in object_set),
        food_objects=frozenset(o for o in FOOD_OBJECTS if o in object_set),
        street_objects=frozenset(o for o in STREET_OBJECTS if o in object_set),
        wrist_keypoints=frozenset(k for k in WRIST_KEYPOINTS if k in pose_set),
    )
