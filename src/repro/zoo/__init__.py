"""Simulated model zoo: 30 models over 10 visual tasks (Table I).

Each :class:`~repro.zoo.model.SimulatedModel` stands in for one pretrained
CNN: it has a recorded time cost, a peak GPU-memory cost, and emits
labels+confidences as a deterministic, seeded function of an item's latent
content.  The :class:`~repro.zoo.oracle.GroundTruth` cache plays the role of
the paper's "execute all 30 models on every image and store the outputs"
protocol (§VI-A).
"""

from repro.zoo.builder import build_zoo
from repro.zoo.model import ModelZoo, SimulatedModel
from repro.zoo.oracle import GroundTruth

__all__ = ["build_zoo", "ModelZoo", "SimulatedModel", "GroundTruth"]
