"""Zoo assembly: specs + calibration -> :class:`~repro.zoo.model.ModelZoo`."""

from __future__ import annotations

from repro.config import WorldConfig
from repro.labels import LabelSpace, build_label_space
from repro.zoo.costs import calibrated_times, specs_for_scale
from repro.zoo.model import ModelZoo, SimulatedModel


def build_zoo(
    config: WorldConfig | None = None, space: LabelSpace | None = None
) -> ModelZoo:
    """Build the simulated model zoo for a world configuration.

    At ``vocab_scale="full"`` this is the paper's setup: 30 models over 10
    tasks supporting 1104 labels, with total execution time calibrated to
    ``config.zoo_total_time`` (5.16 s by default, matching §II).
    """
    config = config or WorldConfig()
    space = space or build_label_space(config.vocab_scale)
    specs = specs_for_scale(config.vocab_scale)
    times = calibrated_times(specs, config.zoo_total_time)
    models = [
        SimulatedModel(
            spec=spec,
            space=space,
            time_cost=times[spec.name],
            world_seed=config.seed,
        )
        for spec in specs
    ]
    return ModelZoo(models, space)
