"""Calibrated execution-time and GPU-memory costs for the zoo.

The paper records, per model, the average execution time (used as
``m.time``) and the peak GPU memory (``m.mem``), with models spanning
50–400 ms and 500–8000 MB (Table III).  The whole 30-model zoo averages
5.16 s per image on a P100 (§II).  We encode a cost table with the same
spans and task-level ordering (pose estimation and action classification are
the heavy hitters; face/emotion/gender heads are light) and normalize total
time to the configured ``zoo_total_time``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vocab import (
    TASK_ACTION,
    TASK_DOG,
    TASK_EMOTION,
    TASK_FACE,
    TASK_FACE_LANDMARK,
    TASK_GENDER,
    TASK_HAND_LANDMARK,
    TASK_OBJECT,
    TASK_PLACE,
    TASK_POSE,
)


@dataclass(frozen=True)
class ModelSpec:
    """Static description of one zoo member before calibration."""

    name: str
    task: str
    #: Raw (uncalibrated) execution time in seconds.
    raw_time: float
    #: Peak GPU memory in MB.
    mem_mb: float
    #: Labeling quality in (0, 1]; drives recall and confidence.
    quality: float


#: The 30-model zoo at full scale: 10 tasks, model counts
#: (5,4,3,2,3,2,2,4,2,3).  Names echo the reference implementations the
#: paper cites (YOLOv3, OpenPose, I3D, OpenFace, VGG...).
FULL_ZOO_SPECS: tuple[ModelSpec, ...] = (
    # Object detection (5) — mid-weight detectors.
    ModelSpec("yolov3_object", TASK_OBJECT, 0.18, 3200, 0.90),
    ModelSpec("ssd_object", TASK_OBJECT, 0.15, 2400, 0.80),
    ModelSpec("faster_rcnn_object", TASK_OBJECT, 0.30, 4000, 0.94),
    ModelSpec("squeezedet_object", TASK_OBJECT, 0.10, 1200, 0.72),
    ModelSpec("retina_object", TASK_OBJECT, 0.25, 3600, 0.88),
    # Place classification (4) — light classifiers over 365 classes.
    ModelSpec("resnet_place", TASK_PLACE, 0.12, 2000, 0.90),
    ModelSpec("vgg_place", TASK_PLACE, 0.14, 2600, 0.86),
    ModelSpec("alexnet_place", TASK_PLACE, 0.08, 1200, 0.74),
    ModelSpec("densenet_place", TASK_PLACE, 0.11, 2200, 0.88),
    # Face detection (3) — light.
    ModelSpec("openface_det", TASK_FACE, 0.07, 700, 0.90),
    ModelSpec("mtcnn_face_det", TASK_FACE, 0.09, 900, 0.92),
    ModelSpec("haar_face_det", TASK_FACE, 0.05, 500, 0.70),
    # Face landmark localization (2).
    ModelSpec("dlib_face_landmark", TASK_FACE_LANDMARK, 0.09, 900, 0.86),
    ModelSpec("fan_face_landmark", TASK_FACE_LANDMARK, 0.14, 1400, 0.92),
    # Pose estimation (3) — the heavy hitters.
    ModelSpec("openpose_pose", TASK_POSE, 0.40, 8000, 0.93),
    ModelSpec("alphapose_pose", TASK_POSE, 0.33, 6000, 0.90),
    ModelSpec("poseflow_pose", TASK_POSE, 0.28, 5000, 0.84),
    # Emotion classification (2) — light heads.
    ModelSpec("pylearn_emotion", TASK_EMOTION, 0.05, 600, 0.84),
    ModelSpec("ferplus_emotion", TASK_EMOTION, 0.07, 800, 0.90),
    # Gender classification (2).
    ModelSpec("vgg_gender", TASK_GENDER, 0.06, 700, 0.90),
    ModelSpec("mobilenet_gender", TASK_GENDER, 0.04, 500, 0.82),
    # Action classification (4) — heavy video-style backbones.
    ModelSpec("i3d_action", TASK_ACTION, 0.35, 6000, 0.92),
    ModelSpec("tsn_action", TASK_ACTION, 0.28, 4500, 0.86),
    ModelSpec("c3d_action", TASK_ACTION, 0.30, 5000, 0.82),
    ModelSpec("slowfast_action", TASK_ACTION, 0.38, 7000, 0.94),
    # Hand landmark localization (2).
    ModelSpec("openpose_hand", TASK_HAND_LANDMARK, 0.22, 2400, 0.88),
    ModelSpec("mediapipe_hand", TASK_HAND_LANDMARK, 0.16, 1600, 0.84),
    # Dog classification (3).
    ModelSpec("inception_dog", TASK_DOG, 0.14, 1800, 0.90),
    ModelSpec("resnet_dog", TASK_DOG, 0.12, 1600, 0.86),
    ModelSpec("mobilenet_dog", TASK_DOG, 0.08, 1000, 0.76),
)

#: A structurally similar 10-model zoo for the mini (test) world: one model
#: per task, same task ordering and cost flavour.
MINI_ZOO_SPECS: tuple[ModelSpec, ...] = (
    ModelSpec("mini_object", TASK_OBJECT, 0.18, 3200, 0.90),
    ModelSpec("mini_place", TASK_PLACE, 0.12, 2000, 0.90),
    ModelSpec("mini_face_det", TASK_FACE, 0.07, 700, 0.90),
    ModelSpec("mini_face_landmark", TASK_FACE_LANDMARK, 0.10, 1000, 0.88),
    ModelSpec("mini_pose", TASK_POSE, 0.40, 8000, 0.92),
    ModelSpec("mini_emotion", TASK_EMOTION, 0.05, 600, 0.86),
    ModelSpec("mini_gender", TASK_GENDER, 0.06, 700, 0.88),
    ModelSpec("mini_action", TASK_ACTION, 0.35, 6000, 0.90),
    ModelSpec("mini_hand", TASK_HAND_LANDMARK, 0.20, 2200, 0.86),
    ModelSpec("mini_dog", TASK_DOG, 0.13, 1700, 0.88),
)


def specs_for_scale(scale: str) -> tuple[ModelSpec, ...]:
    """Zoo member specs for a vocabulary scale."""
    if scale == "full":
        return FULL_ZOO_SPECS
    if scale == "mini":
        return MINI_ZOO_SPECS
    raise ValueError(f"unknown zoo scale: {scale!r}")


def calibrated_times(
    specs: tuple[ModelSpec, ...], zoo_total_time: float
) -> dict[str, float]:
    """Scale raw times so the whole zoo sums to ``zoo_total_time`` seconds.

    This pins the "no policy" cost to the paper's 5.16 s/image (§II) while
    preserving relative model weights.
    """
    raw_total = sum(s.raw_time for s in specs)
    factor = zoo_total_time / raw_total
    return {s.name: s.raw_time * factor for s in specs}
