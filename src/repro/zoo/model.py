"""Simulated deep-learning models.

A :class:`SimulatedModel` reads an item's latent content through a
task-specific lens and emits labels with confidences.  Three behaviours of
real model zoos matter to the scheduler and are reproduced here:

1. **Content dependence** — a pose estimator emits nothing without people;
   a dog classifier emits nothing without dogs (Fig. 1 "No Output" cells).
2. **Low-confidence junk** — weak content or false positives yield labels
   below the valuable threshold (Fig. 1 "Low-Confidence Output" cells).
3. **Quality spread** — models of one task share a vocabulary but differ in
   recall/confidence (which makes label overlap, and hence submodularity of
   Eq. 1, non-trivial).

Determinism: emission is a pure function of (model name, item id, world
seed); executing the same model twice on the same item returns the same
output, mirroring the paper's record-then-replay evaluation protocol.
"""

from __future__ import annotations

import zlib
from collections.abc import Iterator, Sequence

import numpy as np

from repro.core.output import LabelOutput, ModelOutput
from repro.data.datasets import DataItem
from repro.labels import LabelSpace
from repro.vocab import (
    TASK_ACTION,
    TASK_DOG,
    TASK_EMOTION,
    TASK_FACE,
    TASK_FACE_LANDMARK,
    TASK_GENDER,
    TASK_HAND_LANDMARK,
    TASK_OBJECT,
    TASK_PLACE,
    TASK_POSE,
)
from repro.zoo.costs import ModelSpec


def _confidence(
    rng: np.random.Generator, strength: float, quality: float, noise: float = 0.07
) -> float:
    """Confidence from content strength and model quality.

    Strong content seen by a good model lands well above the 0.5 valuable
    threshold; weak content lands below it (junk output).
    """
    base = strength * (0.45 + 0.62 * quality)
    return float(np.clip(base + rng.normal(0.0, noise), 0.02, 0.99))


class SimulatedModel:
    """One zoo member: costs + a seeded content->labels emission function."""

    def __init__(
        self,
        spec: ModelSpec,
        space: LabelSpace,
        time_cost: float,
        world_seed: int,
    ):
        self.name = spec.name
        self.task = spec.task
        self.quality = spec.quality
        #: Average execution time in seconds (the paper's ``m.time``).
        self.time = time_cost
        #: Peak GPU memory in MB (the paper's ``m.mem``).
        self.mem = spec.mem_mb
        self._space = space
        self._task_ids = space.task_ids(spec.task)
        self._seed_salt = zlib.crc32(f"{world_seed}:{spec.name}".encode())

    def __repr__(self) -> str:
        return (
            f"SimulatedModel({self.name}, task={self.task}, "
            f"time={self.time:.3f}s, mem={self.mem:.0f}MB)"
        )

    @property
    def n_labels(self) -> int:
        """Number of labels this model supports (|L(m)|)."""
        return len(self._task_ids)

    # -- execution ---------------------------------------------------------

    def execute(self, item: DataItem) -> ModelOutput:
        """Run the model on ``item`` and return its (deterministic) output."""
        rng = np.random.default_rng(
            np.random.SeedSequence(
                [self._seed_salt, zlib.crc32(item.item_id.encode())]
            )
        )
        emitted = self._emit(item, rng)
        labels = tuple(
            LabelOutput(
                label_id=int(self._task_ids[local]),
                name=self._space.name_of(int(self._task_ids[local])),
                confidence=conf,
            )
            for local, conf in emitted
        )
        return ModelOutput(model=self.name, item_id=item.item_id, labels=labels)

    # -- per-task emission lenses -------------------------------------------

    def _emit(
        self, item: DataItem, rng: np.random.Generator
    ) -> list[tuple[int, float]]:
        content = item.content
        handlers = {
            TASK_OBJECT: self._emit_objects,
            TASK_PLACE: self._emit_place,
            TASK_FACE: self._emit_face,
            TASK_FACE_LANDMARK: self._emit_face_landmarks,
            TASK_POSE: self._emit_pose,
            TASK_EMOTION: self._emit_emotion,
            TASK_GENDER: self._emit_gender,
            TASK_ACTION: self._emit_action,
            TASK_HAND_LANDMARK: self._emit_hand_landmarks,
            TASK_DOG: self._emit_dog,
        }
        return handlers[self.task](content, rng)

    def _emit_objects(self, content, rng) -> list[tuple[int, float]]:
        out: list[tuple[int, float]] = []
        for obj, strength in content.objects.items():
            # Detection probability grows with quality and object strength.
            p_detect = self.quality * (0.55 + 0.45 * strength)
            if rng.random() < p_detect:
                out.append((obj, _confidence(rng, strength, self.quality)))
        # Rare false positive: a random category at junk confidence.
        if rng.random() < 0.08:
            fp = int(rng.integers(self.n_labels))
            if fp not in content.objects:
                out.append((fp, float(rng.uniform(0.08, 0.42))))
        return out

    def _emit_place(self, content, rng) -> list[tuple[int, float]]:
        out = [
            (
                content.scene,
                _confidence(rng, content.scene_strength, self.quality),
            )
        ]
        # Classifiers emit a runner-up guess at low confidence.
        if rng.random() < 0.5:
            runner_up = int(rng.integers(self.n_labels))
            if runner_up != content.scene:
                out.append((runner_up, float(rng.uniform(0.05, 0.35))))
        return out

    def _emit_face(self, content, rng) -> list[tuple[int, float]]:
        faces = [p for p in content.persons if p.face_visible]
        if faces:
            strength = max(p.face_strength for p in faces)
            return [(0, _confidence(rng, strength, self.quality))]
        if content.has_person and rng.random() < 0.15:
            # Occluded face: junk-confidence detection.
            return [(0, float(rng.uniform(0.08, 0.4)))]
        return []

    def _emit_face_landmarks(self, content, rng) -> list[tuple[int, float]]:
        faces = [p for p in content.persons if p.face_visible]
        if not faces:
            return []
        strength = max(p.face_strength for p in faces)
        # Number of localized points grows with face strength and quality.
        frac = np.clip(strength * self.quality + rng.normal(0, 0.05), 0.0, 1.0)
        n_points = int(round(frac * self.n_labels))
        picked = rng.choice(self.n_labels, size=n_points, replace=False)
        return [
            (int(p), _confidence(rng, strength, self.quality, noise=0.05))
            for p in picked
        ]

    def _emit_pose(self, content, rng) -> list[tuple[int, float]]:
        if not content.persons:
            return []
        out: dict[int, float] = {}
        for person in content.persons:
            for kp in person.visible_keypoints:
                if rng.random() < self.quality * 0.9:
                    conf = _confidence(
                        rng, person.prominence, self.quality, noise=0.05
                    )
                    out[kp] = max(out.get(kp, 0.0), conf)
        return list(out.items())

    def _emit_emotion(self, content, rng) -> list[tuple[int, float]]:
        faces = [
            p for p in content.persons if p.face_visible and p.emotion is not None
        ]
        if not faces:
            return []
        best = max(faces, key=lambda p: p.face_strength)
        conf = _confidence(rng, best.face_strength, self.quality)
        out = [(int(best.emotion), conf)]
        if rng.random() < 0.3:
            other = int(rng.integers(self.n_labels))
            if other != best.emotion:
                out.append((other, float(rng.uniform(0.05, 0.3))))
        return out

    def _emit_gender(self, content, rng) -> list[tuple[int, float]]:
        visible = [p for p in content.persons if p.face_visible]
        if not visible:
            # Gender nets need a face crop; bodies alone give junk output.
            if content.has_person and rng.random() < 0.3:
                return [
                    (int(rng.integers(self.n_labels)), float(rng.uniform(0.1, 0.45)))
                ]
            return []
        out: dict[int, float] = {}
        for person in visible:
            conf = _confidence(rng, person.face_strength, self.quality)
            out[person.gender] = max(out.get(person.gender, 0.0), conf)
        return list(out.items())

    def _emit_action(self, content, rng) -> list[tuple[int, float]]:
        if content.action is not None:
            conf = _confidence(rng, content.action_strength, self.quality)
            out = [(int(content.action), conf)]
            if rng.random() < 0.4:
                other = int(rng.integers(self.n_labels))
                if other != content.action:
                    out.append((other, float(rng.uniform(0.05, 0.35))))
            return out
        if content.has_person and rng.random() < 0.5:
            # People but no recognizable action: low-confidence guess.
            return [
                (int(rng.integers(self.n_labels)), float(rng.uniform(0.05, 0.4)))
            ]
        return []

    def _emit_hand_landmarks(self, content, rng) -> list[tuple[int, float]]:
        handed = [
            p
            for p in content.persons
            if p.hands_visible > 0 and p.wrists_visible
        ]
        if not handed:
            return []
        best = max(handed, key=lambda p: p.prominence)
        per_hand = self.n_labels // 2
        out: list[tuple[int, float]] = []
        for hand in range(min(best.hands_visible, 2)):
            frac = np.clip(
                best.prominence * self.quality + rng.normal(0, 0.05), 0.0, 1.0
            )
            n_points = int(round(frac * per_hand))
            offset = hand * per_hand
            picked = rng.choice(per_hand, size=n_points, replace=False)
            out.extend(
                (
                    int(offset + p),
                    _confidence(rng, best.prominence, self.quality, noise=0.05),
                )
                for p in picked
            )
        return out

    def _emit_dog(self, content, rng) -> list[tuple[int, float]]:
        if content.dog_breed is not None:
            conf = _confidence(rng, content.dog_strength, self.quality)
            out = [(int(content.dog_breed), conf)]
            if rng.random() < 0.3:
                other = int(rng.integers(self.n_labels))
                if other != content.dog_breed:
                    out.append((other, float(rng.uniform(0.05, 0.35))))
            return out
        if rng.random() < 0.1:
            # Breed classifiers hallucinate on furry non-dogs occasionally.
            return [
                (int(rng.integers(self.n_labels)), float(rng.uniform(0.05, 0.35)))
            ]
        return []


class ModelZoo:
    """The ordered collection of simulated models (the paper's set ``M``)."""

    def __init__(self, models: Sequence[SimulatedModel], space: LabelSpace):
        self._models = tuple(models)
        self.space = space
        self._by_name = {m.name: m for m in self._models}
        if len(self._by_name) != len(self._models):
            raise ValueError("duplicate model names in zoo")

    def __len__(self) -> int:
        return len(self._models)

    def __iter__(self) -> Iterator[SimulatedModel]:
        return iter(self._models)

    def __getitem__(self, index: int) -> SimulatedModel:
        return self._models[index]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def models(self) -> tuple[SimulatedModel, ...]:
        return self._models

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(m.name for m in self._models)

    def by_name(self, name: str) -> SimulatedModel:
        return self._by_name[name]

    def index_of(self, name: str) -> int:
        return self._models.index(self._by_name[name])

    def models_for_task(self, task: str) -> tuple[SimulatedModel, ...]:
        return tuple(m for m in self._models if m.task == task)

    @property
    def times(self) -> np.ndarray:
        """Per-model execution times, aligned with zoo order."""
        return np.asarray([m.time for m in self._models], dtype=np.float64)

    @property
    def mems(self) -> np.ndarray:
        """Per-model memory costs (MB), aligned with zoo order."""
        return np.asarray([m.mem for m in self._models], dtype=np.float64)

    @property
    def total_time(self) -> float:
        """Cost of the paper's "no policy": run everything."""
        return float(self.times.sum())
