"""Ground-truth cache: record-then-replay evaluation protocol.

The paper executes all 30 models on every image once, stores the outputs,
and then *simulates* every scheduling policy against the recorded outputs
and recorded per-model costs (§II, §VI-A).  :class:`GroundTruth` is that
store.  It precomputes, per item:

* each model's full output (labels + confidences),
* each model's *valuable* labels (confidence >= threshold) as id/conf
  arrays for fast value accounting,
* the total achievable value ``f(M, d)`` under the max-confidence union
  semantics of Eq. (1).

Scheduling policies and the RL environment query this cache instead of
"running" models, so policy evaluation is deterministic and cheap.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.config import WorldConfig
from repro.core.output import ModelOutput
from repro.data.datasets import DataItem
from repro.zoo.model import ModelZoo


@dataclass(frozen=True)
class ItemRecord:
    """Recorded zoo execution for one item."""

    item: DataItem
    #: Model outputs, aligned with zoo order.
    outputs: tuple[ModelOutput, ...]
    #: Per-model arrays of valuable (ids, confs), aligned with zoo order.
    valuable_ids: tuple[np.ndarray, ...]
    valuable_confs: tuple[np.ndarray, ...]
    #: Solo value of each model: sum of its valuable confidences.
    solo_values: np.ndarray
    #: Best achievable confidence per label over the whole zoo (dense).
    best_confidence: np.ndarray
    #: f(M, d): total achievable value.
    total_value: float

    @property
    def useful_models(self) -> np.ndarray:
        """Boolean mask over models: emits at least one valuable label."""
        return self.solo_values > 0.0


class GroundTruth:
    """Recorded outputs of the full zoo over a collection of items."""

    def __init__(
        self,
        zoo: ModelZoo,
        items: Iterable[DataItem],
        config: WorldConfig | None = None,
    ):
        self.zoo = zoo
        self.config = config or WorldConfig()
        self.threshold = self.config.valuable_confidence
        self._records: dict[str, ItemRecord] = {}
        self.add_items(items)

    # -- construction --------------------------------------------------------

    def add_items(self, items: Iterable[DataItem]) -> list[str]:
        """Execute-and-record the zoo on new items (idempotent per item).

        Returns the ids of items actually recorded by this call, so callers
        (the labeling engine in particular) can later :meth:`release` exactly
        the records they introduced.
        """
        n_labels = len(self.zoo.space)
        added: list[str] = []
        for item in items:
            if item.item_id in self._records:
                continue
            added.append(item.item_id)
            outputs = tuple(m.execute(item) for m in self.zoo)
            ids_list: list[np.ndarray] = []
            confs_list: list[np.ndarray] = []
            solo = np.zeros(len(self.zoo), dtype=np.float64)
            best = np.zeros(n_labels, dtype=np.float64)
            for j, output in enumerate(outputs):
                ids, confs = output.valuable_arrays(self.threshold)
                ids_list.append(ids)
                confs_list.append(confs)
                solo[j] = float(confs.sum())
                if len(ids):
                    np.maximum.at(best, ids, confs)
            self._records[item.item_id] = ItemRecord(
                item=item,
                outputs=outputs,
                valuable_ids=tuple(ids_list),
                valuable_confs=tuple(confs_list),
                solo_values=solo,
                best_confidence=best,
                total_value=float(best.sum()),
            )
        return added

    def record_batch(self, items: Sequence[DataItem]) -> list[ItemRecord]:
        """Record a batch of items and return their records, input-ordered.

        Existing records are reused; missing ones are executed-and-recorded
        in one pass.  This is the engine's bulk entry point: one call per
        scheduling batch instead of one :meth:`add_items` per item.
        """
        self.add_items(items)
        return [self._records[item.item_id] for item in items]

    def adopt(self, records: Iterable[ItemRecord]) -> list[str]:
        """Install pre-computed records without executing any model.

        This is the pickling surface behind multi-process scheduling: a
        parent process records items once, ships the :class:`ItemRecord`
        shards to workers, and each worker adopts them into its own cache
        (idempotent per item id, like :meth:`add_items`).  Records must
        have been produced against a zoo of the same size; value semantics
        additionally assume the same valuable-confidence threshold, which
        holds whenever parent and worker share a ``WorldConfig``.

        Returns the ids actually adopted by this call so callers can later
        :meth:`release_many` exactly what they introduced.
        """
        added: list[str] = []
        for record in records:
            item_id = record.item.item_id
            if item_id in self._records:
                continue
            if len(record.outputs) != len(self.zoo):
                raise ValueError(
                    f"record for {item_id!r} covers {len(record.outputs)} "
                    f"models but the zoo has {len(self.zoo)}"
                )
            self._records[item_id] = record
            added.append(item_id)
        return added

    def records_snapshot(self) -> tuple[ItemRecord, ...]:
        """The current records as an immutable (picklable) tuple.

        Safe against concurrent record/release from other threads (the
        serving tier snapshots a shared truth while worker threads are
        recording): on CPython the tuple copy is atomic under the GIL,
        and the retry covers interpreters where a concurrent resize can
        surface mid-iteration.  Records are immutable, so any completed
        copy is a consistent snapshot.
        """
        while True:
            try:
                return tuple(self._records.values())
            except RuntimeError:
                # dict resized during iteration; take a fresh copy
                continue

    # -- eviction ---------------------------------------------------------------

    def release(self, item_id: str) -> bool:
        """Drop one item's record; returns whether it was present.

        Long-running streams share one cache, and without eviction it grows
        with every item ever labeled.  The engine releases records once an
        item's result has been yielded (opt-out via ``release_records``).
        """
        return self._records.pop(item_id, None) is not None

    def release_many(self, item_ids: Iterable[str]) -> int:
        """Release several records; returns how many were present."""
        return sum(self.release(item_id) for item_id in item_ids)

    # -- queries ---------------------------------------------------------------

    def __contains__(self, item_id: str) -> bool:
        return item_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    @property
    def item_ids(self) -> tuple[str, ...]:
        return tuple(self._records)

    def record(self, item_id: str) -> ItemRecord:
        return self._records[item_id]

    def output(self, item_id: str, model_index: int) -> ModelOutput:
        """The recorded output of one model on one item."""
        return self._records[item_id].outputs[model_index]

    def solo_values(self, item_id: str) -> np.ndarray:
        """Each model's standalone valuable-output value on the item."""
        return self._records[item_id].solo_values

    def total_value(self, item_id: str) -> float:
        """f(M, d): value of executing the whole zoo."""
        return self._records[item_id].total_value

    def valuable(self, item_id: str, model_index: int) -> tuple[np.ndarray, np.ndarray]:
        """(ids, confs) of one model's valuable labels on one item."""
        rec = self._records[item_id]
        return rec.valuable_ids[model_index], rec.valuable_confs[model_index]

    # -- aggregate statistics ---------------------------------------------------

    def useful_execution_fraction(self) -> float:
        """Fraction of (model, item) executions that emit valuable labels.

        The paper's Fig. 1 observes 16/30 executions producing nothing
        useful on its sample; this is the dataset-wide counterpart.
        """
        if not self._records:
            return 0.0
        useful = sum(int(r.useful_models.sum()) for r in self._records.values())
        return useful / (len(self._records) * len(self.zoo))

    def optimal_time_fraction(self) -> float:
        """Time of the "optimal policy" relative to "no policy" (§II).

        The optimal policy runs exactly the models that emit valuable
        labels; no policy runs everything.
        """
        if not self._records:
            return 0.0
        times = self.zoo.times
        total = self.zoo.total_time * len(self._records)
        useful_time = sum(
            float(times[r.useful_models].sum()) for r in self._records.values()
        )
        return useful_time / total
