"""Shared fixtures: one mini world per test session.

The mini world (58 labels, 10 models) is structurally identical to the full
1104-label/30-model world; building it and its ground truth once keeps the
suite fast while every algorithmic path is still exercised.  A handful of
tests build the full world explicitly where cardinalities matter.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TrainConfig, WorldConfig, smoke_scale
from repro.data.datasets import Dataset, generate_dataset, train_test_split
from repro.labels import LabelSpace, build_label_space
from repro.rl.training import TrainingResult, train_agent
from repro.zoo.builder import build_zoo
from repro.zoo.model import ModelZoo
from repro.zoo.oracle import GroundTruth


@pytest.fixture(scope="session")
def world_config() -> WorldConfig:
    return smoke_scale().world


@pytest.fixture(scope="session")
def space(world_config) -> LabelSpace:
    return build_label_space(world_config.vocab_scale)


@pytest.fixture(scope="session")
def zoo(world_config, space) -> ModelZoo:
    return build_zoo(world_config, space)


@pytest.fixture(scope="session")
def dataset(space, world_config) -> Dataset:
    return generate_dataset(space, world_config, "mscoco2017", 150)


@pytest.fixture(scope="session")
def splits(dataset):
    return train_test_split(dataset, seed=0)


@pytest.fixture(scope="session")
def truth(zoo, dataset, world_config) -> GroundTruth:
    return GroundTruth(zoo, dataset, world_config)


@pytest.fixture(scope="session")
def train_config() -> TrainConfig:
    return smoke_scale().train


@pytest.fixture(scope="session")
def trained(truth, splits, train_config) -> TrainingResult:
    """One DuelingDQN trained on the mini world, shared by many tests."""
    train, _ = splits
    return train_agent(
        "dueling_dqn",
        truth,
        [item.item_id for item in train],
        config=train_config.with_(episodes=250),
    )


@pytest.fixture(scope="session")
def test_item_ids(splits) -> list[str]:
    _, test = splits
    return [item.item_id for item in test][:40]


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
