"""Q agents: target rules, masking, learning on a toy problem, serialization."""

import numpy as np
import pytest

from repro.rl.agents import (
    AGENT_REGISTRY,
    DeepSARSAAgent,
    DoubleDQNAgent,
    DQNAgent,
    make_agent,
    masked_argmax,
)
from repro.rl.replay import Batch

ALGOS = sorted(AGENT_REGISTRY)


def make_batch(
    obs,
    actions,
    rewards,
    next_obs,
    dones,
    next_valids,
    next_actions=None,
):
    n = len(actions)
    return Batch(
        obs=np.asarray(obs, dtype=np.float64),
        actions=np.asarray(actions, dtype=np.int64),
        rewards=np.asarray(rewards, dtype=np.float64),
        next_obs=np.asarray(next_obs, dtype=np.float64),
        dones=np.asarray(dones, dtype=bool),
        next_valids=np.asarray(next_valids, dtype=bool),
        next_actions=np.asarray(
            next_actions if next_actions is not None else [-1] * n, dtype=np.int64
        ),
    )


class TestRegistry:
    def test_registry_contents(self):
        """The paper's four schemes plus the combined extension."""
        assert set(AGENT_REGISTRY) == {
            "dqn",
            "double_dqn",
            "dueling_dqn",
            "deep_sarsa",
            "double_dueling_dqn",
        }

    def test_double_dueling_combines_both(self):
        from repro.rl.nn.net import DuelingQNetwork

        agent = make_agent(
            "double_dueling_dqn", obs_dim=6, n_actions=4, hidden_size=8
        )
        assert isinstance(agent.online, DuelingQNetwork)
        # inherits the DoubleDQN bootstrap rule
        from repro.rl.agents import DoubleDQNAgent

        assert isinstance(agent, DoubleDQNAgent)

    @pytest.mark.parametrize("algo", ALGOS)
    def test_make_agent(self, algo):
        agent = make_agent(algo, obs_dim=6, n_actions=4, hidden_size=8)
        assert agent.algo == algo
        assert agent.q_values(np.zeros(6)).shape == (4,)

    def test_unknown_algo(self):
        with pytest.raises(ValueError, match="unknown agent algo"):
            make_agent("rainbow", obs_dim=4, n_actions=2)

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            DQNAgent(obs_dim=4, n_actions=2, gamma=1.0)


class TestMaskedArgmax:
    def test_respects_mask(self):
        q = np.asarray([5.0, 1.0, 3.0])
        valid = np.asarray([False, True, True])
        assert masked_argmax(q, valid) == 2

    def test_no_valid_raises(self):
        with pytest.raises(ValueError):
            masked_argmax(np.zeros(3), np.zeros(3, dtype=bool))


class TestActing:
    def test_greedy_act_uses_mask(self):
        agent = DQNAgent(obs_dim=4, n_actions=3, hidden_size=8, seed=0)
        obs = np.zeros(4)
        q = agent.q_values(obs)
        best = int(np.argmax(q))
        valid = np.ones(3, dtype=bool)
        valid[best] = False
        chosen = agent.act(obs, valid, epsilon=0.0)
        assert chosen != best
        assert valid[chosen]

    def test_epsilon_one_is_uniform_over_valid(self):
        agent = DQNAgent(obs_dim=4, n_actions=4, hidden_size=8, seed=0)
        valid = np.asarray([True, False, True, False])
        picks = {agent.act(np.zeros(4), valid, epsilon=1.0) for _ in range(60)}
        assert picks <= {0, 2}
        assert len(picks) == 2


class TestTargets:
    """Single-transition updates drive Q(s, a) to analytically known values."""

    def _train_single(self, agent, batch, steps=800):
        for _ in range(steps):
            agent.update(batch)
            agent.sync_target()
        return agent

    def test_dqn_terminal_target_is_reward(self):
        agent = DQNAgent(obs_dim=3, n_actions=2, hidden_size=16, gamma=0.5, seed=0)
        obs = np.asarray([[1.0, 0.0, 0.0]])
        batch = make_batch(
            obs, [0], [2.0], np.zeros((1, 3)), [True], [[False, False]]
        )
        self._train_single(agent, batch)
        assert agent.q_values(obs[0])[0] == pytest.approx(2.0, abs=0.05)

    def test_dqn_bootstrap_uses_masked_max(self):
        """Invalid next actions must not leak into the max."""
        agent = DQNAgent(obs_dim=3, n_actions=2, hidden_size=16, gamma=0.5, seed=0)
        s0 = np.asarray([[1.0, 0.0, 0.0]])
        s1 = np.asarray([[0.0, 1.0, 0.0]])
        # First pin Q(s1, .) = [5, -1]; action 0 will be masked invalid.
        pin = make_batch(
            np.vstack([s1, s1]),
            [0, 1],
            [5.0, -1.0],
            np.zeros((2, 3)),
            [True, True],
            [[False, False]] * 2,
        )
        self._train_single(agent, pin)
        # Now learn Q(s0, 0) = 1 + 0.5 * max(valid Q(s1)) with only a1 valid.
        transition = make_batch(
            s0, [0], [1.0], s1, [False], [[False, True]]
        )
        self._train_single(agent, transition)
        expected = 1.0 + 0.5 * agent.q_values(s1[0])[1]
        assert agent.q_values(s0[0])[0] == pytest.approx(expected, abs=0.1)

    def test_sarsa_bootstraps_taken_action(self):
        agent = DeepSARSAAgent(
            obs_dim=3, n_actions=2, hidden_size=16, gamma=0.5, seed=0
        )
        s0 = np.asarray([[1.0, 0.0, 0.0]])
        s1 = np.asarray([[0.0, 1.0, 0.0]])
        pin = make_batch(
            np.vstack([s1, s1]),
            [0, 1],
            [5.0, -1.0],
            np.zeros((2, 3)),
            [True, True],
            [[False, False]] * 2,
            next_actions=[-1, -1],
        )
        self._train_single(agent, pin)
        # Behaviour policy took the *bad* action a=1 next: SARSA must use it.
        transition = make_batch(
            s0, [0], [1.0], s1, [False], [[True, True]], next_actions=[1]
        )
        self._train_single(agent, transition)
        expected = 1.0 + 0.5 * agent.q_values(s1[0])[1]  # not the max!
        assert agent.q_values(s0[0])[0] == pytest.approx(expected, abs=0.1)

    @pytest.mark.parametrize("algo", ALGOS)
    def test_update_reduces_loss(self, algo):
        rng = np.random.default_rng(1)
        agent = make_agent(algo, obs_dim=5, n_actions=3, hidden_size=16, seed=2)
        batch = make_batch(
            rng.normal(size=(16, 5)),
            rng.integers(0, 3, size=16),
            rng.normal(size=16),
            rng.normal(size=(16, 5)),
            [False] * 16,
            np.ones((16, 3)),
            next_actions=rng.integers(0, 3, size=16),
        )
        first = agent.update(batch)
        for _ in range(150):
            last = agent.update(batch)
        assert last < first

    def test_double_dqn_differs_from_dqn(self):
        """Selection/evaluation decoupling changes bootstrap values.

        Craft constant networks: online prefers action 1, target values
        action 0 highest.  DQN bootstraps max(target) = 5; DoubleDQN
        bootstraps target[argmax(online)] = 1.
        """
        def pin_constant(net, biases):
            for layer in (net.fc1, net.fc2):
                layer.W.fill(0.0)
                layer.b.fill(0.0)
            net.fc2.b[:] = biases

        dqn = DQNAgent(obs_dim=4, n_actions=3, hidden_size=8, seed=0)
        ddqn = DoubleDQNAgent(obs_dim=4, n_actions=3, hidden_size=8, seed=0)
        for agent in (dqn, ddqn):
            pin_constant(agent.online, [0.0, 1.0, 0.0])
            pin_constant(agent.target, [5.0, 1.0, 0.0])
        batch = make_batch(
            np.zeros((2, 4)),
            [0, 0],
            [0.0, 0.0],
            np.zeros((2, 4)),
            [False, False],
            np.ones((2, 3)),
        )
        assert np.allclose(dqn._bootstrap_values(batch), 5.0)
        assert np.allclose(ddqn._bootstrap_values(batch), 1.0)


class TestSerialization:
    @pytest.mark.parametrize("algo", ALGOS)
    def test_save_load_roundtrip(self, algo, tmp_path):
        agent = make_agent(algo, obs_dim=6, n_actions=4, hidden_size=8, seed=1)
        obs = np.random.default_rng(0).random(6)
        expected = agent.q_values(obs)
        path = tmp_path / "agent.npz"
        agent.save(path)
        fresh = make_agent(algo, obs_dim=6, n_actions=4, hidden_size=8, seed=99)
        assert not np.allclose(fresh.q_values(obs), expected)
        fresh.load(path)
        assert np.allclose(fresh.q_values(obs), expected)

    def test_load_into_wrong_architecture(self, tmp_path):
        a = make_agent("dqn", obs_dim=6, n_actions=4, hidden_size=8)
        path = tmp_path / "agent.npz"
        a.save(path)
        b = make_agent("dqn", obs_dim=6, n_actions=4, hidden_size=16)
        with pytest.raises(ValueError):
            b.load(path)
