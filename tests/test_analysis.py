"""Analysis layer: metrics, CDFs, table rendering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cdf import empirical_cdf, quantile
from repro.analysis.metrics import (
    average_cost_curves,
    improvement,
    performance_ratio,
    savings,
)
from repro.analysis.tables import format_series, format_table
from repro.scheduling.base import run_ordering_policy
from repro.scheduling.random_policy import RandomPolicy


class TestMetrics:
    def test_savings(self):
        assert savings(10.0, 5.0) == pytest.approx(0.5)
        assert savings(0.0, 5.0) == 0.0
        assert savings(4.0, 4.0) == 0.0

    def test_improvement(self):
        assert improvement(0.2, 0.6) == pytest.approx(2.0)  # +200%
        assert improvement(0.0, 0.5) == float("inf")
        assert improvement(0.0, 0.0) == 0.0

    def test_performance_ratio_basic(self):
        ratio = performance_ratio([0.5, 0.8], [1.0, 1.0])
        assert ratio == pytest.approx(0.65)

    def test_performance_ratio_skips_zero_upper(self):
        ratio = performance_ratio([0.0, 0.8], [0.0, 1.0])
        assert ratio == pytest.approx(0.8)

    def test_performance_ratio_caps_at_one(self):
        assert performance_ratio([1.2], [1.0]) == 1.0

    def test_performance_ratio_all_zero_upper(self):
        assert performance_ratio([0.0], [0.0]) == 1.0

    def test_performance_ratio_shape_mismatch(self):
        with pytest.raises(ValueError):
            performance_ratio([1.0], [1.0, 2.0])

    @settings(max_examples=30, deadline=None)
    @given(
        ours=st.lists(st.floats(0, 1), min_size=1, max_size=10),
        slack=st.floats(0.0, 0.5),
    )
    def test_performance_ratio_bounded(self, ours, slack):
        upper = [o + slack for o in ours]
        ratio = performance_ratio(ours, upper)
        assert 0.0 <= ratio <= 1.0


class TestCurves:
    def test_average_cost_curves(self, truth, test_item_ids):
        traces = [
            run_ordering_policy(RandomPolicy(seed=1), truth, i)
            for i in test_item_ids[:10]
        ]
        curve = average_cost_curves("random", traces)
        assert curve.policy == "random"
        # monotone non-decreasing in threshold
        assert (np.diff(curve.avg_models) >= -1e-9).all()
        assert (np.diff(curve.avg_time) >= -1e-9).all()
        models_08, time_08 = curve.at(0.8)
        assert 1 <= models_08 <= len(truth.zoo)
        assert 0 < time_08 <= truth.zoo.total_time

    def test_empty_traces_rejected(self):
        with pytest.raises(ValueError):
            average_cost_curves("none", [])


class TestCDF:
    def test_empirical_cdf_exact(self):
        x, y = empirical_cdf([1.0, 2.0, 3.0])
        assert np.allclose(x, [1, 2, 3])
        assert np.allclose(y, [1 / 3, 2 / 3, 1.0])

    def test_empirical_cdf_on_grid(self):
        _, y = empirical_cdf([1.0, 2.0, 3.0], grid=[0.0, 1.5, 10.0])
        assert np.allclose(y, [0.0, 1 / 3, 1.0])

    def test_cdf_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([])

    @settings(max_examples=30, deadline=None)
    @given(samples=st.lists(st.floats(-5, 5), min_size=1, max_size=50))
    def test_cdf_monotone_and_bounded(self, samples):
        _, y = empirical_cdf(samples, grid=np.linspace(-6, 6, 13))
        assert (np.diff(y) >= 0).all()
        assert y[0] >= 0.0 and y[-1] == 1.0

    def test_quantile(self):
        assert quantile([1.0, 2.0, 3.0], 0.5) == 2.0
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(("a", "bbb"), [(1, 2), (33, 44)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_format_series(self):
        text = format_series(
            "x", [0.5, 1.0], {"s1": [1.0, 2.0], "s2": [3.0, 4.0]}, precision=1
        )
        assert "0.5" in text and "1.0" in text and "4.0" in text
