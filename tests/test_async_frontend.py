"""The asyncio front-end: awaitable submissions over the same queue."""

import asyncio

import numpy as np
import pytest

from repro.engine import LabelingEngine
from repro.rl.agents import make_agent
from repro.scheduling.qgreedy import AgentPredictor, QValuePredictor
from repro.serving import (
    DeadlineExpired,
    LabelingService,
    QueueFull,
    ServiceStopped,
)
from repro.spec import LabelingSpec


@pytest.fixture(scope="module")
def predictor(zoo, space):
    agent = make_agent(
        "dueling_dqn", obs_dim=len(space), n_actions=len(zoo) + 1, hidden_size=32
    )
    return AgentPredictor(agent, len(zoo))


@pytest.fixture(scope="module")
def engine(zoo, predictor, world_config):
    return LabelingEngine(zoo, predictor, world_config)


@pytest.fixture(scope="module")
def items(splits):
    _, test = splits
    return test.items[:16]


class FailingPredictor(QValuePredictor):
    def predict(self, state):
        raise RuntimeError("predictor exploded")

    def predict_batch(self, states):
        raise RuntimeError("predictor exploded")


class TestSubmitAsync:
    def test_awaited_result_matches_sync_submission(self, engine, truth, items):
        sync_service = LabelingService(engine, batch_size=4, truth=truth)
        with sync_service:
            expected = [
                f.result(timeout=30)
                for f in sync_service.submit_many(items[:8])
            ]

        async def run():
            service = LabelingService(engine, batch_size=4, truth=truth)
            with service:
                results = [await service.submit_async(item) for item in items[:8]]
                service.drain()
            return results

        got = asyncio.run(run())
        for r, g in zip(expected, got):
            assert g.item_id == r.item_id
            assert g.trace.executions == r.trace.executions

    def test_submit_many_async_gathers_in_input_order(self, engine, truth, items):
        async def run():
            service = LabelingService(engine, batch_size=4, truth=truth)
            with service:
                futures = service.submit_many_async(
                    items, LabelingSpec(deadline=0.4, priority=1)
                )
                results = await asyncio.gather(*futures)
                service.drain()
            return results

        results = asyncio.run(run())
        assert [r.item_id for r in results] == [i.item_id for i in items]

    def test_concurrent_clients_share_one_service(self, engine, truth, items):
        # Two coroutines interleave submissions on one loop; each gets
        # its own input-ordered results back.
        async def client(service, slice_):
            return [await service.submit_async(item) for item in slice_]

        async def run():
            service = LabelingService(engine, batch_size=4, truth=truth)
            with service:
                a, b = await asyncio.gather(
                    client(service, items[:6]), client(service, items[6:12])
                )
                service.drain()
            return a, b

        a, b = asyncio.run(run())
        assert [r.item_id for r in a] == [i.item_id for i in items[:6]]
        assert [r.item_id for r in b] == [i.item_id for i in items[6:12]]

    def test_admission_errors_raise_synchronously(self, engine, truth, items):
        # Admission runs on the calling thread exactly like submit(): an
        # already-expired admission deadline never produces an awaitable.
        async def run():
            service = LabelingService(engine, batch_size=4, truth=truth)
            with service:
                with pytest.raises(DeadlineExpired):
                    service.submit_async(items[0], deadline=0.0)
                service.drain()

        asyncio.run(run())

    def test_stopped_service_rejects_async_submissions(self, engine, truth, items):
        async def run():
            service = LabelingService(engine, batch_size=4, truth=truth)
            with service:
                service.drain()
            with pytest.raises(ServiceStopped):
                service.submit_async(items[0])

        asyncio.run(run())

    def test_serving_failure_surfaces_when_awaited(
        self, zoo, world_config, truth, items
    ):
        # A scheduling-time failure settles the wrapped future with the
        # worker's exception; await re-raises it on the event loop.
        engine = LabelingEngine(
            zoo, FailingPredictor(), world_config, backend="serial"
        )

        async def run():
            service = LabelingService(engine, batch_size=4, truth=truth)
            with service:
                future = service.submit_async(items[0])
                with pytest.raises(RuntimeError, match="predictor exploded"):
                    await future
                service.drain()

        asyncio.run(run())

    def test_nowait_variant_raises_queue_full_without_blocking(
        self, engine, truth, items
    ):
        # The gateway's admission path: against a full queue under the
        # *blocking* overflow policy, submit_async would park the event
        # loop thread until space appeared; submit_nowait_async must
        # instead raise QueueFull synchronously so callers can answer 429.
        async def run():
            service = LabelingService(
                engine, batch_size=4, truth=truth, max_depth=2, overflow="block"
            )
            # never started: nothing drains, the queue genuinely fills
            service.submit_nowait_async(items[0])
            service.submit_nowait_async(items[1])
            started = asyncio.get_running_loop().time()
            with pytest.raises(QueueFull, match="nowait"):
                service.submit_nowait_async(items[2])
            assert asyncio.get_running_loop().time() - started < 1.0
            # the bulk variant sheds per item: rejections land on the
            # awaitables so accepted siblings still serve
            futures = service.submit_many_nowait_async(items[2:4])
            outcome = await asyncio.gather(*futures, return_exceptions=True)
            assert all(isinstance(r, QueueFull) for r in outcome)
            service.queue.close()

        asyncio.run(run())

    def test_failures_mix_with_results_under_gather(
        self, zoo, world_config, engine, truth, items
    ):
        # return_exceptions=True gives the complete per-item picture.
        async def run():
            service = LabelingService(engine, batch_size=4, truth=truth)
            with service:
                futures = service.submit_many_async(items[:4])
                outcome = await asyncio.gather(*futures, return_exceptions=True)
                service.drain()
            return outcome

        outcome = asyncio.run(run())
        assert len(outcome) == 4
        assert all(not isinstance(r, Exception) for r in outcome)
        assert [r.item_id for r in outcome] == [i.item_id for i in items[:4]]


class TestOracleBatchConsistency:
    """The vectorized oracle satellite: same numbers, fewer Python loops."""

    def test_predict_matches_marginal_gain(self, truth, items):
        from repro.core.evaluation import marginal_gain
        from repro.core.state import LabelingState
        from repro.scheduling.qgreedy import OraclePredictor

        oracle = OraclePredictor(truth)
        state = LabelingState(truth, items[0].item_id)
        state.execute(0)
        state.execute(3)
        gains = oracle.predict(state)
        expected = np.asarray(
            [
                marginal_gain(truth, items[0].item_id, state.confidences, index)
                for index in range(len(truth.zoo))
            ]
        )
        np.testing.assert_allclose(gains, expected, rtol=0, atol=1e-12)

    def test_predict_batch_matches_per_state_loop(self, truth, items):
        from repro.core.state import LabelingState
        from repro.scheduling.qgreedy import OraclePredictor

        oracle = OraclePredictor(truth)
        states = [LabelingState(truth, item.item_id) for item in items[:5]]
        states[1].execute(2)
        states[4].execute(0)
        stacked = oracle.predict_batch(states)
        assert stacked.shape == (5, len(truth.zoo))
        looped = np.stack([oracle.predict(s) for s in states])
        np.testing.assert_array_equal(stacked, looped)

    def test_gain_matrix_cache_is_bounded(self, truth, items):
        from repro.core.state import LabelingState
        from repro.scheduling.qgreedy import OraclePredictor

        oracle = OraclePredictor(truth)
        oracle.CACHE_ITEMS = 2  # instance attribute shadows the class bound
        for item in items[:4]:
            oracle.predict(LabelingState(truth, item.item_id))
        assert len(oracle._gain_matrices) <= 2
