"""Typed backend configs: validation, registry, resolution, deprecation."""

import dataclasses

import pytest

from repro.engine import (
    BACKEND_REGISTRY,
    BackendConfig,
    BatchedBackend,
    BatchedConfig,
    ClusterBackend,
    ClusterConfig,
    ProcessConfig,
    ProcessPoolBackend,
    SerialBackend,
    SerialConfig,
    ThreadConfig,
    ThreadPoolBackend,
    make_backend,
)


class TestRegistry:
    def test_every_backend_has_a_config(self):
        assert set(BACKEND_REGISTRY) == {
            "serial",
            "batched",
            "thread",
            "process",
            "cluster",
        }
        for name, (backend_cls, config_cls) in BACKEND_REGISTRY.items():
            assert config_cls.name == name
            assert config_cls.backend_cls is backend_cls

    def test_configs_are_frozen(self):
        config = ProcessConfig(max_workers=2)
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.max_workers = 4

    def test_build_constructs_the_right_class(self):
        assert isinstance(SerialConfig().build(), SerialBackend)
        assert isinstance(BatchedConfig().build(), BatchedBackend)
        thread = ThreadConfig(max_workers=3).build()
        assert isinstance(thread, ThreadPoolBackend)
        process = ProcessConfig(max_workers=3, chunk_size=2).build()
        assert isinstance(process, ProcessPoolBackend)
        assert process.max_workers == 3
        assert process.chunk_size == 2
        cluster = ClusterConfig(local_workers=2, chunk_size=4).build()
        assert isinstance(cluster, ClusterBackend)
        assert cluster.chunk_size == 4
        cluster.close()


class TestValidation:
    """Bad values fail at config time, before any pool or socket exists."""

    def test_thread(self):
        with pytest.raises(ValueError, match="max_workers"):
            ThreadConfig(max_workers=0)

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"max_workers": 0}, "max_workers"),
            ({"chunk_size": 0}, "chunk_size"),
            ({"transport": "carrier-pigeon"}, "transport"),
            ({"target_chunk_s": 0.0}, "target_chunk_s"),
            ({"ring_slots": 0}, "ring_slots"),
            ({"slot_bytes": 0}, "slot_bytes"),
        ],
    )
    def test_process(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            ProcessConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({}, "needs workers"),
            ({"workers": ("nocolon",)}, "host:port"),
            ({"workers": ("host:notaport",)}, "host:port"),
            ({"local_workers": 0}, "local_workers"),
            ({"local_workers": 2, "chunk_size": 0}, "chunk_size"),
            ({"local_workers": 2, "connect_timeout": 0.0}, "connect_timeout"),
            ({"local_workers": 2, "replicas": 0}, "replicas"),
        ],
    )
    def test_cluster(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            ClusterConfig(**kwargs)

    def test_cluster_normalizes_workers_to_tuple(self):
        config = ClusterConfig(workers=["a:1", "b:2"])
        assert config.workers == ("a:1", "b:2")


class TestResolution:
    def test_bare_names_resolve_silently(self, recwarn):
        for name in BACKEND_REGISTRY:
            if name == "cluster":
                continue  # no default worker source; see below
            config = BackendConfig.resolve(name)
            assert config.name == name
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_cluster_needs_a_worker_source_even_by_name(self):
        with pytest.raises(ValueError, match="needs workers"):
            BackendConfig.resolve("cluster")

    def test_loose_kwargs_warn_and_round_trip(self):
        with pytest.warns(DeprecationWarning, match="typed ProcessConfig"):
            config = BackendConfig.resolve("process", max_workers=4, chunk_size=3)
        assert config == ProcessConfig(max_workers=4, chunk_size=3)

    def test_loose_kwargs_inherit_eager_validation(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="max_workers"):
                BackendConfig.resolve("process", max_workers=0)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown backend"):
            BackendConfig.resolve("gpu")


class TestMakeBackend:
    def test_name_and_config_and_instance(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend(ThreadConfig(max_workers=2)), ThreadPoolBackend)
        backend = ThreadPoolBackend(max_workers=2)
        assert make_backend(backend) is backend

    def test_name_with_kwargs_warns(self):
        with pytest.warns(DeprecationWarning):
            backend = make_backend("process", max_workers=3)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.max_workers == 3

    def test_instance_with_kwargs_is_a_type_error(self):
        backend = ThreadPoolBackend(max_workers=2)
        with pytest.raises(TypeError, match="already-constructed"):
            make_backend(backend, max_workers=4)

    def test_config_with_kwargs_is_a_type_error(self):
        with pytest.raises(TypeError, match="put them in the config"):
            make_backend(ProcessConfig(), max_workers=4)

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("gpu")
